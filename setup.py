"""Legacy setup shim.

The reproduction environment is offline and has no ``wheel`` package,
so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` use the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Determinism guards for the concurrent execution paths.

The portfolio backend races two exact solvers and the batch runner can
fan specs out over worker processes; neither may change *results*.
Objective values and statuses must match the serial reference exactly —
variable assignments may legitimately differ under alternative optima,
so the contract is stated on objectives, not on assignments.
"""

import pytest

from repro.cases import chip_sw1, suite_90
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.experiments.batch import run_batch
from repro.opt import Model, SolveStatus, quicksum


def small_milp():
    m = Model("det")
    xs = [m.add_integer(f"x{i}", 0, 3) for i in range(4)]
    m.add_constr(quicksum(xs) >= 5)
    m.add_constr(xs[0] + 2 * xs[1] <= 4)
    m.set_objective(quicksum((i + 1) * x for i, x in enumerate(xs)), "min")
    return m


def test_portfolio_matches_serial_backends():
    reference = small_milp().solve(backend="highs")
    bb = small_milp().solve(backend="branch_bound")
    portfolio = small_milp().solve(backend="portfolio")
    assert reference.status is SolveStatus.OPTIMAL
    assert bb.status is reference.status
    assert portfolio.status is reference.status
    assert bb.objective == pytest.approx(reference.objective)
    assert portfolio.objective == pytest.approx(reference.objective)
    assert portfolio.solver.startswith("portfolio(")


def test_portfolio_infeasible_matches():
    def infeasible():
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        return m

    assert infeasible().solve(backend="highs").status is SolveStatus.INFEASIBLE
    assert infeasible().solve(backend="portfolio").status is SolveStatus.INFEASIBLE


def test_portfolio_repeated_runs_are_stable():
    objectives = {small_milp().solve(backend="portfolio").objective
                  for _ in range(3)}
    assert len(objectives) == 1


def test_portfolio_synthesis_matches_default():
    spec = chip_sw1(BindingPolicy.FIXED)
    serial = synthesize(spec, SynthesisOptions())
    raced = synthesize(chip_sw1(BindingPolicy.FIXED),
                       SynthesisOptions(backend="portfolio"))
    assert raced.status is serial.status
    assert raced.objective == pytest.approx(serial.objective)
    assert raced.flow_channel_length == pytest.approx(serial.flow_channel_length)


def test_parallel_batch_matches_serial():
    """workers=2 must produce the identical row list as workers=1."""
    specs = suite_90()[:3]
    options = SynthesisOptions(time_limit=20)
    serial = run_batch(specs, options)
    parallel = run_batch(specs, options, workers=2)

    def essentials(batch):
        return [(r["case"], r["status"], r.get("objective"),
                 r.get("length_mm"), r.get("num_sets"), r.get("num_valves"))
                for r in batch.rows]

    assert essentials(parallel) == essentials(serial)

"""Fuzzing the verifier with mutated solutions.

The static verifier and the dynamic simulator are independent; their
verdicts must stay consistent under random mutation of a valid result:

* merging two flow sets is either accepted by the verifier (and then
  must simulate cleanly after re-analysis) or rejected;
* swapping two flows' paths breaks the binding coupling and must be
  rejected;
* dropping a flow from the schedule must be rejected;
* overlaying a health mask on a segment the routing uses must make the
  verifier reject the stale routing, while a repair on the masked spec
  verifies clean and avoids the dead segment.
"""

import copy

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.core.valves import analyze_valves
from repro.core.verify import verify_result, verify_schedule
from repro.errors import VerificationError
from repro.sim import simulate

OPTS = SynthesisOptions(time_limit=30)


def _solved(seed):
    spec = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=1, binding=BindingPolicy.FIXED)
    res = synthesize(spec, OPTS)
    return res if res.status.solved else None


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_set_merge_mutation(seed):
    """Merging the first two sets: verifier accepts iff the merge is
    site-disjoint per inlet, and acceptance implies a clean simulation."""
    res = _solved(seed)
    if res is None or len(res.flow_sets) < 2:
        return
    mutant = copy.copy(res)
    merged = sorted(res.flow_sets[0] + res.flow_sets[1])
    mutant.flow_sets = [merged] + [list(g) for g in res.flow_sets[2:]]
    try:
        verify_schedule(mutant.spec, mutant.flow_paths, mutant.flow_sets)
        accepted = True
    except VerificationError:
        accepted = False
    if accepted:
        # re-derive the valve schedule for the new sets, then execute
        mutant.valves = analyze_valves(mutant.spec.switch,
                                       mutant.flow_paths, mutant.flow_sets)
        report = simulate(mutant)
        assert report.is_clean, report.summary()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_path_swap_mutation_rejected(seed):
    res = _solved(seed)
    if res is None:
        return
    fids = sorted(res.flow_paths)
    if len(fids) < 2:
        return
    a, b = fids[0], fids[1]
    # swapping is only a real corruption when endpoints differ
    pa, pb = res.flow_paths[a], res.flow_paths[b]
    if (pa.source_pin, pa.target_pin) == (pb.source_pin, pb.target_pin):
        return
    mutant = copy.copy(res)
    mutant.flow_paths = dict(res.flow_paths)
    mutant.flow_paths[a], mutant.flow_paths[b] = pb, pa
    with pytest.raises(VerificationError):
        verify_result(mutant)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_fault_overlay_mutation(seed):
    """Masking a used junction-junction segment invalidates the stale
    routing; the self-healed routing verifies and avoids the fault."""
    from repro.repair import mask_spec, repair
    from repro.sim.faults import stuck_closed

    res = _solved(seed)
    if res is None:
        return
    switch = res.spec.switch
    candidates = [k for k in sorted(res.used_segments)
                  if not switch.is_pin(k[0]) and not switch.is_pin(k[1])]
    if not candidates:
        return
    seg = candidates[seed % len(candidates)]
    degraded_spec = mask_spec(res.spec, [stuck_closed(*seg)])
    stale = copy.copy(res)
    stale.spec = degraded_spec
    with pytest.raises(VerificationError):
        verify_result(stale)
    outcome = repair(res, [stuck_closed(*seg)], OPTS)
    if outcome.solved:
        verify_result(outcome.repaired)
        assert all(seg not in p.segments
                   for p in outcome.repaired.flow_paths.values())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_dropped_flow_mutation_rejected(seed):
    res = _solved(seed)
    if res is None:
        return
    mutant = copy.copy(res)
    mutant.flow_sets = [list(g) for g in res.flow_sets]
    mutant.flow_sets[0] = mutant.flow_sets[0][1:]
    if not mutant.flow_sets[0]:
        mutant.flow_sets = mutant.flow_sets[1:]
    with pytest.raises(VerificationError):
        verify_schedule(mutant.spec, mutant.flow_paths, mutant.flow_sets)

"""Fault injection: the degradation ladder and the verifier's last line.

Every test drives the *real* pipeline through a registered
:class:`~repro.testing.FaultyBackend`, so the behaviors proven here —
crash→greedy-fallback, corrupt→VerificationError, timeout→degrade —
are the production code paths, not mocks.
"""

import pytest

from repro.cases import generate_case
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    SynthesisStatus,
    synthesize,
)
from repro.errors import (
    InjectedFaultError,
    ReproError,
    SolverError,
    VerificationError,
)
from repro.opt.solvers import (
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.testing import FaultPlan, FaultyBackend, install_faulty_backend

#: Assignment variables (paths x_, binding y_, set membership w_) —
#: zeroing one of these corrupts the extracted design; auxiliaries
#: would only perturb bookkeeping the extractor ignores.
ASSIGNMENT_VARS = r"^(x_|y_|w_)"


def good_spec():
    """A small fixed-binding case that solves OPTIMAL in well under 1s."""
    return generate_case(seed=5, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def opts(policy="degrade", **kw):
    kw.setdefault("backend", "faulty")
    kw.setdefault("time_limit", 60)
    return SynthesisOptions(on_error=policy, **kw)


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------
def test_plan_schedule_consumed_in_order_then_quiet():
    plan = FaultPlan(schedule=["crash", None, "corrupt"])
    assert [plan.draw() for _ in range(5)] == \
        ["crash", None, "corrupt", None, None]


def test_plan_rates_are_seed_deterministic():
    a = FaultPlan(seed=7, crash=0.3, timeout=0.3, corrupt=0.3)
    b = FaultPlan(seed=7, crash=0.3, timeout=0.3, corrupt=0.3)
    assert [a.draw() for _ in range(50)] == [b.draw() for _ in range(50)]


def test_plan_rejects_bad_rates_and_kinds():
    with pytest.raises(ReproError):
        FaultPlan(crash=1.5)
    with pytest.raises(ReproError):
        FaultPlan(crash=0.6, timeout=0.6)
    with pytest.raises(ReproError):
        FaultPlan(schedule=["explode"])


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
def test_register_resolve_unregister_roundtrip():
    marker = FaultyBackend(inner="branch_bound")
    register_backend("marker", lambda: marker)
    try:
        assert get_backend("marker") is marker
        assert available_backends()["marker"] is True
    finally:
        unregister_backend("marker")
    with pytest.raises(ReproError):
        get_backend("marker")


def test_register_cannot_shadow_builtin():
    with pytest.raises(ReproError):
        register_backend("highs", lambda: FaultyBackend())
    with pytest.raises(ReproError):
        register_backend("auto", lambda: FaultyBackend())


def test_register_duplicate_needs_replace():
    register_backend("dup", lambda: FaultyBackend())
    try:
        with pytest.raises(ReproError):
            register_backend("dup", lambda: FaultyBackend())
        register_backend("dup", lambda: FaultyBackend(), replace=True)
    finally:
        unregister_backend("dup")


# ----------------------------------------------------------------------
# the degradation ladder, end to end
# ----------------------------------------------------------------------
def test_no_faults_is_a_transparent_passthrough():
    baseline = synthesize(good_spec(), SynthesisOptions(time_limit=60))
    assert baseline.status is SynthesisStatus.OPTIMAL
    with install_faulty_backend(plan=FaultPlan()) as wrapper:
        result = synthesize(good_spec(), opts())
    assert result.status is SynthesisStatus.OPTIMAL
    assert result.objective == pytest.approx(baseline.objective)
    assert result.binding == baseline.binding
    assert result.flow_paths == baseline.flow_paths
    assert "degraded" not in result.counters
    assert set(wrapper.injected) == {"none"}


def test_crash_degrades_to_validated_greedy():
    with install_faulty_backend(plan=FaultPlan(schedule=["crash"])):
        result = synthesize(good_spec(), opts("degrade"))
    assert result.status is SynthesisStatus.FEASIBLE
    assert result.solver == "greedy(degraded)"
    assert result.counters.get("degraded") == 1
    assert "InjectedFaultError" in result.error


def test_crash_captured_as_error_row():
    with install_faulty_backend(plan=FaultPlan(schedule=["crash"])):
        result = synthesize(good_spec(), opts("capture"))
    assert result.status is SynthesisStatus.ERROR
    assert not result.status.solved
    assert "InjectedFaultError" in result.error


def test_crash_propagates_under_raise_policy():
    with install_faulty_backend(plan=FaultPlan(schedule=["crash"])):
        with pytest.raises(InjectedFaultError):
            synthesize(good_spec(), opts("raise"))


def test_injected_timeout_degrades():
    with install_faulty_backend(plan=FaultPlan(schedule=["timeout"])):
        result = synthesize(good_spec(), opts("degrade"))
    assert result.status is SynthesisStatus.FEASIBLE
    assert result.solver == "greedy(degraded)"
    assert result.counters.get("degraded") == 1


def test_pressure_phase_crash_degrades_only_the_cover():
    # First solve clean, second (the pressure ILP) crashes: the main
    # result must stay OPTIMAL with a greedy cover substituted.
    with install_faulty_backend(plan=FaultPlan(schedule=[None, "crash"])):
        result = synthesize(good_spec(), opts("degrade"))
    assert result.status is SynthesisStatus.OPTIMAL
    assert result.counters.get("pressure_degraded") == 1
    assert result.pressure is not None
    assert result.pressure.degraded
    assert result.pressure.method == "greedy"


# ----------------------------------------------------------------------
# corruption vs the verifier
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_every_corruption_is_caught_by_the_verifier(seed):
    """No corrupted assignment survives: verify_result always raises."""
    plan = FaultPlan(seed=seed, schedule=["corrupt"])
    with install_faulty_backend(plan=plan, corrupt_vars=ASSIGNMENT_VARS):
        with pytest.raises(VerificationError):
            synthesize(good_spec(), opts("raise"))


def test_corruption_under_degrade_falls_back_to_greedy():
    plan = FaultPlan(schedule=["corrupt"])
    with install_faulty_backend(plan=plan, corrupt_vars=ASSIGNMENT_VARS):
        result = synthesize(good_spec(), opts("degrade"))
    assert result.status is SynthesisStatus.FEASIBLE
    assert result.solver == "greedy(degraded)"
    assert "VerificationError" in result.error


def test_fixed_seed_fault_runs_are_reproducible():
    def run():
        plan = FaultPlan(seed=11, crash=0.3, corrupt=0.3)
        with install_faulty_backend(plan=plan,
                                    corrupt_vars=ASSIGNMENT_VARS) as w:
            result = synthesize(good_spec(), opts("degrade"))
            return result.status, result.solver, result.objective, w.injected

    first, second = run(), run()
    assert first == second


# ----------------------------------------------------------------------
# portfolio failure accounting
# ----------------------------------------------------------------------
def build_small_model():
    from repro.opt import Model, quicksum

    model = Model("toy")
    xs = [model.add_binary(f"b{i}") for i in range(4)]
    model.add_constr(quicksum(xs) >= 2, "pick2")
    model.set_objective(quicksum(xs), "min")
    return model


def test_portfolio_all_members_crash_lists_reasons():
    from repro.opt.solvers.portfolio import PortfolioBackend

    crash_a = FaultyBackend(inner="branch_bound",
                            plan=FaultPlan(schedule=["crash"]))
    crash_b = FaultyBackend(inner="backtrack",
                            plan=FaultPlan(schedule=["crash"]))
    port = PortfolioBackend(members=[crash_a, crash_b])
    with pytest.raises(SolverError) as excinfo:
        port.solve(build_small_model())
    msg = str(excinfo.value)
    assert "all 2 portfolio members failed" in msg
    assert "InjectedFaultError" in msg


def test_portfolio_survives_partial_crash_and_records_it():
    from repro.opt.solvers.portfolio import PortfolioBackend

    crasher = FaultyBackend(inner="branch_bound",
                            plan=FaultPlan(schedule=["crash"]))
    healthy = get_backend("backtrack")
    port = PortfolioBackend(members=[crasher, healthy])
    sol = port.solve(build_small_model())
    assert sol.has_solution
    assert sol.counters.get("portfolio_member_failures") == 1
    failed = [k for k in sol.counters if k.startswith("member_failed_")]
    assert len(failed) == 1


# ----------------------------------------------------------------------
# the event stream sees every fired fault
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["crash", "timeout", "corrupt"])
def test_fired_faults_emit_typed_events(kind):
    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with install_faulty_backend(plan=FaultPlan(schedule=[kind])):
        with use_tracer(tracer):
            try:
                synthesize(good_spec(), opts("degrade"))
            except ReproError:
                pass  # only the telemetry is under test here
    fired = [r for r in tracer.records(with_metrics=False)
             if r["type"] == "event" and r["name"] == "fault_injected"]
    assert len(fired) == 1
    attrs = fired[0]["attrs"]
    assert attrs["kind"] == kind
    assert attrs["solve"] == 1
    assert "backend" in attrs and "model" in attrs
    # the degradation the fault provoked is visible in the same stream
    if kind in ("crash", "timeout"):
        degrades = [r for r in tracer.records(with_metrics=False)
                    if r["type"] == "event" and r["name"] == "degrade"]
        assert degrades and degrades[0]["attrs"]["where"] == "synthesize"


def test_unfired_plan_emits_no_fault_events():
    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with install_faulty_backend(plan=FaultPlan()):
        with use_tracer(tracer):
            synthesize(good_spec(), opts())
    assert not [r for r in tracer.records(with_metrics=False)
                if r["type"] == "event" and r["name"] == "fault_injected"]

"""Remaining coverage: expression algebra corners, switch primitives."""

import pytest

from repro.errors import SwitchModelError
from repro.opt import LinExpr, Model, QuadExpr
from repro.switches import CrossbarSwitch, GRUSwitch, enumerate_paths
from repro.switches.base import Segment, Valve, segment_key


# ----------------------------------------------------------------------
# expression algebra corners
# ----------------------------------------------------------------------
@pytest.fixture()
def m():
    return Model("misc")


def test_quad_rsub(m):
    x, y = m.add_binary("x"), m.add_binary("y")
    q = 1 - (x * y)
    assert isinstance(q, QuadExpr)
    assert q.constant == 1
    assert list(q.quad_terms.values()) == [-1]


def test_quad_minus_lin(m):
    x, y = m.add_binary("x"), m.add_binary("y")
    q = (x * y) - (x + 2)
    assert q.lin_terms[x] == -1
    assert q.constant == -2


def test_lin_minus_quad(m):
    x, y = m.add_binary("x"), m.add_binary("y")
    q = (x + 2) - (x * y)
    assert isinstance(q, QuadExpr)
    assert q.constant == 2
    assert list(q.quad_terms.values()) == [-1]


def test_neg_quad(m):
    x, y = m.add_binary("x"), m.add_binary("y")
    q = -(x * y)
    assert list(q.quad_terms.values()) == [-1]


def test_quad_repr_and_lin_repr(m):
    x, y = m.add_binary("x"), m.add_binary("y")
    assert "x" in repr(x * y + 1)
    assert "+1" in repr(x + 1).replace(" ", "")


def test_quad_equality_constraint(m):
    x, y = m.add_binary("x"), m.add_binary("y")
    c = (x * y) == 1
    m.add_constr(c)
    sol = m.solve()
    assert sol.value(x) == 1 and sol.value(y) == 1


def test_lin_scalar_division_not_supported(m):
    x = m.add_binary("x")
    with pytest.raises(TypeError):
        _ = (x + 1) / 2  # intentionally unsupported


# ----------------------------------------------------------------------
# switch primitives
# ----------------------------------------------------------------------
def test_segment_canonical_order_and_helpers():
    seg = Segment("Z", "A", 1.5)
    assert (seg.a, seg.b) == ("A", "Z")
    assert seg.key == ("A", "Z")
    assert seg.other("A") == "Z"
    assert seg.touches("Z") and not seg.touches("Q")
    assert str(seg) == "A-Z"
    with pytest.raises(SwitchModelError):
        seg.other("Q")


def test_segment_validation():
    with pytest.raises(SwitchModelError):
        Segment("A", "A", 1.0)
    with pytest.raises(SwitchModelError):
        Segment("A", "B", 0.0)


def test_valve_str():
    v = Valve(("A", "B"))
    assert "A-B" in str(v)
    assert v.control_options == 2


def test_segment_key_helper():
    assert segment_key("B", "A") == ("A", "B")
    assert segment_key("A", "B") == ("A", "B")


def test_switch_repr_and_size_label():
    sw = CrossbarSwitch(8)
    assert "crossbar-8pin" in repr(sw)
    assert sw.size_label == "8-pin"


def test_unknown_segment_lookup():
    sw = CrossbarSwitch(8)
    with pytest.raises(SwitchModelError):
        sw.segment("T1", "B1")


def test_gru_slack_enumeration_uses_euclidean_budget():
    """Slack enumeration honours non-Manhattan segment lengths."""
    gru = GRUSwitch(8)
    strict = enumerate_paths(gru)
    slack = enumerate_paths(gru, slack=1.0)
    assert len(slack) >= len(strict)
    for a in ("TL", "T"):
        base = strict.shortest_length(a, "BR")
        for p in slack.between(a, "BR"):
            assert p.length <= base + 1.0 + 1e-9


def test_path_str_readable():
    sw = CrossbarSwitch(8)
    cat = enumerate_paths(sw)
    p = cat.between("T1", "L1")[0]
    assert str(p).startswith("T1->")
    assert str(p).endswith("->L1")

"""Tests for the sharded HTTP synthesis platform (coordinator + API).

Everything here crosses real process boundaries: shard processes are
spawned, SIGKILLed and respawned, and the HTTP tier is driven through
actual sockets with the stdlib client helpers. Specs stay tiny so the
suite's cost is process startup, not solving.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy
from repro.errors import AdmissionError
from repro.io import spec_to_dict
from repro.service import (
    HTTPServiceError,
    ServiceHTTPServer,
    ShardCoordinator,
    fetch_job,
    replay_journal,
    submit_job,
    validate_journal,
    wait_job,
)

OPTS = {"time_limit": 30}


def small_spec(seed=0):
    return generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def platform(tmp_path, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("options", OPTS)
    return ShardCoordinator(str(tmp_path / "platform"), **kwargs)


def get_json(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


# ----------------------------------------------------------------------
# round trip, routing, dedup
# ----------------------------------------------------------------------
def test_platform_http_round_trip_across_shards(tmp_path):
    specs = [small_spec(s) for s in range(4)]
    with platform(tmp_path) as coord:
        with ServiceHTTPServer(coord) as server:
            jobs = [submit_job(server.url, spec_to_dict(s)) for s in specs]
            # the fingerprint hash spreads jobs over both shards
            assert {j["shard"] for j in jobs} == {0, 1}
            # resubmission routes to the same shard and dedups there
            again = submit_job(server.url, spec_to_dict(specs[0]))
            assert (again["id"], again["shard"]) == (jobs[0]["id"],
                                                     jobs[0]["shard"])
            finals = [wait_job(server.url, j["id"], timeout=180)
                      for j in jobs]
            assert all(f["state"] == "done" for f in finals)
            status, health = get_json(server.url + "/health")
            assert status == 200 and health["ok"]
            status, stats = get_json(server.url + "/stats")
            assert stats["jobs"] == {"done": 4}
            assert stats["restarts"] == 0
            assert set(stats["shards"]) == {"0", "1"}
    for index in range(2):
        counts = validate_journal(tmp_path / "platform"
                                  / f"shard-{index}.jsonl")
        assert set(counts) == {"done"}


def test_platform_routing_is_stable(tmp_path):
    with platform(tmp_path) as coord:
        job = coord.submit(spec_to_dict(small_spec()))
        assert coord.route(job["id"]) == job["shard"]
        # the same id maps to the same shard forever
        assert coord.route(job["id"]) == coord.route(job["id"])
        coord.wait(job["id"], timeout=180)


# ----------------------------------------------------------------------
# crash recovery: SIGKILL a whole shard mid-run
# ----------------------------------------------------------------------
def test_platform_survives_shard_sigkill_exactly_once(tmp_path):
    specs = [small_spec(s) for s in range(6)]
    with platform(tmp_path) as coord:
        ids = [coord.submit(spec_to_dict(s))["id"] for s in specs]
        assert len({coord.route(i) for i in ids}) == 2  # both shards hit
        time.sleep(0.3)  # let some work start
        killed_pid = coord.kill_shard(0)
        assert killed_pid is not None
        finals = {i: coord.wait(i, timeout=240)["state"] for i in ids}
        assert all(state == "done" for state in finals.values()), finals
        stats = coord.stats()
        assert stats["restarts"] >= 1
        assert stats["shards"]["0"]["pid"] != killed_pid  # fresh process
    # exactly-once completion survives the kill: validate_journal raises
    # on any double terminal transition.
    totals = {}
    for index in range(2):
        for state, count in validate_journal(
                tmp_path / "platform" / f"shard-{index}.jsonl").items():
            totals[state] = totals.get(state, 0) + count
    assert totals == {"done": 6}


def test_platform_query_fails_over_during_kill(tmp_path):
    """A job RPC caught mid-crash retries against the respawned shard
    instead of surfacing a broken pipe."""
    spec = small_spec()
    with platform(tmp_path) as coord:
        job = coord.submit(spec_to_dict(spec))
        coord.kill_shard(job["shard"])
        # immediately query the killed shard: must fail over, not raise
        seen = coord.job(job["id"])
        assert seen["id"] == job["id"]
        assert coord.wait(job["id"], timeout=180)["state"] == "done"


# ----------------------------------------------------------------------
# cross-shard store dedup (and resharding)
# ----------------------------------------------------------------------
def test_platform_store_dedup_across_resharding(tmp_path):
    """A result solved under one shard layout completes at admission
    under another: the shared store is the cross-shard memory."""
    spec = small_spec()
    store = tmp_path / "store"
    with ShardCoordinator(str(tmp_path / "one"), shards=1, workers=1,
                          options=OPTS, store=str(store)) as coord:
        job = coord.submit(spec_to_dict(spec))
        done = coord.wait(job["id"], timeout=180)
        assert done["state"] == "done"
        assert done["attempts"] == 1

    with ShardCoordinator(str(tmp_path / "three"), shards=3, workers=1,
                          options=OPTS, store=str(store)) as coord:
        with ServiceHTTPServer(coord) as server:
            hit = submit_job(server.url, spec_to_dict(spec))
            # Tier-A admission hit: journaled straight to done on the
            # (possibly different) owning shard — no queue, no worker.
            assert hit["id"] == job["id"]
            assert hit["state"] == "done"
            assert hit["attempts"] == 0
    owning = None
    for index in range(3):
        path = tmp_path / "three" / f"shard-{index}.jsonl"
        if path.exists() and replay_journal(path).jobs:
            owning = validate_journal(path)
    assert owning == {"done": 1}


# ----------------------------------------------------------------------
# HTTP error mapping, quotas, long-poll
# ----------------------------------------------------------------------
def test_http_rejects_malformed_submissions(tmp_path):
    with platform(tmp_path, shards=1) as coord:
        with ServiceHTTPServer(coord) as server:
            for body in (b"not json", b"[1,2]",
                         json.dumps({"options": {}}).encode(),
                         json.dumps({"spec": "nope"}).encode()):
                request = urllib.request.Request(
                    server.url + "/jobs", data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST")
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(request)
                assert err.value.code == 400
            with pytest.raises(HTTPServiceError) as exc:
                submit_job(server.url, {"name": "x", "garbage": True})
            assert exc.value.status == 400


def test_http_unknown_job_and_route_are_404(tmp_path):
    with platform(tmp_path, shards=1) as coord:
        with ServiceHTTPServer(coord) as server:
            with pytest.raises(HTTPServiceError) as exc:
                fetch_job(server.url, "deadbeef-deadbeef")
            assert exc.value.status == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope")
            assert err.value.code == 404


def test_http_tenant_quota_sheds_with_429(tmp_path):
    """One tenant at quota gets 429; the shed job is never journaled."""
    # a deliberately heavier case keeps the single worker busy while
    # the backlog builds up behind it
    blocker = generate_case(seed=9, switch_size=12, n_flows=6, n_inlets=4,
                            n_conflicts=2, binding=BindingPolicy.UNFIXED)
    queued = [small_spec(s) for s in range(2)]
    with platform(tmp_path, shards=1, workers=1,
                  options={"time_limit": 8},
                  tenant_quota=1) as coord:
        with ServiceHTTPServer(coord) as server:
            submit_job(server.url, spec_to_dict(blocker))  # occupies worker
            time.sleep(0.5)
            first = submit_job(server.url, spec_to_dict(queued[0]),
                               tenant="alice")
            with pytest.raises(HTTPServiceError) as exc:
                submit_job(server.url, spec_to_dict(queued[1]),
                           tenant="alice")
            assert exc.value.status == 429
            assert "quota" in str(exc.value)
            # bob is not throttled by alice's backlog
            other = submit_job(server.url, spec_to_dict(queued[1]),
                               tenant="bob")
            for job in (first, other):
                assert wait_job(server.url, job["id"],
                                timeout=180)["state"] in ("done", "degraded")
    jobs = replay_journal(tmp_path / "platform" / "shard-0.jsonl").jobs
    # the shed submission was refused before journaling (WAL order)
    assert len(jobs) == 3


def test_http_long_poll_returns_terminal_state(tmp_path):
    spec = small_spec()
    with platform(tmp_path, shards=1) as coord:
        with ServiceHTTPServer(coord) as server:
            job = submit_job(server.url, spec_to_dict(spec))
            # one server-side long-poll observes the terminal state
            final = fetch_job(server.url, job["id"], wait=30)
            assert final["state"] == "done"
            assert final["row"]["case"] == spec.name


def test_coordinator_surfaces_admission_error_directly(tmp_path):
    """Library callers (no HTTP) get the same AdmissionError a local
    service would raise, propagated across the process boundary."""
    blocker = generate_case(seed=9, switch_size=12, n_flows=6, n_inlets=4,
                            n_conflicts=2, binding=BindingPolicy.UNFIXED)
    with platform(tmp_path, shards=1, workers=1,
                  options={"time_limit": 8}, tenant_quota=1) as coord:
        coord.submit(spec_to_dict(blocker))
        time.sleep(0.5)
        coord.submit(spec_to_dict(small_spec(0)), tenant="alice")
        with pytest.raises(AdmissionError, match="quota"):
            coord.submit(spec_to_dict(small_spec(1)), tenant="alice")

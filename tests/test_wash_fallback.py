"""Tests for wash-fallback synthesis (repro.core.wash_fallback)."""

import pytest

from repro.cases import nucleic_acid
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    SynthesisStatus,
    synthesize_with_wash_fallback,
)
from repro.core.verify import verify_result

OPTS = SynthesisOptions(time_limit=60)


def test_solvable_case_stays_contamination_free():
    out = synthesize_with_wash_fallback(nucleic_acid(BindingPolicy.UNFIXED),
                                        OPTS)
    assert out.contamination_free
    assert not out.used_fallback
    assert out.washes.is_wash_free
    assert "0 wash operations" in out.summary()


def test_infeasible_case_gets_wash_fallback():
    """Table 4.1's 'no solution' rows become feasible-with-washing: the
    fixed nucleic-acid case shares channels but washes between uses."""
    out = synthesize_with_wash_fallback(nucleic_acid(BindingPolicy.FIXED),
                                        OPTS)
    assert out.used_fallback
    assert out.result.status.solved
    assert out.washes.num_phases >= 1
    assert "wash phase" in out.summary()


def test_fallback_result_is_internally_consistent():
    out = synthesize_with_wash_fallback(nucleic_acid(BindingPolicy.FIXED),
                                        OPTS)
    result = out.result
    # the relaxed spec carries no conflicts, so full verification holds
    assert not result.spec.conflicts
    verify_result(result)
    # conflicting flows (of the *original* case) never share a set
    original = nucleic_acid(BindingPolicy.FIXED)
    for pair in original.conflicts:
        i, j = sorted(pair)
        assert result.set_of_flow(i) != result.set_of_flow(j)


def test_fallback_valve_analysis_recomputed():
    out = synthesize_with_wash_fallback(nucleic_acid(BindingPolicy.FIXED),
                                        OPTS)
    result = out.result
    assert result.valves is not None
    n_sets = result.num_flow_sets
    for seq in result.valves.status.values():
        assert len(seq) == n_sets


def test_wash_free_beats_fallback_on_wash_count():
    free = synthesize_with_wash_fallback(nucleic_acid(BindingPolicy.UNFIXED),
                                         OPTS)
    washed = synthesize_with_wash_fallback(nucleic_acid(BindingPolicy.FIXED),
                                           OPTS)
    assert free.washes.num_phases < washed.washes.num_phases

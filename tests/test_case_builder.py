"""Tests for the fluent case builder (repro.cases.builder)."""

import pytest

from repro.cases import CaseBuilder
from repro.core import BindingPolicy, NodePolicy, SchedulingForm, synthesize
from repro.errors import SpecError


def test_minimal_case():
    spec = (CaseBuilder("mini")
            .flow("a", "b")
            .build())
    assert spec.name == "mini"
    assert spec.modules == ["a", "b"]
    assert [f.id for f in spec.flows] == [1]
    assert spec.binding is BindingPolicy.UNFIXED


def test_modules_registered_once():
    spec = (CaseBuilder()
            .flow("src", "o1")
            .flow("src", "o2")
            .module("extra")
            .build())
    assert spec.modules == ["src", "o1", "o2", "extra"]


def test_flow_ids_sequential():
    spec = (CaseBuilder()
            .flow("a", "x").flow("b", "y").flow("a", "z")
            .build())
    assert [f.id for f in spec.flows] == [1, 2, 3]


def test_conflict_by_flow_ids():
    spec = (CaseBuilder()
            .flow("a", "x").flow("b", "y")
            .conflict(1, 2)
            .build())
    assert frozenset({1, 2}) in spec.conflicts


def test_conflict_by_inlet_names_expands_to_all_pairs():
    spec = (CaseBuilder()
            .flow("a", "x").flow("a", "y").flow("b", "z")
            .conflict("a", "b")
            .build())
    assert frozenset({1, 3}) in spec.conflicts
    assert frozenset({2, 3}) in spec.conflicts


def test_conflict_with_non_inlet_rejected():
    builder = CaseBuilder().flow("a", "x").flow("b", "y")
    builder.conflict("a", "x")  # x is an outlet
    with pytest.raises(SpecError):
        builder.build()


def test_mixed_conflict_arguments_rejected():
    with pytest.raises(SpecError):
        CaseBuilder().flow("a", "x").conflict("a", 1)


def test_fixed_policy():
    spec = (CaseBuilder(switch_size=8)
            .flow("a", "b")
            .fixed(a="T1", b="B1")
            .build())
    assert spec.binding is BindingPolicy.FIXED
    assert spec.fixed_binding == {"a": "T1", "b": "B1"}


def test_clockwise_policy_defaults_to_registration_order():
    spec = (CaseBuilder(switch_size=8)
            .flow("a", "b").flow("c", "d")
            .clockwise()
            .build())
    assert spec.binding is BindingPolicy.CLOCKWISE
    assert spec.module_order == ["a", "b", "c", "d"]
    explicit = (CaseBuilder(switch_size=8)
                .flow("a", "b").flow("c", "d")
                .clockwise("d", "c", "b", "a")
                .build())
    assert explicit.module_order == ["d", "c", "b", "a"]


def test_tuning_knobs():
    spec = (CaseBuilder(switch_size=12)
            .flow("a", "b")
            .weights(alpha=5.0, beta=1.0)
            .max_sets(2)
            .node_policy(NodePolicy.PAPER)
            .scheduling_form(SchedulingForm.COMPACT)
            .build())
    assert spec.alpha == 5.0 and spec.beta == 1.0
    assert spec.max_sets == 2
    assert spec.node_policy is NodePolicy.PAPER
    assert spec.scheduling_form is SchedulingForm.COMPACT


def test_scalable_switch():
    spec = CaseBuilder(switch_size=8, scalable=True).flow("a", "b").build()
    assert "scalable" in spec.switch.name


def test_built_case_synthesizes():
    spec = (CaseBuilder("e2e", switch_size=8)
            .flow("sample", "mix1")
            .flow("buffer", "mix2")
            .conflict("sample", "buffer")
            .build())
    result = synthesize(spec)
    assert result.status.solved
    p1, p2 = result.flow_paths[1], result.flow_paths[2]
    assert not (set(p1.nodes) & set(p2.nodes))

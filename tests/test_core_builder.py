"""White-box tests for the IQP builder (repro.core.builder)."""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
    conflict_pair,
)
from repro.core.builder import SynthesisModelBuilder
from repro.core.synthesizer import SynthesisOptions, build_catalog
from repro.switches import CrossbarSwitch


def build(spec, **opts):
    catalog = build_catalog(spec, SynthesisOptions(**opts))
    return SynthesisModelBuilder(spec, catalog).build()


def fixed_spec(**overrides):
    kwargs = dict(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
    )
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)


def test_fixed_policy_restricts_catalog():
    """Under fixed binding the catalog covers only the bound pins, which
    is why the paper's fixed runs are orders of magnitude faster."""
    built = build(fixed_spec())
    starts = {p.source_pin for p in built.catalog}
    assert starts <= {"T1", "T2", "B1", "B2"}
    full = build_catalog(fixed_spec(binding=BindingPolicy.UNFIXED,
                                    fixed_binding=None),
                         SynthesisOptions())
    assert len(built.catalog) < len(full)


def test_x_variables_one_per_allowed_path():
    built = build(fixed_spec())
    for f in built.spec.flows:
        allowed = built.allowed_paths[f.id]
        assert len(allowed) >= 1
        for p in allowed:
            assert (f.id, p.index) in built.x


def test_y_variables_cover_all_module_pin_pairs():
    spec = fixed_spec()
    built = build(spec)
    assert len(built.y) == len(spec.modules) * spec.switch.n_pins


def test_sites_cover_nodes_and_segments():
    spec = fixed_spec()
    built = build(spec)
    kinds = {s[0] for s in built.sites}
    assert kinds == {"node", "seg"}
    node_sites = [s for s in built.sites if s[0] == "node"]
    assert len(node_sites) == len(spec.switch.all_nodes())


def test_paper_node_policy_shrinks_sites():
    all_sites = build(fixed_spec(node_policy=NodePolicy.ALL)).sites
    paper_sites = build(fixed_spec(node_policy=NodePolicy.PAPER)).sites
    assert len(paper_sites) < len(all_sites)
    paper_nodes = {s[1] for s in paper_sites if s[0] == "node"}
    assert paper_nodes == {"C", "T", "R", "B", "L"}


def test_set_variables_triangular_symmetry():
    """Flow at rank r may only enter sets 0..r."""
    spec = fixed_spec()
    built = build(spec)
    for rank, f in enumerate(spec.flows):
        for s in range(spec.effective_max_sets()):
            present = (f.id, s) in built.w
            assert present == (s <= rank)


def test_rotation_symmetry_constraint_only_for_free_policies():
    names_fixed = {c.name for c in build(fixed_spec()).model.constraints}
    assert "rot_symmetry" not in names_fixed
    spec = fixed_spec(binding=BindingPolicy.UNFIXED, fixed_binding=None)
    names_unfixed = {c.name for c in build(spec).model.constraints}
    assert "rot_symmetry" in names_unfixed


def test_clockwise_adds_pin_index_machinery():
    spec = fixed_spec(binding=BindingPolicy.CLOCKWISE, fixed_binding=None,
                      module_order=["i1", "o1", "i2", "o2"])
    built = build(spec)
    assert set(built.pin_index_var) == set(spec.modules)
    assert set(built.wrap_q) == set(spec.modules)
    names = {c.name for c in built.model.constraints}
    assert "cw_wrap" in names


def test_scheduling_forms_model_sizes():
    """The compact form never has more variables than the paper form."""
    paper = build(fixed_spec(scheduling_form=SchedulingForm.PAPER))
    compact = build(fixed_spec(scheduling_form=SchedulingForm.COMPACT))
    assert compact.model.num_vars <= paper.model.num_vars


def test_conflict_constraints_emitted_per_pair_site():
    # diagonal transports whose candidate paths overlap in the middle,
    # so both flows can reach shared sites and constraints materialize
    spec = fixed_spec(
        fixed_binding={"i1": "T1", "o1": "B2", "i2": "T2", "o2": "B1"},
        conflicts={conflict_pair(1, 2)},
    )
    built = build(spec)
    cf_names = [c.name for c in built.model.constraints
                if c.name.startswith("cf_")]
    assert cf_names
    # only sites reachable by both flows get a constraint
    for name in cf_names:
        assert name.startswith("cf_1_2_")


def test_objective_structure():
    spec = fixed_spec(alpha=3.0, beta=7.0)
    built = build(spec)
    model = built.model
    assert model.minimize
    # objective references the set indicators and the used-segment vars
    obj_vars = set(model.objective.terms)
    assert set(built.u.values()) <= obj_vars
    assert set(built.used.values()) <= obj_vars


def test_no_flows_builds_binding_only_model():
    spec = fixed_spec(flows=[])
    built = build(spec)
    assert not built.x and not built.w and not built.u
    assert built.model.num_constraints > 0  # binding constraints remain
    sol = built.model.solve()
    assert sol.is_optimal

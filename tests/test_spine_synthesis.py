"""Synthesis on the spine baseline: the §1 claim, self-derived.

The synthesizer is topology-generic, so we can point it at Columba's
spine structure. Without conflicts it produces valid (set-serialized)
schedules — the stub valves protect the shared spine. With conflicting
fluids it proves *no solution*: a spine cannot be made
contamination-free, which is exactly why the paper designs a crossbar.
"""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisOptions,
    SynthesisStatus,
    conflict_pair,
    synthesize,
)
from repro.sim import simulate
from repro.switches import SpineSwitch

OPTS = SynthesisOptions(time_limit=30)


def spine_spec(conflicts=frozenset()):
    return SwitchSpec(
        switch=SpineSwitch(6),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts=set(conflicts),
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "P_T1", "o1": "P_R", "i2": "P_B1", "o2": "P_B2"},
    )


def test_spine_without_conflicts_synthesizes():
    res = synthesize(spine_spec(), OPTS)
    assert res.status is SynthesisStatus.OPTIMAL
    # both flows need the shared spine, so they serialize into two sets
    assert res.num_flow_sets == 2
    # the stub valves are the essential ones protecting each set
    assert res.num_valves >= 2


def test_spine_schedule_executes_cleanly():
    res = synthesize(spine_spec(), OPTS)
    report = simulate(res)
    assert report.is_clean, report.summary()


def test_spine_with_conflicts_is_provably_unsynthesizable():
    """Conflicting fluids must be node-disjoint for all time; on a
    spine every transport crosses the same junction chain, so the model
    proves infeasibility — the paper's motivating observation."""
    res = synthesize(spine_spec({conflict_pair(1, 2)}), OPTS)
    assert res.status is SynthesisStatus.NO_SOLUTION


def test_crossbar_solves_the_same_conflicting_case():
    """The same conflicting transports are routable apart on the
    proposed 8-pin crossbar."""
    from repro.switches import CrossbarSwitch

    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.UNFIXED,
    )
    res = synthesize(spec, SynthesisOptions(time_limit=60))
    assert res.status.solved

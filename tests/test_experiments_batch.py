"""Tests for batch sweeps and CSV export (repro.experiments.batch)."""

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.errors import ReproError
from repro.experiments import load_csv, run_batch
from repro.experiments.batch import CSV_COLUMNS


def small_specs(n=3):
    return [
        generate_case(seed=s, switch_size=8, n_flows=2, n_inlets=2,
                      n_conflicts=0, binding=BindingPolicy.FIXED)
        for s in range(n)
    ]


def test_batch_collects_a_row_per_spec():
    batch = run_batch(small_specs(3), SynthesisOptions(time_limit=30))
    assert len(batch.rows) == 3
    assert batch.solved + batch.failed == 3
    assert "3 runs" in batch.summary()


def test_solved_rows_have_metrics():
    batch = run_batch(small_specs(2), SynthesisOptions(time_limit=30))
    for row in batch.rows:
        if row["status"] in ("optimal", "feasible"):
            assert row["length_mm"] is not None
            assert row["num_sets"] >= 1


def test_csv_roundtrip(tmp_path):
    batch = run_batch(small_specs(2), SynthesisOptions(time_limit=30))
    path = batch.to_csv(tmp_path / "runs.csv")
    rows = load_csv(path)
    assert len(rows) == 2
    assert rows[0]["case"].startswith("artificial")
    assert rows[0]["switch"] == "8-pin"


def test_missing_csv_rejected(tmp_path):
    with pytest.raises(ReproError):
        load_csv(tmp_path / "nope.csv")


def test_group_mean():
    batch = run_batch(small_specs(3), SynthesisOptions(time_limit=30))
    means = batch.group_mean("binding", "runtime_s")
    assert "fixed" in means
    assert means["fixed"] >= 0


def test_on_result_callback():
    seen = []
    run_batch(small_specs(2), SynthesisOptions(time_limit=30),
              on_result=lambda spec, res: seen.append((spec.name,
                                                       res.status.value)))
    assert len(seen) == 2


# ----------------------------------------------------------------------
# fault tolerance: crashing specs, dead workers, checkpoints
# ----------------------------------------------------------------------
def poisoned_specs(n=4, bad=1):
    """n valid specs with one made to crash inside the model builder.

    The binding is mutated *after* construction (validation runs in
    ``__post_init__``), so the crash only surfaces mid-synthesis — the
    shape of a genuinely unexpected failure.
    """
    specs = small_specs(n)
    victim = specs[bad]
    victim.fixed_binding[next(iter(victim.fixed_binding))] = "no_such_pin"
    return specs


def test_error_column_is_part_of_the_schema():
    assert CSV_COLUMNS[-1] == "error"


def test_crashing_spec_yields_error_row_not_batch_abort():
    # on_error="raise" lets the crash escape synthesize(); the batch
    # layer must still contain it to one row.
    batch = run_batch(poisoned_specs(4, bad=1),
                      SynthesisOptions(time_limit=30, on_error="raise"))
    assert len(batch.rows) == 4
    assert batch.solved == 3
    assert batch.errors == 1
    bad = batch.rows[1]
    assert bad["status"] == "error"
    assert "SwitchModelError" in bad["error"]
    assert "crashed" in batch.summary()


def test_parallel_batch_matches_serial_including_the_crash():
    options = SynthesisOptions(time_limit=30, on_error="raise")
    serial = run_batch(poisoned_specs(4, bad=2), options)
    parallel = run_batch(poisoned_specs(4, bad=2), options, workers=2)
    assert len(parallel.rows) == 4

    def strip_runtime(rows):
        return [{k: v for k, v in r.items() if k != "runtime_s"}
                for r in rows]

    assert strip_runtime(parallel.rows) == strip_runtime(serial.rows)


def test_on_result_skipped_for_error_rows():
    seen = []
    run_batch(poisoned_specs(3, bad=0),
              SynthesisOptions(time_limit=30, on_error="raise"),
              on_result=lambda spec, res: seen.append(spec.name))
    assert len(seen) == 2  # the crashed spec has no result to pass


def test_checkpoint_written_incrementally(tmp_path):
    path = tmp_path / "ckpt.csv"
    batch = run_batch(small_specs(2), SynthesisOptions(time_limit=30),
                      checkpoint=path)
    on_disk = load_csv(path)
    assert len(on_disk) == 2
    assert [r["case"] for r in on_disk] == \
        [r["case"] for r in batch.rows]


def test_checkpoint_resume_skips_finished_prefix(tmp_path):
    path = tmp_path / "ckpt.csv"
    specs = small_specs(3)
    run_batch(specs[:2], SynthesisOptions(time_limit=30), checkpoint=path)

    executed = []
    full = run_batch(specs, SynthesisOptions(time_limit=30),
                     checkpoint=path, resume=True,
                     on_result=lambda spec, res: executed.append(spec.name))
    # Only the remainder actually ran ...
    assert executed == [specs[2].name]
    # ... but the batch (and the CSV) cover the whole list.
    assert len(full.rows) == 3
    assert len(load_csv(path)) == 3


def test_resume_rejects_oversized_checkpoint(tmp_path):
    path = tmp_path / "ckpt.csv"
    run_batch(small_specs(3), SynthesisOptions(time_limit=30),
              checkpoint=path)
    with pytest.raises(ReproError):
        run_batch(small_specs(2), SynthesisOptions(time_limit=30),
                  checkpoint=path, resume=True)

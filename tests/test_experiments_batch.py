"""Tests for batch sweeps and CSV export (repro.experiments.batch)."""

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.errors import ReproError
from repro.experiments import load_csv, run_batch


def small_specs(n=3):
    return [
        generate_case(seed=s, switch_size=8, n_flows=2, n_inlets=2,
                      n_conflicts=0, binding=BindingPolicy.FIXED)
        for s in range(n)
    ]


def test_batch_collects_a_row_per_spec():
    batch = run_batch(small_specs(3), SynthesisOptions(time_limit=30))
    assert len(batch.rows) == 3
    assert batch.solved + batch.failed == 3
    assert "3 runs" in batch.summary()


def test_solved_rows_have_metrics():
    batch = run_batch(small_specs(2), SynthesisOptions(time_limit=30))
    for row in batch.rows:
        if row["status"] in ("optimal", "feasible"):
            assert row["length_mm"] is not None
            assert row["num_sets"] >= 1


def test_csv_roundtrip(tmp_path):
    batch = run_batch(small_specs(2), SynthesisOptions(time_limit=30))
    path = batch.to_csv(tmp_path / "runs.csv")
    rows = load_csv(path)
    assert len(rows) == 2
    assert rows[0]["case"].startswith("artificial")
    assert rows[0]["switch"] == "8-pin"


def test_missing_csv_rejected(tmp_path):
    with pytest.raises(ReproError):
        load_csv(tmp_path / "nope.csv")


def test_group_mean():
    batch = run_batch(small_specs(3), SynthesisOptions(time_limit=30))
    means = batch.group_mean("binding", "runtime_s")
    assert "fixed" in means
    assert means["fixed"] >= 0


def test_on_result_callback():
    seen = []
    run_batch(small_specs(2), SynthesisOptions(time_limit=30),
              on_result=lambda spec, res: seen.append((spec.name,
                                                       res.status.value)))
    assert len(seen) == 2

"""Tests for routing-space analysis (repro.analysis.routing_space).

These pin down §2.1's structural comparison quantitatively.
"""

import pytest

from repro.analysis import (
    disjoint_transport_capacity,
    forced_through_single_node,
    pin_connectivity,
    routing_space_report,
)
from repro.errors import ReproError
from repro.switches import CrossbarSwitch, GRUSwitch, SpineSwitch


@pytest.fixture(scope="module")
def crossbar():
    return CrossbarSwitch(8)


@pytest.fixture(scope="module")
def gru():
    return GRUSwitch(8)


def test_gru_same_side_pins_have_zero_connectivity(gru):
    """§2.1: 'pins TL and T are connected to the same and only node N'
    — conflicting fluids entering there can never stay apart."""
    assert pin_connectivity(gru, "TL", "T") == 0
    assert forced_through_single_node(gru, "TL", "T") == "N"


def test_crossbar_same_side_pins_have_two_routes(crossbar):
    """The proposed switch separates same-side pins onto different
    corners, giving two disjoint routes between them."""
    assert pin_connectivity(crossbar, "T1", "T2") == 2
    assert forced_through_single_node(crossbar, "T1", "T2") is None


def test_corner_mates_are_the_crossbar_bottleneck(crossbar):
    assert pin_connectivity(crossbar, "T1", "L1") == 0
    assert forced_through_single_node(crossbar, "T1", "L1") == "TL"


def test_parallel_transport_capacity_crossbar_beats_gru(crossbar, gru):
    """Matched workload (two same-side sources to the opposite side):
    the crossbar carries both transports disjointly, the GRU only one —
    the quantitative form of 'insufficient routing space'."""
    assert disjoint_transport_capacity(
        crossbar, [("T1", "B1"), ("T2", "B2")]) == 2
    assert disjoint_transport_capacity(
        gru, [("TL", "BL"), ("T", "B")]) == 1


def test_spine_has_worst_mean_connectivity():
    rows = {r["switch"]: r for r in (
        routing_space_report(CrossbarSwitch(8)).row(),
        routing_space_report(GRUSwitch(8)).row(),
        routing_space_report(SpineSwitch(8)).row(),
    )}
    assert rows["spine-8pin"]["mean connectivity"] < \
        rows["crossbar-8pin"]["mean connectivity"]
    assert rows["spine-8pin"]["single-node pin pairs"] > \
        rows["crossbar-8pin"]["single-node pin pairs"]


def test_report_shape(crossbar):
    report = routing_space_report(crossbar)
    assert report.min_pin_connectivity == 0
    assert len(report.single_node_pin_pairs) == 4  # one per corner
    for a, b, node in report.single_node_pin_pairs:
        assert forced_through_single_node(crossbar, a, b) == node


def test_capacity_of_crossing_diagonals(crossbar):
    """Crossing diagonal transports interleave on the planar switch, so
    only one of them can run at a time."""
    assert disjoint_transport_capacity(
        crossbar, [("T1", "B2"), ("R1", "L2")]) == 1


def test_input_validation(crossbar):
    with pytest.raises(ReproError):
        pin_connectivity(crossbar, "T1", "T1")
    with pytest.raises(ReproError):
        pin_connectivity(crossbar, "T1", "C")
    with pytest.raises(ReproError):
        disjoint_transport_capacity(crossbar, [("T1", "B1")] * 7)

"""Tests for the objective-weight sensitivity analysis."""

import pytest

from repro.analysis import PAPER_WEIGHTS, weight_sweep
from repro.core import BindingPolicy, Flow, SwitchSpec, SynthesisOptions
from repro.errors import ReproError
from repro.switches import CrossbarSwitch


def trade_off_spec():
    """Two inlets sharing a corner: the corner forces 2 sets at every
    weighting, which makes this a stable sweep fixture (the crossbar
    family's structure rarely allows genuine sets-vs-length trades —
    see test_alpha_acts_as_tiebreaker for the effect that does occur)."""
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "B2"},
        # detours make the single-set solution possible at extra length
        name="trade-off",
    )


OPTS = SynthesisOptions(time_limit=60, path_slack=4.0)


def test_sweep_runs_all_weights():
    sweep = weight_sweep(trade_off_spec(), options=OPTS)
    assert len(sweep.points) == 5
    assert all(p.status for p in sweep.points)


def test_paper_weights_prefer_short_channels():
    """With β dominant (the paper's α=1, β=100), the optimum takes the
    short shared corridor and pays an extra flow set."""
    sweep = weight_sweep(trade_off_spec(), weights=[PAPER_WEIGHTS],
                         options=OPTS)
    (point,) = sweep.solved()
    assert point.num_sets >= 1
    # the length-dominant optimum is the minimum-length one
    len_only = weight_sweep(trade_off_spec(), weights=[(0.0, 1.0)],
                            options=OPTS).solved()[0]
    assert point.length_mm == pytest.approx(len_only.length_mm)


def test_set_dominant_weights_minimize_sets():
    sweep = weight_sweep(trade_off_spec(),
                         weights=[(1000.0, 1.0), (0.0, 1.0)],
                         options=OPTS)
    set_dom, len_dom = sweep.solved()
    assert set_dom.num_sets <= len_dom.num_sets
    if set_dom.num_sets < len_dom.num_sets:
        # fewer sets can only be bought with longer channels
        assert set_dom.length_mm >= len_dom.length_mm - 1e-9


def test_pareto_front_monotone():
    sweep = weight_sweep(trade_off_spec(), options=OPTS)
    front = sweep.pareto_front()
    assert front
    sets = [s for s, _ in front]
    lengths = [l for _, l in front]
    assert sets == sorted(sets)
    assert lengths == sorted(lengths, reverse=True)


def test_rows_shape():
    sweep = weight_sweep(trade_off_spec(), weights=[PAPER_WEIGHTS],
                         options=OPTS)
    (row,) = sweep.rows()
    assert {"alpha", "beta", "#s", "L(mm)", "status", "T(s)"} <= set(row)


def test_empty_weights_rejected():
    with pytest.raises(ReproError):
        weight_sweep(trade_off_spec(), weights=[])


def test_alpha_acts_as_tiebreaker():
    """The paper's α-term is load-bearing even under the length-dominant
    default: with α = 0 the optimizer may scatter flows over extra sets
    at equal channel length; any α > 0 collapses them back."""
    from repro.cases import generate_case

    def spec():
        return generate_case(seed=0, switch_size=8, n_flows=3, n_inlets=2,
                             n_conflicts=0, binding=BindingPolicy.FIXED)

    opts = SynthesisOptions(time_limit=30, path_slack=4.0)
    sweep = weight_sweep(spec(), weights=[(1000.0, 1.0), (0.0, 1.0)],
                         options=opts)
    set_dom, len_only = sweep.solved()
    assert set_dom.length_mm == pytest.approx(len_only.length_mm)
    assert set_dom.num_sets <= len_only.num_sets
    # with alpha disabled the minimal-set guarantee disappears; the
    # solver found a 1-set solution when asked, so more sets at alpha=0
    # can only be the missing tiebreaker
    assert set_dom.num_sets == 1

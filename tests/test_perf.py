"""Tests for the perf instrumentation module (repro.perf)."""

import time

import pytest

from repro.perf import (
    PerfRecorder,
    PhaseTimings,
    emit_bench_json,
    format_phase_table,
    load_bench_json,
    phase_timer,
)


def test_phase_timings_add_and_total():
    t = PhaseTimings()
    t.add("solve", 1.0)
    t.add("solve", 0.5)
    t.add("build", 0.25)
    assert t["solve"] == pytest.approx(1.5)
    assert t.total == pytest.approx(1.75)


def test_phase_timings_merge_with_prefix():
    outer = PhaseTimings({"solve": 1.0})
    inner = {"presolve": 0.2, "solve": 0.7}
    outer.merge(inner)
    assert outer["solve"] == pytest.approx(1.7)
    assert outer["presolve"] == pytest.approx(0.2)
    prefixed = PhaseTimings()
    prefixed.merge(inner, prefix="sub_")
    assert set(prefixed) == {"sub_presolve", "sub_solve"}


def test_phase_timings_ordered_canonical_first():
    t = PhaseTimings({"zz_custom": 1.0, "solve": 1.0, "build": 1.0})
    assert t.ordered() == ["build", "solve", "zz_custom"]


def test_recorder_phase_context_manager():
    rec = PerfRecorder("demo")
    with rec.phase("solve"):
        time.sleep(0.01)
    assert rec.timings["solve"] >= 0.005


def test_recorder_phase_records_on_exception():
    rec = PerfRecorder()
    with pytest.raises(RuntimeError):
        with rec.phase("solve"):
            raise RuntimeError("boom")
    assert "solve" in rec.timings


def test_recorder_counters():
    rec = PerfRecorder()
    rec.count("lp_relaxations")
    rec.count("lp_relaxations", 4)
    assert rec.counters == {"lp_relaxations": 5}


def test_recorder_record_shape():
    rec = PerfRecorder("case_x")
    rec.timings.add("build", 0.5)
    rec.count("nodes", 3)
    row = rec.record()
    assert row["name"] == "case_x"
    assert row["phases"] == {"build": 0.5}
    assert row["total_s"] == pytest.approx(0.5)
    assert row["counters"] == {"nodes": 3}


def test_phase_timer_none_recorder_is_noop():
    with phase_timer(None, "anything"):
        pass
    rec = PerfRecorder()
    with phase_timer(rec, "solve"):
        pass
    assert "solve" in rec.timings


def test_format_phase_table():
    text = format_phase_table(PhaseTimings({"build": 1.0, "solve": 3.0}))
    assert "build" in text and "solve" in text and "total" in text
    assert "75.0%" in text
    assert format_phase_table(PhaseTimings()) == "  (no phases recorded)"


def test_bench_json_roundtrip(tmp_path):
    path = tmp_path / "BENCH_opt.json"
    records = [{"name": "a", "phases": {"solve": 0.1}, "total_s": 0.1}]
    emit_bench_json(path, records, meta={"host": "ci"})
    data = load_bench_json(path)
    assert data["schema"] == "repro-bench-v1"
    assert data["records"] == records
    assert data["meta"] == {"host": "ci"}


def test_load_bench_json_missing_or_corrupt(tmp_path):
    assert load_bench_json(tmp_path / "absent.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert load_bench_json(bad) is None
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"schema": "x"}', encoding="utf-8")
    assert load_bench_json(wrong) is None


def test_solution_carries_timings():
    from repro.opt import Model

    m = Model()
    x = m.add_integer("x", 0, 5)
    m.add_constr(x >= 2)
    m.set_objective(x, "min")
    sol = m.solve()
    assert "solve" in sol.timings
    assert sol.timings.total > 0


def test_synthesis_result_carries_phase_breakdown():
    from repro.cases import chip_sw1
    from repro.core import BindingPolicy, SynthesisOptions, synthesize

    result = synthesize(chip_sw1(BindingPolicy.FIXED), SynthesisOptions())
    for phase in ("catalog", "build", "solve", "extract", "analyze", "verify"):
        assert phase in result.timings, phase
    # phases are disjoint slices of the pipeline, so they cannot
    # meaningfully exceed the end-to-end wall clock
    assert result.timings.total <= result.runtime * 1.5 + 0.1


def test_phase_order_covers_pipeline_tail():
    from repro.perf.record import PHASE_ORDER

    # degradation and pressure sharing are real pipeline phases and must
    # sort in pipeline position, not the alphabetical tail
    for phase in ("pressure", "degrade"):
        assert phase in PHASE_ORDER, phase
    assert PHASE_ORDER.index("analyze") < PHASE_ORDER.index("pressure")
    assert PHASE_ORDER.index("pressure") < PHASE_ORDER.index("verify")
    assert PHASE_ORDER.index("degrade") == len(PHASE_ORDER) - 1
    t = PhaseTimings({"degrade": 0.1, "pressure": 0.2, "analyze": 0.3})
    assert t.ordered() == ["analyze", "pressure", "degrade"]


def test_nested_phases_record_both_levels():
    rec = PerfRecorder()
    with rec.phase("solve"):
        with rec.phase("presolve"):
            time.sleep(0.002)
    assert set(rec.timings) == {"solve", "presolve"}
    assert rec.timings["solve"] >= rec.timings["presolve"]


def test_recorder_phase_emits_span_on_installed_tracer():
    from repro.obs import Tracer, use_tracer

    rec = PerfRecorder()
    tracer = Tracer()
    with use_tracer(tracer):
        with rec.phase("solve"):
            pass
    assert rec.timings["solve"] >= 0.0  # timing still recorded
    records = tracer.records(with_metrics=False)
    names = [r["name"] for r in records if r["type"] == "span_begin"]
    assert names == ["solve"]
    assert records[0].get("attrs") == {"kind": "phase"}


def test_format_phase_table_accepts_plain_dict():
    text = format_phase_table({"zeta": 1.0, "alpha": 1.0})
    # plain dicts keep insertion order (no canonical reordering)
    assert text.index("zeta") < text.index("alpha")

"""Unit tests for the Model container (repro.opt.model)."""

import pytest

from repro.errors import ModelError
from repro.opt import Model, SolveStatus, VarType, quicksum


def test_model_repr_and_counts():
    m = Model("demo")
    x = m.add_binary("x")
    m.add_constr(x <= 1)
    assert m.num_vars == 1
    assert m.num_constraints == 1
    assert "MILP" in repr(m)


def test_quadratic_model_detected():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y <= 1)
    assert not m.is_linear()
    assert "MIQP" in repr(m)


def test_add_constr_rejects_bool():
    m = Model()
    m.add_binary("x")
    with pytest.raises(ModelError):
        m.add_constr(True)  # type: ignore[arg-type]


def test_cross_model_variables_rejected():
    m1, m2 = Model("a"), Model("b")
    x = m1.add_binary("x")
    with pytest.raises(ModelError):
        m2.add_constr(x <= 1)


def test_objective_sense_validation():
    m = Model()
    x = m.add_binary("x")
    with pytest.raises(ModelError):
        m.set_objective(x, "maximize-ish")


def test_var_by_name():
    m = Model()
    x = m.add_binary("x")
    assert m.var_by_name("x") is x
    with pytest.raises(ModelError):
        m.var_by_name("nope")


def test_constant_objective_allowed():
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x >= 0)
    m.set_objective(42, "min")
    sol = m.solve()
    assert sol.is_optimal
    assert sol.objective == pytest.approx(42)


def test_check_assignment_reports_violations():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    c = m.add_constr(x + y <= 1, "cap")
    violated = m.check_assignment({x: 1.0, y: 1.0})
    assert violated == [c]
    assert m.check_assignment({x: 1.0, y: 0.0}) == []


def test_empty_model_solves():
    m = Model()
    sol = m.solve()
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == 0.0


def test_add_constrs_bulk():
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(3)]
    added = m.add_constrs((x <= 1 for x in xs), prefix="cap")
    assert len(added) == 3
    assert added[0].name == "cap0"


def test_solution_value_and_int_value():
    m = Model()
    x = m.add_integer("x", 0, 10)
    m.add_constr(x >= 3)
    m.set_objective(x, "min")
    sol = m.solve()
    assert sol.int_value(x) == 3
    assert sol.value(2 * x + 1) == pytest.approx(7)


def test_solution_without_values_raises():
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x >= 1)
    m.add_constr(x <= 0)
    sol = m.solve()
    assert sol.status is SolveStatus.INFEASIBLE
    with pytest.raises(ModelError):
        sol.value(x)


def test_maximization_objective_reported_in_original_sense():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x + y <= 1)
    m.set_objective(3 * x + 5 * y + 2, "max")
    sol = m.solve()
    assert sol.objective == pytest.approx(7)
    assert sol.value(y) == pytest.approx(1)


def test_model_stats():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    z = m.add_integer("z", 0, 3)
    c = m.add_var("c", VarType.CONTINUOUS, 0, 1)
    m.add_constr(x + y <= 1)
    m.add_constr(x * y + z >= 1)
    m.add_constr(z == 2)
    stats = m.stats()
    assert stats["variables"] == 4
    assert stats["binary"] == 2
    assert stats["integer"] == 1
    assert stats["continuous"] == 1
    assert stats["le"] == 1 and stats["ge"] == 1 and stats["eq"] == 1
    assert stats["quadratic_products"] == 1
    assert stats["nonzeros"] == 5


def test_model_stats_counts_objective_products():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.set_objective(x * y, "min")
    assert m.stats()["quadratic_products"] == 1

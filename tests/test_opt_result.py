"""Coverage tests for solver result types and the standard form."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.opt import LinExpr, Model, Solution, SolveStatus, VarType
from repro.opt.solvers.base import StandardForm


def test_status_has_solution_flags():
    assert SolveStatus.OPTIMAL.has_solution
    assert SolveStatus.FEASIBLE.has_solution
    assert not SolveStatus.INFEASIBLE.has_solution
    assert not SolveStatus.TIME_LIMIT.has_solution
    assert not SolveStatus.UNBOUNDED.has_solution


def test_solution_restrict_drops_aux_vars():
    m = Model()
    x = m.add_binary("x")
    y = m.add_binary("y")
    sol = Solution(SolveStatus.OPTIMAL, 1.0, {x: 1.0, y: 0.0})
    restricted = sol.restrict({x})
    assert set(restricted.values) == {x}
    assert restricted.status is SolveStatus.OPTIMAL
    assert restricted.objective == 1.0


def test_solution_restrict_without_values():
    sol = Solution(SolveStatus.INFEASIBLE)
    restricted = sol.restrict(set())
    assert restricted.values is None


def test_int_value_tolerance():
    m = Model()
    x = m.add_integer("x", 0, 5)
    sol = Solution(SolveStatus.OPTIMAL, 0.0, {x: 2.0000001})
    assert sol.int_value(x) == 2
    sol2 = Solution(SolveStatus.OPTIMAL, 0.0, {x: 2.4})
    with pytest.raises(ModelError):
        sol2.int_value(x)


def test_solution_value_of_constant():
    sol = Solution(SolveStatus.OPTIMAL, 0.0, {})
    assert sol.value(7) == 7.0


def test_solution_repr():
    sol = Solution(SolveStatus.OPTIMAL, 3.5, {}, runtime=0.1, solver="highs")
    text = repr(sol)
    assert "optimal" in text and "highs" in text


# ----------------------------------------------------------------------
# StandardForm
# ----------------------------------------------------------------------
def test_standard_form_matrices():
    m = Model()
    x = m.add_binary("x")
    y = m.add_integer("y", 0, 4)
    m.add_constr(x + 2 * y <= 5)
    m.add_constr(x - y >= -1)
    m.add_constr(x + y == 2)
    m.set_objective(x + 3 * y, "min")
    form = StandardForm(m)
    assert form.A_ub.shape == (2, 2)   # LE row + flipped GE row
    assert form.A_eq.shape == (1, 2)
    assert form.b_eq[0] == pytest.approx(2)
    # the GE row is negated into <= form
    np.testing.assert_allclose(form.A_ub[1], [-1, 1])
    assert form.b_ub[1] == pytest.approx(1)
    assert list(form.integrality) == [1, 1]


def test_standard_form_maximization_sign():
    m = Model()
    x = m.add_binary("x")
    m.set_objective(5 * x + 1, "max")
    form = StandardForm(m)
    assert form.c[0] == pytest.approx(-5)
    # internal min value -5 (at x=1) maps back to 5*1 + 1 = 6
    assert form.report_objective(-5.0) == pytest.approx(6.0)


def test_branch_bound_max_with_constant_objective():
    """Regression: the sign flip must not negate the constant term."""
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x <= 1)
    m.set_objective(5 * x + 1, "max")
    sol = m.solve(backend="branch_bound")
    assert sol.objective == pytest.approx(6.0)


def test_standard_form_rejects_quadratic():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y <= 1)
    with pytest.raises(ModelError):
        StandardForm(m)


def test_standard_form_solution_dict():
    m = Model()
    x = m.add_binary("x")
    y = m.add_binary("y")
    form = StandardForm(m)
    values = form.solution_dict(np.array([1.0, 0.0]))
    assert values[x] == 1.0 and values[y] == 0.0

"""Tests for the resilient synthesis service (repro.service).

Covers every component in isolation — backoff schedule, circuit
breaker state machine (with an injected clock, no sleeping), bounded
queue with shedding, supervised workers, write-ahead journal replay —
and the assembled :class:`SynthesisService` end to end: idempotent
submission, retry with backoff, the backend degradation ladder,
graceful shutdown modes and restart-from-journal.
"""

import json
import threading
import time

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.errors import AdmissionError, JournalError, ReproError, ServiceError
from repro.obs import Tracer, use_tracer
from repro.obs.export import validate_trace_records
from repro.service import (
    Backoff,
    BreakerBoard,
    CircuitBreaker,
    JobQueue,
    JobRecord,
    Journal,
    Supervisor,
    SynthesisService,
    job_id_for,
    options_from_dict,
    options_to_dict,
    replay_journal,
    validate_journal,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.testing import FaultPlan, install_faulty_backend


def small_spec(seed=0):
    return generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


OPTS = SynthesisOptions(time_limit=30)


# ----------------------------------------------------------------------
# backoff
# ----------------------------------------------------------------------
def test_backoff_caps_grow_exponentially_then_saturate():
    b = Backoff(base=0.1, factor=2.0, max_delay=0.5, jitter=0.0)
    assert [b.cap(n) for n in (1, 2, 3, 4, 5)] == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_backoff_equal_jitter_stays_in_band():
    b = Backoff(base=0.2, factor=2.0, max_delay=10.0, jitter=0.5, seed=7)
    for attempt in range(1, 8):
        cap = b.cap(attempt)
        d = b.delay(attempt)
        assert cap * 0.5 <= d <= cap  # never immediate, never above cap


def test_backoff_is_seed_deterministic():
    a = [Backoff(seed=42).delay(n) for n in (1, 2, 3)]
    b = [Backoff(seed=42).delay(n) for n in (1, 2, 3)]
    assert a == b


def test_backoff_rejects_bad_parameters():
    with pytest.raises(ReproError):
        Backoff(base=-1)
    with pytest.raises(ReproError):
        Backoff(factor=0.5)
    with pytest.raises(ReproError):
        Backoff(jitter=2.0)
    with pytest.raises(ReproError):
        Backoff().cap(0)


# ----------------------------------------------------------------------
# circuit breaker (driven by a fake clock — no sleeping)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_breaker_opens_after_threshold_and_refuses():
    clock = FakeClock()
    b = CircuitBreaker("cbc", failure_threshold=3, reset_timeout=10,
                       clock=clock)
    assert b.state == CLOSED
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED and b.allow()
    b.record_failure()
    assert b.state == OPEN
    assert not b.allow()
    assert b.opens == 1 and b.refusals == 1


def test_breaker_success_resets_consecutive_count():
    b = CircuitBreaker("cbc", failure_threshold=2, reset_timeout=10,
                       clock=FakeClock())
    b.record_failure()
    b.record_success()
    b.record_failure()
    assert b.state == CLOSED  # failures were not consecutive


def test_breaker_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    b = CircuitBreaker("cbc", failure_threshold=1, reset_timeout=5,
                       clock=clock)
    b.record_failure()
    assert not b.allow()
    clock.t = 5.0  # cooldown elapsed
    assert b.state == HALF_OPEN
    assert b.allow()       # the probe
    assert not b.allow()   # concurrent caller refused while probing
    b.record_success()
    assert b.state == CLOSED
    assert b.allow()


def test_breaker_failed_probe_reopens_and_restarts_cooldown():
    clock = FakeClock()
    b = CircuitBreaker("cbc", failure_threshold=1, reset_timeout=5,
                       clock=clock)
    b.record_failure()
    clock.t = 5.0
    assert b.allow()
    b.record_failure()  # probe failed
    assert b.state == OPEN
    clock.t = 9.0  # cooldown restarted at t=5, not elapsed yet
    assert not b.allow()
    clock.t = 10.0
    assert b.allow()
    b.record_success()
    assert b.state == CLOSED


def test_breaker_emits_transition_events():
    clock = FakeClock()
    tracer = Tracer("breaker")
    with use_tracer(tracer):
        b = CircuitBreaker("cbc", failure_threshold=1, reset_timeout=1,
                           clock=clock)
        b.record_failure()
        clock.t = 1.0
        b.allow()
        b.record_success()
    names = [r["name"] for r in tracer.records() if r["type"] == "event"]
    assert names == ["breaker_open", "breaker_half_open", "breaker_close"]


def test_breaker_rejects_bad_parameters():
    with pytest.raises(ReproError):
        CircuitBreaker("x", failure_threshold=0)
    with pytest.raises(ReproError):
        CircuitBreaker("x", reset_timeout=-1)


def test_breaker_board_is_per_backend():
    board = BreakerBoard(failure_threshold=1, reset_timeout=99,
                         clock=FakeClock())
    board.get("a").record_failure()
    assert board.get("a").state == OPEN
    assert board.get("b").state == CLOSED
    snap = board.snapshot()
    assert snap["a"]["opens"] == 1 and snap["b"]["opens"] == 0


# ----------------------------------------------------------------------
# bounded queue
# ----------------------------------------------------------------------
def test_queue_is_fifo_among_ready_items():
    q = JobQueue(maxsize=8)
    for item in ("a", "b", "c"):
        q.push(item)
    assert [q.pop(0.1) for _ in range(3)] == ["a", "b", "c"]


def test_queue_delayed_item_is_invisible_until_ready():
    q = JobQueue(maxsize=8)
    q.push("later", delay=0.15)
    q.push("now")
    assert q.pop(0.05) == "now"
    assert q.pop(0.01) is None  # "later" not ready yet
    assert q.pop(1.0) == "later"  # pop blocks until the delay matures


def test_queue_sheds_when_full_and_force_bypasses():
    q = JobQueue(maxsize=2)
    q.push("a")
    q.push("b")
    with pytest.raises(AdmissionError):
        q.push("c")
    assert q.shed == 1
    q.push("retry", force=True)  # retries of admitted work never shed
    assert len(q) == 3


def test_queue_close_refuses_even_forced_pushes_and_wakes_poppers():
    q = JobQueue(maxsize=2)
    q.close()
    with pytest.raises(AdmissionError):
        q.push("a", force=True)
    assert q.pop(5.0) is None  # returns immediately: closed and empty


def test_queue_drain_returns_everything_in_order():
    q = JobQueue(maxsize=8)
    q.push("b", delay=9.0)
    q.push("a")
    assert q.drain() == ["a", "b"]
    assert len(q) == 0


def test_queue_rejects_bad_maxsize():
    with pytest.raises(ReproError):
        JobQueue(maxsize=0)


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------
def test_supervisor_respawns_crashed_workers():
    done = threading.Event()
    calls = []

    def body(worker_id):
        calls.append(worker_id)
        if len(calls) == 1:
            raise RuntimeError("injected worker crash")
        done.set()
        return False

    sup = Supervisor(1, body)
    tracer = Tracer("sup")
    with use_tracer(tracer):
        sup.start()
        assert done.wait(5.0), "replacement worker never ran"
        sup.stop(timeout=5.0)
    assert sup.crashes == 1
    events = [r for r in tracer.records() if r["type"] == "event"]
    assert any(e["name"] == "worker_crashed" for e in events)


def test_supervisor_does_not_respawn_while_stopping():
    started = threading.Event()
    release = threading.Event()

    def body(worker_id):
        started.set()
        release.wait(5.0)
        raise RuntimeError("crash during shutdown")

    sup = Supervisor(1, body)
    sup.start()
    assert started.wait(5.0)
    sup._stopping = True  # stop() sets this before joining
    release.set()
    sup.stop(timeout=5.0)
    assert sup.alive() == 0
    assert sup.crashes == 1


# ----------------------------------------------------------------------
# write-ahead journal
# ----------------------------------------------------------------------
def make_record(job_id="job-1", state="submitted"):
    return JobRecord(job_id, {"name": "case"}, {"backend": "auto"},
                     state=state)


def test_journal_roundtrip_and_replay(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
        journal.record_job(make_record("b"))
        journal.record_state("a", "running", 1)
        journal.record_state("a", "done", 1, row={"status": "optimal"})
    replay = replay_journal(path)
    assert set(replay.jobs) == {"a", "b"}
    assert replay.jobs["a"].state == "done"
    assert replay.jobs["a"].row == {"status": "optimal"}
    assert replay.jobs["b"].state == "submitted"
    assert not replay.truncated


def test_journal_survives_torn_trailing_line(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
        journal.record_state("a", "done", 1)
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"type": "state", "id": "a", "sta')  # killed mid-append
    journal2 = Journal(path).open()
    assert journal2.recovered_truncation
    assert journal2.jobs["a"].state == "done"
    # The torn bytes were physically cut before appending, so the next
    # replay sees a clean segment again.
    journal2.record_state("a", "done", 2)
    journal2.close()
    final = replay_journal(path)
    assert not final.truncated
    assert final.jobs["a"].attempts == 2


def test_journal_repairs_missing_final_newline(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
    raw = path.read_bytes()
    path.write_bytes(raw.rstrip(b"\n"))  # killed between payload and \n
    with Journal(path) as journal2:
        assert journal2.jobs["a"].state == "submitted"
        journal2.record_state("a", "running", 1)
    assert replay_journal(path).jobs["a"].state == "running"


def test_journal_mid_file_corruption_is_an_error(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
    raw = path.read_text().splitlines()
    raw.insert(1, "not json at all")
    path.write_text("\n".join(raw) + "\n")
    with pytest.raises(JournalError):
        replay_journal(path)


def test_journal_rejects_bogus_records(tmp_path):
    path = tmp_path / "j.jsonl"
    for line, message in [
        ('{"type": "header", "schema": "repro-service-v99"}',
         "unsupported journal schema"),
        ('{"type": "state", "id": "ghost", "state": "done", "attempts": 1}',
         "undeclared job"),
        ('{"type": "mystery"}', "unknown record type"),
    ]:
        path.write_text(line + "\n")
        with pytest.raises(JournalError, match=message):
            replay_journal(path)


def test_journal_rejects_unknown_states(tmp_path):
    with Journal(tmp_path / "j.jsonl") as journal:
        journal.record_job(make_record("a"))
        with pytest.raises(JournalError):
            journal.record_state("a", "sideways", 1)
        with pytest.raises(JournalError):
            journal.record_state("ghost", "done", 1)


def test_journal_rotation_compacts_but_preserves_state(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
        journal.record_job(make_record("b"))
        for attempt in range(1, 20):
            journal.record_state("a", "pending", attempt)
        journal.record_state("a", "done", 20)
        lines_before = len(path.read_text().splitlines())
        journal.rotate()
        journal.record_state("b", "running", 1)  # still appendable after
    lines_after = len(path.read_text().splitlines())
    assert lines_after < lines_before
    replay = replay_journal(path)
    assert replay.jobs["a"].state == "done"
    assert replay.jobs["a"].attempts == 20
    assert replay.jobs["b"].state == "running"


def test_journal_auto_rotates_past_threshold(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path, rotate_after=10) as journal:
        journal.record_job(make_record("a"))
        for attempt in range(1, 30):
            journal.record_state("a", "pending", attempt)
    assert len(path.read_text().splitlines()) < 30
    assert replay_journal(path).jobs["a"].attempts == 29


def test_validate_journal_catches_double_completion(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
        journal.record_state("a", "done", 1)
        journal.record_state("a", "done", 2)  # the bug class under test
    with pytest.raises(JournalError, match="completed twice"):
        validate_journal(path)


def test_validate_journal_reports_state_counts(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.record_job(make_record("a"))
        journal.record_job(make_record("b"))
        journal.record_state("a", "done", 1)
    assert validate_journal(path) == {"done": 1, "submitted": 1}


# ----------------------------------------------------------------------
# options round-trip / job identity
# ----------------------------------------------------------------------
def test_options_roundtrip_drops_trace_and_unknown_keys():
    opts = SynthesisOptions(time_limit=12.5, backend="auto",
                            on_error="capture")
    data = options_to_dict(opts)
    assert "trace" not in data
    data["future_field"] = True  # a newer writer's key must not break us
    back = options_from_dict(data)
    assert back.time_limit == 12.5 and back.on_error == "capture"


def test_job_id_keyed_by_spec_and_config():
    spec_a, spec_b = small_spec(0), small_spec(1)
    assert job_id_for(spec_a, OPTS) == job_id_for(spec_a, OPTS)
    assert job_id_for(spec_a, OPTS) != job_id_for(spec_b, OPTS)
    assert job_id_for(spec_a, OPTS) != \
        job_id_for(spec_a, SynthesisOptions(time_limit=1))


# ----------------------------------------------------------------------
# the assembled service
# ----------------------------------------------------------------------
def test_service_runs_jobs_to_done(tmp_path):
    spec = small_spec()
    with SynthesisService(tmp_path / "j.jsonl", workers=2,
                          options=OPTS) as service:
        job_id = service.submit(spec)
        record = service.wait(job_id, timeout=60)
    assert record.state == "done"
    assert record.row["status"] in ("optimal", "feasible")
    assert record.row["case"] == spec.name
    assert validate_journal(tmp_path / "j.jsonl") == {"done": 1}


def test_service_submission_is_idempotent(tmp_path):
    spec = small_spec()
    with SynthesisService(tmp_path / "j.jsonl", options=OPTS) as service:
        first = service.submit(spec)
        service.wait(first, timeout=60)
        attempts = service.job(first).attempts
        again = service.submit(spec)  # dedup: same id, no re-execution
        assert again == first
        assert service.job(first).attempts == attempts
        assert service.outstanding() == 0
    validate_journal(tmp_path / "j.jsonl")


def test_service_requires_start():
    service = SynthesisService(workers=1)
    with pytest.raises(ServiceError, match="not started"):
        service.submit(small_spec())


def test_service_rejects_bad_configuration():
    with pytest.raises(ServiceError):
        SynthesisService(workers=0)
    with pytest.raises(ServiceError):
        SynthesisService(max_attempts=0)
    service = SynthesisService(workers=1).start()
    with pytest.raises(ServiceError):
        service.stop(drain="sideways")
    service.stop()


def test_service_cannot_be_restarted_after_stop():
    service = SynthesisService(workers=1).start()
    service.stop()
    with pytest.raises(ServiceError, match="cannot be restarted"):
        service.start()
    with pytest.raises(AdmissionError):
        service.submit(small_spec())


def test_service_retries_transient_faults_with_backoff(tmp_path):
    """First solve crashes; the retry succeeds. on_error='capture'
    surfaces the crash as a retryable error result."""
    spec = small_spec()
    opts = SynthesisOptions(time_limit=30, on_error="capture")
    tracer = Tracer("retry")
    with install_faulty_backend("flaky", plan=FaultPlan(schedule=["crash"])):
        with use_tracer(tracer):
            with SynthesisService(tmp_path / "j.jsonl", workers=1,
                                  options=opts, backends=["flaky"],
                                  max_attempts=3,
                                  backoff=Backoff(base=0.01, max_delay=0.05),
                                  breaker_threshold=10) as service:
                job_id = service.submit(spec)
                record = service.wait(job_id, timeout=60)
    assert record.state == "done"
    assert record.attempts == 2
    events = [r["name"] for r in tracer.records() if r["type"] == "event"]
    assert "job_retry" in events
    counters = {r["name"]: r["value"] for r in tracer.records()
                if r["type"] == "metric" and r.get("kind") == "counter"}
    assert counters["service_retries"] == 1
    assert counters["service_jobs_done"] == 1


def test_service_exhausted_retries_fail_terminally_with_error_row(tmp_path):
    spec = small_spec()
    opts = SynthesisOptions(time_limit=30, on_error="capture")
    with install_faulty_backend("doomed", plan=FaultPlan(crash=1.0)):
        with SynthesisService(tmp_path / "j.jsonl", workers=1,
                              options=opts, backends=["doomed"],
                              max_attempts=2,
                              backoff=Backoff(base=0.01, max_delay=0.02),
                              breaker_threshold=10) as service:
            job_id = service.submit(spec)
            record = service.wait(job_id, timeout=60)
    assert record.state == "failed"
    assert record.attempts == 2
    assert record.row["status"] == "error"
    assert record.error
    assert validate_journal(tmp_path / "j.jsonl") == {"failed": 1}


def test_service_breaker_falls_through_backend_ladder(tmp_path):
    """A permanently broken first rung opens its breaker; jobs complete
    on the next rung instead of burning every retry."""
    specs = [small_spec(s) for s in range(3)]
    opts = SynthesisOptions(time_limit=30, on_error="capture")
    tracer = Tracer("ladder")
    with install_faulty_backend("broken", plan=FaultPlan(crash=1.0)):
        with use_tracer(tracer):
            with SynthesisService(tmp_path / "j.jsonl", workers=1,
                                  options=opts,
                                  backends=["broken", "auto"],
                                  max_attempts=4,
                                  backoff=Backoff(base=0.01, max_delay=0.02),
                                  breaker_threshold=1,
                                  breaker_reset=3600) as service:
                ids = [service.submit(s) for s in specs]
                records = [service.wait(i, timeout=120) for i in ids]
                stats = service.stats()
    assert all(r.state == "done" for r in records)
    assert stats["breakers"]["broken"]["state"] == "open"
    assert stats["breakers"]["broken"]["opens"] == 1
    assert stats["breakers"].get("auto", {}).get("state") == "closed"
    events = [r["name"] for r in tracer.records() if r["type"] == "event"]
    assert "breaker_open" in events
    validate_trace_records(tracer.records())


def test_service_fails_when_every_breaker_is_open(tmp_path):
    spec = small_spec()
    opts = SynthesisOptions(time_limit=30, on_error="capture")
    with install_faulty_backend("broken", plan=FaultPlan(crash=1.0)):
        with SynthesisService(tmp_path / "j.jsonl", workers=1,
                              options=opts, backends=["broken"],
                              max_attempts=2,
                              backoff=Backoff(base=0.01, max_delay=0.02),
                              breaker_threshold=1,
                              breaker_reset=3600) as service:
            record = service.wait(service.submit(spec), timeout=60)
    assert record.state == "failed"
    assert "circuit breaker" in record.error


def test_service_sheds_past_queue_bound(tmp_path):
    """With no workers draining it, the bounded queue refuses the
    overflow submission and journals nothing for it."""
    specs = [small_spec(s) for s in range(3)]
    tracer = Tracer("shed")
    service = SynthesisService(tmp_path / "j.jsonl", workers=1,
                               queue_size=2, options=OPTS)
    # Keep workers off the queue so depth is deterministic.
    service._supervisor.start = lambda: None
    with use_tracer(tracer):
        service.start()
        service.submit(specs[0])
        service.submit(specs[1])
        with pytest.raises(AdmissionError, match="shed"):
            service.submit(specs[2])
        shed_id = job_id_for(specs[2], OPTS)
        assert shed_id not in service.jobs  # nothing journaled
        assert service.stats()["shed"] == 1
        assert not service.health()["ready"]
        service.stop(drain=False)
    events = [r["name"] for r in tracer.records() if r["type"] == "event"]
    assert "shed" in events
    counts = validate_journal(tmp_path / "j.jsonl")
    assert sum(counts.values()) == 2


def test_service_restart_replays_pending_work(tmp_path):
    """Jobs journaled but not finished (the crash shape) are executed
    by the next service on the same journal; completed ones are not."""
    path = tmp_path / "j.jsonl"
    spec_done, spec_queued, spec_running = (small_spec(s) for s in range(3))
    with Journal(path) as journal:
        done = JobRecord(job_id_for(spec_done, OPTS),
                         json.loads(json.dumps(_spec_dict(spec_done))),
                         options_to_dict(OPTS))
        journal.record_job(done)
        journal.record_state(done.id, "done", 1,
                             row={"status": "optimal", "case": spec_done.name})
        journal.record_job(JobRecord(job_id_for(spec_queued, OPTS),
                                     _spec_dict(spec_queued),
                                     options_to_dict(OPTS)))
        running = JobRecord(job_id_for(spec_running, OPTS),
                            _spec_dict(spec_running), options_to_dict(OPTS))
        journal.record_job(running)
        journal.record_state(running.id, "running", 1)

    tracer = Tracer("replay")
    with use_tracer(tracer):
        with SynthesisService(path, workers=2, options=OPTS) as service:
            assert service.run_until_complete(timeout=120) == "complete"
            jobs = dict(service.jobs)
    assert jobs[done.id].attempts == 1  # untouched: journaled terminal
    assert jobs[job_id_for(spec_queued, OPTS)].state == "done"
    assert jobs[running.id].state == "done"
    replays = [r for r in tracer.records() if r["type"] == "event"
               and r["name"] == "job_submitted"
               and r.get("attrs", {}).get("replayed")]
    assert len(replays) == 2
    validate_journal(path)


def test_service_without_journal_still_works():
    with SynthesisService(workers=1, options=OPTS) as service:
        record = service.wait(service.submit(small_spec()), timeout=60)
    assert record.state == "done"


def test_service_wait_times_out_cleanly(tmp_path):
    service = SynthesisService(workers=1, options=OPTS)
    service._supervisor.start = lambda: None  # nothing will run the job
    service.start()
    job_id = service.submit(small_spec())
    with pytest.raises(ServiceError, match="timed out"):
        service.wait(job_id, timeout=0.05)
    with pytest.raises(ServiceError, match="unknown job"):
        service.wait("nope", timeout=0.05)
    service.stop(drain=False)


def test_service_inflight_drain_leaves_queue_journaled(tmp_path):
    """The graceful-shutdown discipline: stop(drain='inflight') finishes
    what a worker already holds and leaves the queue for the next run."""
    path = tmp_path / "j.jsonl"
    gate = threading.Event()
    started = threading.Event()

    from repro.opt.solvers import get_backend, register_backend, \
        unregister_backend
    from repro.opt.solvers.base import SolverBackend

    class GateBackend(SolverBackend):
        name = "gate"

        def solve(self, model, **kwargs):
            started.set()
            assert gate.wait(30.0)
            return get_backend("auto").solve(model, **kwargs)

    register_backend("gate", GateBackend, replace=True)
    try:
        opts = SynthesisOptions(time_limit=30, backend="gate")
        specs = [small_spec(s) for s in range(4)]
        service = SynthesisService(path, workers=1, options=opts).start()
        ids = [service.submit(s) for s in specs]
        assert started.wait(10.0), "no job reached a worker"
        releaser = threading.Timer(0.2, gate.set)
        releaser.start()
        summary = service.stop(drain="inflight", deadline=20.0)
        releaser.cancel()
        gate.set()
        # Exactly the in-flight job finished; the queued three survived
        # as journaled pending work.
        assert summary["completed"] == 1
        assert summary["pending"] == 3
        counts = validate_journal(path)
        assert counts["done"] == 1
        assert counts["submitted"] == 3

        # A fresh service on the same journal replays and completes them.
        with SynthesisService(path, workers=2, options=opts) as service2:
            assert service2.run_until_complete(timeout=120) == "complete"
    finally:
        unregister_backend("gate")
    final = validate_journal(path)
    assert final == {"done": 4}
    # ... and the ids line up with the original submissions.
    assert {j.id for j in replay_journal(path).jobs.values()} == set(ids)


def test_service_health_and_stats_shapes(tmp_path):
    with SynthesisService(tmp_path / "j.jsonl", workers=1,
                          options=OPTS) as service:
        health = service.health()
        assert health["live"] and health["ready"]
        assert health["workers_alive"] == 1
        stats = service.stats()
        assert stats["state"] == "running"
        assert stats["jobs"] == {}
    assert service.health()["status"] == "stopped"


def test_run_batch_delegates_to_service(tmp_path):
    from repro.experiments import run_batch

    specs = [small_spec(s) for s in range(3)]
    with SynthesisService(tmp_path / "j.jsonl", workers=2,
                          options=OPTS) as service:
        batch = run_batch(specs, OPTS, service=service)
        # Idempotent delegation: a re-run reuses journaled completions.
        attempts = {i: service.job(job_id_for(s, OPTS)).attempts
                    for i, s in enumerate(specs)}
        batch2 = run_batch(specs, OPTS, service=service)
        for i, s in enumerate(specs):
            assert service.job(job_id_for(s, OPTS)).attempts == attempts[i]
    assert len(batch.rows) == 3
    assert [r["case"] for r in batch.rows] == [s.name for s in specs]
    assert len(batch2.rows) == 3
    assert validate_journal(tmp_path / "j.jsonl") == {"done": 3}


def _spec_dict(spec):
    from repro.io import spec_to_dict

    return spec_to_dict(spec)


# ----------------------------------------------------------------------
# keyed backoff (replay-stable jitter)
# ----------------------------------------------------------------------
def test_backoff_delay_for_is_key_deterministic():
    b = Backoff(base=0.2, factor=2.0, max_delay=10.0, jitter=0.5, seed=7)
    for attempt in (1, 2, 5):
        first = b.delay_for(attempt, "job-a")
        assert first == b.delay_for(attempt, "job-a")  # replay-stable
        cap = b.cap(attempt)
        assert cap * 0.5 <= first <= cap  # inside the equal-jitter band
    # different jobs decorrelate
    assert b.delay_for(3, "job-a") != b.delay_for(3, "job-b")


def test_backoff_delay_for_matches_across_instances():
    """Two processes (here: two instances) with the same policy must
    compute the same ready-time for the same (job, attempt) — that is
    what makes journal replay reproduce the original schedule."""
    a = Backoff(base=0.1, factor=2.0, max_delay=5.0, jitter=0.5, seed=3)
    b = Backoff(base=0.1, factor=2.0, max_delay=5.0, jitter=0.5, seed=3)
    assert [a.delay_for(n, "j") for n in range(1, 6)] \
        == [b.delay_for(n, "j") for n in range(1, 6)]


def test_replay_recomputes_backoff_from_persisted_attempts(tmp_path):
    """A replayed pending job re-enters the queue with the delay of its
    *recorded* attempt count, not attempt zero — restart must not turn
    a backed-off herd into a stampede."""
    spec = small_spec()
    opts = SynthesisOptions(time_limit=30, on_error="capture")
    backoff = Backoff(base=30.0, factor=2.0, max_delay=120.0,
                      jitter=0.5, seed=11)
    with install_faulty_backend("doomed", plan=FaultPlan(crash=1.0)):
        service = SynthesisService(tmp_path / "j.jsonl", workers=1,
                                   options=opts, backends=["doomed"],
                                   max_attempts=5, backoff=backoff,
                                   breaker_threshold=100)
        service.start()
        job_id = service.submit(spec)
        deadline = time.monotonic() + 60
        while service.job(job_id).attempts < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.stop(drain=False)
    attempts = service.job(job_id).attempts
    assert attempts >= 1

    restarted = SynthesisService(tmp_path / "j.jsonl", workers=1,
                                 options=opts, backends=["doomed"],
                                 max_attempts=5, backoff=backoff,
                                 breaker_threshold=100)
    restarted._supervisor.start = lambda: None  # freeze the queue
    restarted.start()
    entry = restarted.queue._delayed[0]
    remaining = entry[0] - time.monotonic()
    expected = backoff.delay_for(attempts, job_id)
    # the keyed draw reproduces the exact delay (minus test elapsed)
    assert expected - 2.0 <= remaining <= expected + 0.1
    restarted.stop(drain=False)


# ----------------------------------------------------------------------
# breaker probe-crash accounting
# ----------------------------------------------------------------------
def test_breaker_probe_crash_releases_slot_and_reopens():
    """A half-open probe whose worker dies never reports back; the
    crash path must release the probe slot as a *failed* probe or the
    breaker wedges half-open with the slot consumed forever."""
    clock = FakeClock()
    b = CircuitBreaker("cbc", failure_threshold=1, reset_timeout=5,
                       clock=clock)
    b.record_failure()
    clock.t = 5.0
    assert b.allow()          # the probe is dispatched...
    b.release_probe()         # ...and its worker crashes
    assert b.state == OPEN    # counted as a failed probe
    clock.t = 9.9             # cooldown restarted at t=5
    assert not b.allow()
    clock.t = 10.0
    assert b.allow()          # next probe admitted normally
    b.record_success()
    assert b.state == CLOSED


def test_breaker_release_probe_is_noop_outside_half_open():
    clock = FakeClock()
    b = CircuitBreaker("cbc", failure_threshold=2, reset_timeout=5,
                       clock=clock)
    b.release_probe()                  # closed: nothing to release
    assert b.state == CLOSED and b.opens == 0
    b.record_failure()
    b.record_failure()
    b.release_probe()                  # open, no probe outstanding
    assert b.state == OPEN and b.opens == 1
    clock.t = 5.0
    assert b.allow()
    b.record_success()                 # probe reported before any crash
    b.release_probe()                  # late release after verdict
    assert b.state == CLOSED and b.opens == 1


def test_breaker_probe_crash_emits_probe_crashed_event():
    clock = FakeClock()
    tracer = Tracer("probe")
    with use_tracer(tracer):
        b = CircuitBreaker("cbc", failure_threshold=1, reset_timeout=1,
                           clock=clock)
        b.record_failure()
        clock.t = 1.0
        assert b.allow()
        b.release_probe()
    opens = [r for r in tracer.records()
             if r["type"] == "event" and r["name"] == "breaker_open"]
    assert opens[-1]["attrs"]["probe_crashed"] is True


def test_service_probe_crash_does_not_wedge_breaker(tmp_path):
    """End to end: attempt 1 fails (opens the breaker), the half-open
    probe crashes its *worker thread*, and the job still completes —
    the crash path re-opened the breaker instead of leaking the slot."""
    from repro.opt.model import Model
    from repro.opt.solvers import (SolverBackend, get_backend,
                                   register_backend, unregister_backend)

    class WorkerDeath(BaseException):
        """Escapes the retry path's `except Exception` like a real
        thread-killing defect would."""

    class ProbeCrashBackend(SolverBackend):
        name = "probecrash"

        def __init__(self):
            self.inner = get_backend("auto")
            self.calls = 0

        def solve(self, model, **kwargs):
            self.calls += 1
            if self.calls == 1:
                raise ReproError("planned failure: open the breaker")
            if self.calls == 2:
                raise WorkerDeath("probe worker dies")
            return self.inner.solve(model, **kwargs)

    backend = ProbeCrashBackend()
    register_backend("probecrash", lambda: backend, replace=True)
    tracer = Tracer("probecrash")
    try:
        with use_tracer(tracer):
            with SynthesisService(
                    tmp_path / "j.jsonl", workers=1,
                    options=SynthesisOptions(time_limit=30,
                                             on_error="capture"),
                    backends=["probecrash"], max_attempts=6,
                    backoff=Backoff(base=0.4, factor=1.5, max_delay=1.0,
                                    jitter=0.0),
                    breaker_threshold=1, breaker_reset=0.1) as service:
                job_id = service.submit(small_spec())
                record = service.wait(job_id, timeout=120)
    finally:
        unregister_backend("probecrash")
    assert record.state == "done"
    assert backend.calls >= 3
    snapshot = {r["name"]: r for r in tracer.records()
                if r["type"] == "event"}
    assert "worker_crashed" in snapshot          # the supervisor saw it
    opens = [r["attrs"] for r in tracer.records()
             if r["type"] == "event" and r["name"] == "breaker_open"]
    assert any(a.get("probe_crashed") for a in opens)
    assert validate_journal(tmp_path / "j.jsonl") == {"done": 1}


# ----------------------------------------------------------------------
# priorities and tenant quotas
# ----------------------------------------------------------------------
def test_queue_priority_orders_ready_items_fifo_within_band():
    q = JobQueue(maxsize=8)
    q.push("low-1", priority=0)
    q.push("high", priority=5)
    q.push("low-2", priority=0)
    q.push("mid", priority=2)
    assert [q.pop(0.1) for _ in range(4)] == ["high", "mid",
                                              "low-1", "low-2"]


def test_queue_full_of_low_priority_cannot_starve_exempt_retry():
    """Satellite regression: a queue at its bound with low-priority
    work must neither shed nor delay an exempt (forced) retry."""
    q = JobQueue(maxsize=4)
    for i in range(4):
        q.push(f"bulk-{i}", priority=0)
    assert q.shed_reason() == "full"
    # the retry is exempt from the bound...
    q.push("retry", delay=0.05, priority=3, force=True)
    assert len(q) == 5
    # ...and once its backoff matures it pops before the entire backlog
    time.sleep(0.08)
    assert q.pop(0.5) == "retry"
    assert q.shed == 0


def test_queue_tenant_quota_caps_one_tenant_not_the_queue():
    q = JobQueue(maxsize=8, tenant_quota=2)
    q.push("a1", tenant="alice")
    q.push("a2", tenant="alice")
    assert q.shed_reason("alice") == "tenant-quota"
    assert q.shed_reason("bob") is None
    with pytest.raises(AdmissionError, match="tenant"):
        q.push("a3", tenant="alice")
    q.push("b1", tenant="bob")               # other tenants unaffected
    q.push("a3-retry", tenant="alice", force=True)  # retries exempt
    assert q.tenant_depths() == {"alice": 3, "bob": 1}
    q.pop(0.1)
    assert q.tenant_depths()["alice"] == 2   # pop releases the slot


def test_service_tenant_quota_shed_event_carries_tenant(tmp_path):
    """Satellite regression: a per-tenant rejection must be observable
    as a `shed` event labelled with the tenant, not an anonymous one."""
    specs = [small_spec(s) for s in range(3)]
    tracer = Tracer("quota")
    service = SynthesisService(tmp_path / "j.jsonl", workers=1,
                               queue_size=8, options=OPTS,
                               tenant_quota=1)
    service._supervisor.start = lambda: None  # keep depth deterministic
    with use_tracer(tracer):
        service.start()
        service.submit(specs[0], tenant="alice")
        with pytest.raises(AdmissionError, match="tenant"):
            service.submit(specs[1], tenant="alice")
        service.submit(specs[2], tenant="bob")  # bob is not throttled
        service.stop(drain=False)
    sheds = [r["attrs"] for r in tracer.records()
             if r["type"] == "event" and r["name"] == "shed"]
    assert len(sheds) == 1
    assert sheds[0]["tenant"] == "alice"
    assert sheds[0]["reason"] == "tenant-quota"
    # nothing journaled for the shed job; the others were accepted
    assert validate_journal(tmp_path / "j.jsonl") == {"submitted": 2}


def test_service_stats_break_down_tenants(tmp_path):
    specs = [small_spec(s) for s in range(2)]
    with SynthesisService(tmp_path / "j.jsonl", workers=1,
                          options=OPTS) as service:
        ids = [service.submit(specs[0], tenant="alice"),
               service.submit(specs[1], tenant="bob", priority=1)]
        for job_id in ids:
            service.wait(job_id, timeout=120)
        stats = service.stats()
    assert stats["tenants"]["alice"] == {"done": 1}
    assert stats["tenants"]["bob"] == {"done": 1}
    replayed = replay_journal(tmp_path / "j.jsonl").jobs
    assert replayed[ids[0]].tenant == "alice"
    assert replayed[ids[1]].priority == 1

"""Direct SwitchSimulator API edge cases."""

import pytest

from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.errors import ReproError
from repro.sim import EventKind, SwitchSimulator
from repro.sim.engine import fluid_conflicts_of
from repro.switches import CrossbarSwitch
from repro.switches.base import segment_key
from repro.switches.paths import Path


def _path(sw, vertices, index=1):
    segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
    return Path(
        index=index, source_pin=vertices[0], target_pin=vertices[-1],
        vertices=tuple(vertices),
        nodes=frozenset(v for v in vertices if not sw.is_pin(v)),
        segments=segs,
        length=sum(sw.segments[k].length for k in segs),
    )


def test_valve_status_for_unused_segment_rejected():
    sw = CrossbarSwitch(8)
    path = _path(sw, ["T1", "TL", "L1"])
    with pytest.raises(ReproError):
        SwitchSimulator(
            switch=sw,
            used_segments=path.segments,
            valve_status={segment_key("C", "T"): ["O"]},  # not used
            flow_paths={1: path},
            flow_sets=[[1]],
            sources={1: "a"},
            binding={"a": "T1", "b": "L1"},
            fluid_conflicts=set(),
        )


def test_empty_schedule_runs():
    sw = CrossbarSwitch(8)
    sim = SwitchSimulator(
        switch=sw, used_segments=set(), valve_status={},
        flow_paths={}, flow_sets=[], sources={}, binding={},
        fluid_conflicts=set(),
    )
    report = sim.run()
    assert report.is_clean
    assert not report.events


def test_undelivered_when_everything_closed():
    sw = CrossbarSwitch(8)
    path = _path(sw, ["T1", "TL", "L1"])
    sim = SwitchSimulator(
        switch=sw,
        used_segments=path.segments,
        valve_status={k: ["C"] for k in path.segments},
        flow_paths={1: path},
        flow_sets=[[1]],
        sources={1: "a"},
        binding={"a": "T1", "b": "L1"},
        fluid_conflicts=set(),
    )
    report = sim.run()
    assert report.undelivered == {1}
    assert not report.is_clean
    kinds = {e.kind for e in report.events}
    assert EventKind.UNDELIVERED in kinds


def test_fluid_conflicts_of_maps_to_sources():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["a", "b", "oa", "ob"],
        flows=[Flow(1, "a", "oa"), Flow(2, "b", "ob")],
        conflicts={frozenset({1, 2})},
        binding=BindingPolicy.UNFIXED,
    )
    assert fluid_conflicts_of(spec) == {frozenset({"a", "b"})}


def test_collision_event_for_nonconflicting_fluids():
    """Two non-conflicting fluids meeting in one step is a COLLISION,
    not a contamination."""
    sw = CrossbarSwitch(8)
    p1 = _path(sw, ["T1", "TL", "L", "BL", "B1"], 1)
    p2 = _path(sw, ["L1", "TL", "T", "C", "R", "TR", "R1"], 2)
    used = set(p1.segments) | set(p2.segments)
    sim = SwitchSimulator(
        switch=sw, used_segments=used, valve_status={},
        flow_paths={1: p1, 2: p2}, flow_sets=[[1, 2]],
        sources={1: "fa", 2: "fb"},
        binding={"fa": "T1", "fb": "L1", "oa": "B1", "ob": "R1"},
        fluid_conflicts=set(),
    )
    report = sim.run()
    assert report.collisions
    assert not report.contamination_events


def test_event_report_filters():
    sw = CrossbarSwitch(8)
    p1 = _path(sw, ["T1", "TL", "L1"])
    sim = SwitchSimulator(
        switch=sw, used_segments=p1.segments, valve_status={},
        flow_paths={1: p1}, flow_sets=[[1]], sources={1: "a"},
        binding={"a": "T1", "b": "L1"}, fluid_conflicts=set(),
    )
    report = sim.run()
    fills = report.of_kind(EventKind.FLUID_FILL)
    assert len(fills) == len(p1.segments)
    assert report.delivered == {1}

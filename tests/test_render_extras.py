"""Tests for ASCII and chip rendering (repro.render extras)."""

import xml.etree.ElementTree as ET

import pytest

from repro.chip import chip_layout
from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.render import AsciiGrid, ascii_switch, render_chip, save_svg
from repro.switches import CrossbarSwitch, GRUSwitch, SpineSwitch


@pytest.fixture(scope="module")
def solved():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i_1", "o_1", "M1"],
        flows=[Flow(1, "i_1", "o_1")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i_1": "T1", "o_1": "B2", "M1": "R1"},
    )
    res = synthesize(spec)
    assert res.status.solved
    return res


# ----------------------------------------------------------------------
# ascii
# ----------------------------------------------------------------------
def test_ascii_grid_primitives():
    g = AsciiGrid(10, 4)
    g.hline(1, 5, 1, "-")
    g.vline(3, 0, 3, "|")
    g.text(0, 3, "hi")
    out = g.render()
    assert "hi" in out
    assert "|" in out and "-" in out
    # out-of-bounds writes are ignored, not errors
    g.put(99, 99, "x")


def test_ascii_switch_structure_labels():
    text = ascii_switch(CrossbarSwitch(8))
    for pin in CrossbarSwitch(8).pins:
        assert pin in text
    assert "+" in text and "." in text
    assert "#" not in text  # nothing used without a result


def test_ascii_switch_highlights_result(solved):
    text = ascii_switch(solved.spec.switch, solved)
    assert "#" in text


def test_ascii_renders_all_switch_families():
    for sw in (CrossbarSwitch(12), SpineSwitch(8), GRUSwitch(8)):
        text = ascii_switch(sw)
        assert text.strip()


# ----------------------------------------------------------------------
# chip svg
# ----------------------------------------------------------------------
def test_render_chip_valid_svg(solved, tmp_path):
    layout = chip_layout(solved)
    svg = render_chip(layout, solved)
    root = ET.fromstring(svg)
    texts = [el.text or "" for el in root.iter() if el.tag.endswith("text")]
    for module in solved.spec.modules:
        assert any(module in t for t in texts)
    # dashed connection lines present
    dashed = [el for el in root.iter()
              if el.tag.endswith("line") and el.attrib.get("stroke-dasharray")]
    assert len(dashed) >= len(layout.connections)
    save_svg(svg, tmp_path / "chip.svg")
    assert (tmp_path / "chip.svg").exists()


def test_render_chip_without_result(solved):
    layout = chip_layout(solved)
    svg = render_chip(layout)
    ET.fromstring(svg)


def test_chip_canvas_covers_modules(solved):
    layout = chip_layout(solved)
    svg = render_chip(layout, solved)
    root = ET.fromstring(svg)
    width = float(root.attrib["width"])
    from repro.render.svg import MARGIN, SCALE
    lo, hi = layout.bounding_box()
    assert width == pytest.approx((hi.x - lo.x) * SCALE + 2 * MARGIN, abs=1)

"""Tests for the analysis package (contamination reports, metrics, compare)."""

import pytest

from repro.analysis import (
    analyze_contamination,
    area_estimate,
    baseline_report,
    compare_designs,
    format_table,
    result_rows,
    route_shortest,
    spine_pollution_profile,
)
from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisOptions,
    conflict_pair,
    synthesize,
)
from repro.switches import CrossbarSwitch, GRUSwitch, SpineSwitch


@pytest.fixture()
def conflict_spec():
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["M1", "M2", "RC1", "RC2"],
        flows=[Flow(1, "M1", "RC1"), Flow(2, "M2", "RC2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.UNFIXED,
        name="mini-conflict",
    )


def test_route_shortest_on_spine(conflict_spec):
    spine = SpineSwitch(4)
    binding = {"M1": spine.pins[0], "M2": spine.pins[1],
               "RC1": spine.pins[2], "RC2": spine.pins[3]}
    paths = route_shortest(spine, binding, conflict_spec.flows)
    assert set(paths) == {1, 2}
    for p in paths.values():
        assert p.length > 0


def test_spine_contaminates_conflicting_flows(conflict_spec):
    """The paper's core claim about the spine: conflicting flows meet."""
    report = baseline_report(SpineSwitch(4), conflict_spec)
    assert not report.is_contamination_free
    assert conflict_pair(1, 2) in report.contaminated_pairs
    assert report.num_polluted_sites > 0


def test_spine_unvalved_sharing_detected(conflict_spec):
    # bind so both flows traverse the J1-J2 spine stretch
    spine = SpineSwitch(6)
    binding = {"M1": "P_T1", "RC1": "P_R", "M2": "P_B1", "RC2": "P_B2"}
    report = baseline_report(spine, conflict_spec, binding=binding)
    # the shared spine carries no valves
    assert report.unvalved_shared_segments
    assert ("J1", "J2") in report.unvalved_shared_segments


def test_gru_adjacent_pins_contaminate():
    """§2.1: conflicting flows from pins TL and T have only node N."""
    gru = GRUSwitch(8)
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),  # placeholder; flows are what matter
        modules=["a", "b", "oa", "ob"],
        flows=[Flow(1, "a", "oa"), Flow(2, "b", "ob")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.UNFIXED,
    )
    binding = {"a": "TL", "b": "T", "oa": "R", "ob": "B"}
    report = baseline_report(gru, spec, binding=binding)
    assert not report.is_contamination_free
    assert "N" in report.polluted_nodes


def test_proposed_switch_contamination_free(conflict_spec):
    res = synthesize(conflict_spec)
    report = analyze_contamination(
        conflict_spec.switch, res.flow_paths, conflict_spec.conflicts
    )
    assert report.is_contamination_free
    assert "contamination-free" in report.summary()


def test_compare_designs_rows(conflict_spec):
    comparison = compare_designs(conflict_spec, SynthesisOptions(time_limit=60))
    rows = comparison.rows()
    designs = {r["design"] for r in rows}
    assert "proposed (synthesized)" in designs
    assert any("spine" in d for d in designs)
    proposed_row = next(r for r in rows if r["design"] == "proposed (synthesized)")
    assert proposed_row["contamination-free"] is True
    spine_row = next(r for r in rows if "spine" in r["design"])
    assert spine_row["contamination-free"] is False


def test_spine_pollution_profile(conflict_spec):
    spine = SpineSwitch(6)
    binding = {"M1": "P_T1", "RC1": "P_R", "M2": "P_B1", "RC2": "P_B2"}
    paths = route_shortest(spine, binding, conflict_spec.flows)
    profile = spine_pollution_profile(spine, paths)
    assert profile[("J1", "J2")] == 2  # the spine carries both flows


def test_area_estimate(conflict_spec):
    res = synthesize(conflict_spec)
    area = area_estimate(res)
    assert area["total"] == pytest.approx(area["flow"] + area["control"])
    assert area["flow"] == pytest.approx(0.1 * res.flow_channel_length)


def test_result_rows_and_format_table(conflict_spec):
    res = synthesize(conflict_spec)
    rows = result_rows([res])
    text = format_table(rows)
    assert "L(mm)" in text
    assert "mini-conflict" in text
    assert format_table([]) == "(no rows)"


def test_format_table_alignment():
    rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": None}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert len({len(l) for l in lines}) == 1  # all lines equal width

"""Tests for the baseline switch structures (spine, GRU, scalable)."""

import math

import networkx as nx
import pytest

from repro.errors import SwitchModelError
from repro.switches import (
    CrossbarSwitch,
    GRUSwitch,
    ScalableCrossbarSwitch,
    SpineSwitch,
)


# ----------------------------------------------------------------------
# spine (Columba-style)
# ----------------------------------------------------------------------
def test_spine_pin_count():
    for n in (4, 6, 8, 12):
        assert SpineSwitch(n).n_pins == n


def test_spine_minimum_size():
    with pytest.raises(SwitchModelError):
        SpineSwitch(2)


def test_spine_is_valve_free():
    """'There are no valves except at the ends along the spine.'"""
    sw = SpineSwitch(8)
    for seg in sw.spine_segments():
        assert seg.key not in sw.valves
    # but every pin stub is valved
    for pin in sw.pins:
        (stub,) = sw.segments_at(pin)
        assert stub.key in sw.valves


def test_spine_all_pins_reach_all_pins_through_spine():
    """Every pin pair's route traverses the shared spine — the
    structural reason the spine design contaminates."""
    sw = SpineSwitch(8)
    spine_nodes = set(sw.junctions)
    for i, a in enumerate(sw.pins):
        for b in sw.pins[i + 1:]:
            path = nx.shortest_path(sw.graph, a, b, weight="length")
            interior = set(path[1:-1])
            assert interior & spine_nodes


def test_spine_connected_degreeone_pins():
    sw = SpineSwitch(12)
    assert nx.is_connected(sw.graph)
    for pin in sw.pins:
        assert sw.graph.degree[pin] == 1


# ----------------------------------------------------------------------
# GRU (prior study)
# ----------------------------------------------------------------------
def test_gru_sizes():
    assert GRUSwitch(8).n_pins == 8
    assert GRUSwitch(12).n_pins == 12
    with pytest.raises(SwitchModelError):
        GRUSwitch(16)


def test_gru_pin_pairs_share_single_node():
    """§2.1: 'the flow pins TL and T are connected to the same and only
    node N' — each border node serves two pins."""
    sw = GRUSwitch(8)
    pairs = sw.pins_sharing_a_node()
    assert ("TL", "T") in pairs
    assert len(pairs) == 4


def test_gru_conflicting_pins_forced_through_shared_node():
    """Two conflicting flows entering at TL and T cannot avoid node N."""
    sw = GRUSwitch(8)
    for path in nx.all_simple_paths(sw.graph, "TL", "R"):
        assert path[1] == "N"
    for path in nx.all_simple_paths(sw.graph, "T", "B"):
        assert path[1] == "N"


def test_gru_45_degree_geometry():
    """§2.1: 'the angle between the flow segments N-W and W-C is about
    45°' — the ring runs diagonally."""
    sw = GRUSwitch(8)
    n, w, c = sw.coords["N"], sw.coords["W"], sw.coords["C"]
    v1 = (n.x - w.x, n.y - w.y)
    v2 = (c.x - w.x, c.y - w.y)
    dot = v1[0] * v2[0] + v1[1] * v2[1]
    cos = dot / (math.hypot(*v1) * math.hypot(*v2))
    assert math.degrees(math.acos(cos)) == pytest.approx(45.0, abs=1.0)


def test_gru_two_units_bridged():
    sw = GRUSwitch(12)
    assert sw.segment("E1", "W2").length > 0
    assert nx.is_connected(sw.graph)


def test_gru_ring_lengths_euclidean():
    sw = GRUSwitch(8)
    seg = sw.segment("N", "E")
    assert seg.length == pytest.approx(math.sqrt(2.0))


# ----------------------------------------------------------------------
# scalable (Columba-S-compatible) variants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_pins", [8, 12, 16])
def test_scalable_same_topology_as_crossbar(n_pins):
    plain = CrossbarSwitch(n_pins)
    scal = ScalableCrossbarSwitch(n_pins)
    assert set(scal.segments) == set(plain.segments)
    assert scal.pins == plain.pins
    assert scal.nodes == plain.nodes


@pytest.mark.parametrize("n_pins", [8, 12, 16])
def test_scalable_pins_on_side_borders(n_pins):
    """Columba S accesses modules horizontally: every pin must sit on
    the east or west border."""
    sw = ScalableCrossbarSwitch(n_pins)
    xs = {round(sw.coords[p].x, 6) for p in sw.pins}
    assert len(xs) == 2  # exactly two border columns


def test_scalable_metadata():
    sw = ScalableCrossbarSwitch(8)
    assert sw.control_orientation == "vertical"
    assert sw.rotation_order == 1


def test_scalable_stub_lengths_updated():
    """Re-routed pin stubs must carry their Manhattan lane length in
    both the segment table and the routing graph."""
    sw = ScalableCrossbarSwitch(12)
    for pin in sw.pins:
        (stub,) = sw.segments_at(pin)
        corner = stub.other(pin)
        expect = sw.coords[pin].manhattan_to(sw.coords[corner])
        assert stub.length == pytest.approx(expect)
        assert sw.graph.edges[pin, corner]["length"] == pytest.approx(expect)


def test_scalable_lanes_respect_spacing():
    """Adjacent escape lanes on the same border keep flow-width +
    min-spacing clearance."""
    sw = ScalableCrossbarSwitch(16)
    from collections import defaultdict
    by_border = defaultdict(list)
    for p in sw.pins:
        by_border[round(sw.coords[p].x, 6)].append(sw.coords[p].y)
    min_gap = sw.rules.flow_channel_width + sw.rules.min_channel_spacing
    for ys in by_border.values():
        ys.sort()
        for a, b in zip(ys, ys[1:]):
            assert b - a >= min_gap - 1e-9

"""Public API surface tests: the README's promises hold."""

import importlib
import inspect

import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_runs():
    """The exact snippet from the README / module docstring."""
    from repro import BindingPolicy, Flow, SwitchSpec, synthesize
    from repro.switches import CrossbarSwitch

    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["sample", "buffer", "mixer1", "mixer2"],
        flows=[Flow(1, "sample", "mixer1"), Flow(2, "buffer", "mixer2")],
        conflicts={frozenset({1, 2})},
        binding=BindingPolicy.UNFIXED,
    )
    result = synthesize(spec)
    assert result.status.solved
    row = result.table_row()
    assert row["#s"] >= 1


@pytest.mark.parametrize("module", [
    "repro.opt",
    "repro.geometry",
    "repro.switches",
    "repro.core",
    "repro.analysis",
    "repro.render",
    "repro.cases",
    "repro.io",
    "repro.sim",
    "repro.control",
    "repro.chip",
    "repro.experiments",
    "repro.obs",
    "repro.service",
])
def test_subpackages_importable_with_all(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


@pytest.mark.parametrize("module", [
    "repro.opt.expr", "repro.opt.model", "repro.opt.linearize",
    "repro.core.builder", "repro.core.synthesizer", "repro.core.spec",
    "repro.core.pressure", "repro.core.valves", "repro.core.verify",
    "repro.switches.crossbar", "repro.switches.paths",
    "repro.sim.engine", "repro.control.routing", "repro.analysis.washing",
])
def test_public_functions_documented(module):
    """Every public callable in the core modules carries a docstring."""
    mod = importlib.import_module(module)
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module}.{name} lacks a docstring"

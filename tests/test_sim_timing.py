"""Tests for the fluidic timing model (repro.sim.timing)."""

import pytest

from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.errors import ReproError
from repro.sim import TimingModel, estimate_execution_time
from repro.switches import CrossbarSwitch


def solved(fixed, flows, **kw):
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=sorted(fixed),
        flows=flows,
        binding=BindingPolicy.FIXED,
        fixed_binding=fixed,
        **kw,
    )
    res = synthesize(spec)
    assert res.status.solved
    return res


@pytest.fixture(scope="module")
def one_set():
    return solved({"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
                  [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")])


@pytest.fixture(scope="module")
def two_sets():
    return solved({"i1": "T1", "o1": "B1", "i2": "L1", "o2": "B2"},
                  [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")])


def test_model_validation():
    with pytest.raises(ReproError):
        TimingModel(flow_velocity_mm_s=0)
    with pytest.raises(ReproError):
        TimingModel(valve_actuation_s=-1)


def test_single_set_transport(one_set):
    est = estimate_execution_time(one_set, TimingModel(flow_velocity_mm_s=1.0,
                                                       valve_actuation_s=0.0,
                                                       set_setup_s=0.0))
    longest = max(p.length for p in one_set.flow_paths.values())
    assert est.transport_s == pytest.approx(longest)
    assert est.total_s == pytest.approx(longest)
    assert len(est.set_makespans_s) == 1


def test_parallel_flows_do_not_add(one_set):
    """Two parallel flows cost one makespan, not the sum of lengths."""
    est = estimate_execution_time(one_set)
    total_len = sum(p.length for p in one_set.flow_paths.values())
    longest = max(p.length for p in one_set.flow_paths.values())
    assert est.transport_s * TimingModel().flow_velocity_mm_s == \
        pytest.approx(longest)
    assert longest < total_len


def test_more_sets_cost_more_control(one_set, two_sets):
    """The paper's motivation for minimizing #s: each extra set adds
    setup and valve-switching time."""
    model = TimingModel()
    t1 = estimate_execution_time(one_set, model)
    t2 = estimate_execution_time(two_sets, model)
    assert t2.control_s > t1.control_s
    assert len(t2.set_makespans_s) == 2


def test_valve_transitions_counted(two_sets):
    assert two_sets.valves.essential  # schedule actually switches valves
    est = estimate_execution_time(two_sets)
    assert est.transition_overheads_s  # at least one actuation interval


def test_summary_format(one_set):
    text = estimate_execution_time(one_set).summary()
    assert "transport" in text and "control" in text


def test_unsolved_rejected(one_set):
    import copy
    from repro.core import SynthesisStatus
    bad = copy.copy(one_set)
    bad.status = SynthesisStatus.NO_SOLUTION
    with pytest.raises(ReproError):
        estimate_execution_time(bad)

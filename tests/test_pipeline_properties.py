"""Whole-pipeline property: every downstream consumer accepts every
solved synthesis result.

For random solvable cases, the complete artifact chain must hold
together: program compilation, program replay, set-order optimization,
chip layout, control routing, LP export of the model, JSON export.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cases import generate_case
from repro.chip import chip_layout
from repro.control import compile_program, route_control
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    optimize_set_order,
    synthesize,
)
from repro.core.builder import SynthesisModelBuilder
from repro.core.synthesizer import build_catalog
from repro.io import result_to_dict
from repro.opt import model_to_lp
from repro.sim import estimate_execution_time, simulate, simulate_program

OPTS = SynthesisOptions(time_limit=30)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=8_000))
def test_every_downstream_consumer_accepts_solved_results(seed):
    spec = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=1, binding=BindingPolicy.FIXED)
    result = synthesize(spec, OPTS)
    if not result.status.solved:
        return

    # dynamic execution
    assert simulate(result).is_clean

    # actuation program: compiles, replays cleanly, exports
    program = compile_program(result)
    assert simulate_program(result, program).is_clean
    json.dumps(program.to_dict())

    # set-order optimization keeps everything valid
    optimized = optimize_set_order(result)
    assert simulate(optimized).is_clean

    # timing estimate is finite and positive
    est = estimate_execution_time(result)
    assert est.total_s > 0

    # chip layout: placed, overlap-free, routed
    layout = chip_layout(result)
    assert layout.overlapping_modules() == []
    assert len(layout.connections) == len(spec.modules)

    # control routing runs (violations allowed, must be reported cleanly)
    if result.valves.essential:
        plan = route_control(spec.switch, sorted(result.valves.essential))
        assert plan.num_inlets == len(result.valves.essential)
        plan.violations()

    # JSON export round-trips through the serializer
    data = result_to_dict(result)
    json.dumps(data)
    assert data["num_flow_sets"] == result.num_flow_sets


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=3_000))
def test_model_lp_export_always_serializes(seed):
    """The built synthesis model exports to LP text whatever the case."""
    spec = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=1, binding=BindingPolicy.FIXED)
    built = SynthesisModelBuilder(spec, build_catalog(spec, OPTS)).build()
    text = model_to_lp(built.model)
    assert text.startswith("\\ model:")
    assert text.rstrip().endswith("End")
    stats = built.model.stats()
    assert stats["variables"] > 0

"""Tests for the independent verifier — it must catch corrupted results."""

import copy

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisStatus,
    conflict_pair,
    synthesize,
)
from repro.core.verify import (
    verify_binding,
    verify_contamination_freedom,
    verify_paths,
    verify_result,
    verify_schedule,
    verify_used_segments,
)
from repro.errors import VerificationError
from repro.switches import CrossbarSwitch
from repro.switches.base import segment_key
from repro.switches.paths import Path


@pytest.fixture()
def solved():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    return res


def _mk_path(sw, vertices, index):
    segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
    return Path(
        index=index, source_pin=vertices[0], target_pin=vertices[-1],
        vertices=tuple(vertices),
        nodes=frozenset(v for v in vertices if not sw.is_pin(v)),
        segments=segs,
        length=sum(sw.segments[k].length for k in segs),
    )


def test_clean_result_passes(solved):
    verify_result(solved)


def test_unsolved_result_rejected(solved):
    bad = copy.copy(solved)
    bad.status = SynthesisStatus.NO_SOLUTION
    with pytest.raises(VerificationError):
        verify_result(bad)


def test_binding_must_cover_modules(solved):
    bad = dict(solved.binding)
    del bad["i1"]
    with pytest.raises(VerificationError):
        verify_binding(solved.spec, bad)


def test_binding_must_be_injective(solved):
    bad = dict(solved.binding)
    bad["i1"] = bad["i2"]
    with pytest.raises(VerificationError):
        verify_binding(solved.spec, bad)


def test_fixed_binding_must_match(solved):
    bad = dict(solved.binding)
    bad["i1"], bad["o1"] = bad["o1"], bad["i1"]
    with pytest.raises(VerificationError):
        verify_binding(solved.spec, bad)


def test_clockwise_order_checked():
    sw = CrossbarSwitch(8)
    spec = SwitchSpec(
        switch=sw,
        modules=["a", "b", "c"],
        flows=[Flow(1, "a", "b")],
        binding=BindingPolicy.CLOCKWISE,
        module_order=["a", "b", "c"],
    )
    ok = {"a": "T1", "b": "R1", "c": "B1"}
    verify_binding(spec, ok)
    bad = {"a": "T1", "b": "B1", "c": "R1"}  # b after c: two descents
    with pytest.raises(VerificationError):
        verify_binding(spec, bad)
    rotated = {"a": "B1", "b": "L1", "c": "T2"}  # valid wrap-around
    verify_binding(spec, rotated)


def test_path_endpoint_mismatch_detected(solved):
    sw = solved.spec.switch
    bad_paths = dict(solved.flow_paths)
    # reroute flow 1 from the wrong pin
    bad_paths[1] = _mk_path(sw, ["L1", "TL", "L", "BL", "B1"], 999)
    with pytest.raises(VerificationError):
        verify_paths(solved.spec, solved.binding, bad_paths)


def test_duplicate_path_assignment_detected(solved):
    bad_paths = dict(solved.flow_paths)
    bad_paths[2] = bad_paths[1]
    with pytest.raises(VerificationError):
        verify_paths(solved.spec, solved.binding, bad_paths)


def test_contamination_detected():
    sw = CrossbarSwitch(8)
    spec = SwitchSpec(
        switch=sw,
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "L2"},
    )
    # both forced through the left corridor -> share TL/L/BL
    paths = {
        1: _mk_path(sw, ["T1", "TL", "L", "BL", "B1"], 1),
        2: _mk_path(sw, ["L1", "TL", "L", "BL", "L2"], 2),
    }
    with pytest.raises(VerificationError):
        verify_contamination_freedom(spec, paths)


def test_schedule_partition_checked(solved):
    with pytest.raises(VerificationError):
        verify_schedule(solved.spec, solved.flow_paths, [[1]])  # flow 2 missing
    with pytest.raises(VerificationError):
        verify_schedule(solved.spec, solved.flow_paths, [[1, 2], []])


def test_schedule_collision_checked():
    sw = CrossbarSwitch(8)
    spec = SwitchSpec(
        switch=sw,
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "L2"},
    )
    paths = {
        1: _mk_path(sw, ["T1", "TL", "L", "BL", "B1"], 1),
        2: _mk_path(sw, ["L1", "TL", "L", "BL", "L2"], 2),
    }
    # same set: collision at TL/L/BL
    with pytest.raises(VerificationError):
        verify_schedule(spec, paths, [[1, 2]])
    # separate sets: fine
    verify_schedule(spec, paths, [[1], [2]])


def test_used_segments_mismatch_detected(solved):
    bad = copy.copy(solved)
    bad.used_segments = set(list(solved.used_segments)[:-1])
    with pytest.raises(VerificationError):
        verify_used_segments(bad)


def test_path_over_masked_segment_rejected(solved):
    """A routing that rides a health-masked segment must not verify."""
    from repro.repair import mask_spec
    from repro.sim.faults import stuck_closed

    seg = next(k for k in sorted(solved.used_segments)
               if not solved.spec.switch.is_pin(k[0])
               and not solved.spec.switch.is_pin(k[1]))
    degraded_spec = mask_spec(solved.spec, [stuck_closed(*seg)])
    with pytest.raises(VerificationError, match="masked segment"):
        verify_paths(degraded_spec, solved.binding, solved.flow_paths)


def test_masked_catalog_result_verifies_clean(solved):
    """Re-synthesis on the degraded spec yields a verifiable result
    that never touches the dead segment."""
    from repro.repair import mask_spec
    from repro.sim.faults import stuck_closed

    seg = next(k for k in sorted(solved.used_segments)
               if not solved.spec.switch.is_pin(k[0])
               and not solved.spec.switch.is_pin(k[1]))
    degraded_spec = mask_spec(solved.spec, [stuck_closed(*seg)])
    repaired = synthesize(degraded_spec)
    assert repaired.status.solved
    verify_result(repaired)
    for path in repaired.flow_paths.values():
        assert seg not in path.segments


def test_tampered_valve_table_detected(solved):
    bad = copy.copy(solved)
    bad.valves = copy.deepcopy(solved.valves)
    key = next(iter(bad.valves.status))
    bad.valves.status[key] = ["X"] * len(bad.valves.status[key])
    with pytest.raises(VerificationError):
        verify_result(bad)

"""Tests for atomic artifact writes (repro.io.atomic).

The contract under test: a reader never observes a torn file. Either
the complete old content or the complete new content exists at the
target path — through exceptions mid-write and through a hard process
death (``os._exit`` with the handle still open).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.io import atomic_write, atomic_write_text, fsync_directory


def no_temp_residue(directory):
    return [p.name for p in directory.iterdir() if p.suffix == ".tmp"] == []


def test_atomic_write_replaces_content(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("old")
    with atomic_write(target) as fh:
        fh.write("new")
    assert target.read_text() == "new"
    assert no_temp_residue(tmp_path)


def test_atomic_write_creates_missing_parents(tmp_path):
    target = tmp_path / "deep" / "er" / "out.txt"
    atomic_write_text(target, "hello")
    assert target.read_text() == "hello"


def test_exception_mid_write_preserves_old_file(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("precious")
    with pytest.raises(RuntimeError):
        with atomic_write(target) as fh:
            fh.write("half a new fi")
            raise RuntimeError("writer died")
    assert target.read_text() == "precious"
    assert no_temp_residue(tmp_path)


def test_exception_before_any_write_leaves_no_target(tmp_path):
    target = tmp_path / "never.txt"
    with pytest.raises(RuntimeError):
        with atomic_write(target):
            raise RuntimeError("nothing written")
    assert not target.exists()
    assert no_temp_residue(tmp_path)


def test_hard_crash_mid_write_preserves_old_file(tmp_path):
    """A process that dies with the temp handle open (no cleanup, no
    context-manager exit) must leave the old artifact intact."""
    target = tmp_path / "artifact.json"
    target.write_text('{"generation": 1}')
    script = (
        "import os, sys\n"
        "sys.path.insert(0, sys.argv[2])\n"
        "from repro.io import atomic_write\n"
        "with atomic_write(sys.argv[1]) as fh:\n"
        "    fh.write('{\"generation\": 2, \"incomp')\n"
        "    fh.flush()\n"
        "    os._exit(1)  # simulated crash: no replace, no unlink\n"
    )
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    proc = subprocess.run([sys.executable, "-c", script, str(target), src],
                          capture_output=True, text=True)
    assert proc.returncode == 1
    assert json.loads(target.read_text()) == {"generation": 1}


def test_read_and_append_modes_rejected(tmp_path):
    for mode in ("r", "a", "r+", "w+"):
        with pytest.raises(ValueError):
            with atomic_write(tmp_path / "x", mode=mode):
                pass


def test_binary_mode(tmp_path):
    target = tmp_path / "blob.bin"
    with atomic_write(target, mode="wb") as fh:
        fh.write(b"\x00\x01\x02")
    assert target.read_bytes() == b"\x00\x01\x02"


def test_fsync_variant_and_directory_sync(tmp_path):
    target = tmp_path / "durable.txt"
    atomic_write_text(target, "synced", fsync=True)
    assert target.read_text() == "synced"
    fsync_directory(tmp_path)  # must not raise
    fsync_directory(tmp_path / "does-not-exist")  # no-op, not an error


def test_result_json_save_is_atomic(tmp_path, monkeypatch):
    """save_result goes through atomic_write: a serialization failure
    mid-dump must not clobber the previous result file."""
    from repro.cases import generate_case
    from repro.core import BindingPolicy, SynthesisOptions, synthesize
    from repro.io import save_result

    spec = generate_case(seed=0, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)
    result = synthesize(spec, SynthesisOptions(time_limit=30))
    path = tmp_path / "result.json"
    save_result(result, path)
    first = path.read_text()
    assert json.loads(first)  # a complete, parseable artifact

    import repro.io.result_json as result_json

    def explode(*args, **kwargs):
        raise RuntimeError("serializer died mid-write")

    monkeypatch.setattr(result_json, "atomic_write_text", explode)
    with pytest.raises(RuntimeError):
        save_result(result, path)
    assert path.read_text() == first

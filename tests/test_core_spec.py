"""Tests for the synthesis input specification (repro.core.spec)."""

import pytest

from repro.core import BindingPolicy, Flow, SwitchSpec, conflict_pair
from repro.errors import SpecError
from repro.switches import CrossbarSwitch


def make_spec(**overrides):
    kwargs = dict(
        switch=CrossbarSwitch(8),
        modules=["a", "b", "c", "d"],
        flows=[Flow(1, "a", "b"), Flow(2, "c", "d")],
        binding=BindingPolicy.UNFIXED,
    )
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)


def test_valid_spec_builds():
    spec = make_spec()
    assert spec.flow_ids == [1, 2]
    assert spec.inlet_modules == ["a", "c"]
    assert spec.outlet_modules == ["b", "d"]


def test_flow_self_loop_rejected():
    with pytest.raises(SpecError):
        Flow(1, "a", "a")


def test_duplicate_modules_rejected():
    with pytest.raises(SpecError):
        make_spec(modules=["a", "a", "b", "c"])


def test_too_many_modules_rejected():
    with pytest.raises(SpecError):
        make_spec(modules=[f"m{i}" for i in range(9)], flows=[])


def test_unknown_flow_module_rejected():
    with pytest.raises(SpecError):
        make_spec(flows=[Flow(1, "a", "zzz")])


def test_duplicate_flow_ids_rejected():
    with pytest.raises(SpecError):
        make_spec(flows=[Flow(1, "a", "b"), Flow(1, "c", "d")])


def test_module_as_inlet_and_outlet_rejected():
    with pytest.raises(SpecError):
        make_spec(flows=[Flow(1, "a", "b"), Flow(2, "b", "c")])


def test_outlet_accessed_twice_rejected():
    """§4.2 default: each outlet pin can be accessed at most once."""
    with pytest.raises(SpecError):
        make_spec(flows=[Flow(1, "a", "b"), Flow(2, "c", "b")])


def test_conflict_pair_canonicalization():
    assert conflict_pair(2, 1) == frozenset({1, 2})
    with pytest.raises(SpecError):
        conflict_pair(3, 3)


def test_conflict_unknown_flow_rejected():
    with pytest.raises(SpecError):
        make_spec(conflicts={conflict_pair(1, 9)})


def test_same_inlet_conflict_rejected():
    flows = [Flow(1, "a", "b"), Flow(2, "a", "d")]
    with pytest.raises(SpecError):
        make_spec(flows=flows, conflicts={conflict_pair(1, 2)})


def test_fixed_requires_complete_injective_map():
    with pytest.raises(SpecError):
        make_spec(binding=BindingPolicy.FIXED)  # no map
    with pytest.raises(SpecError):
        make_spec(binding=BindingPolicy.FIXED,
                  fixed_binding={"a": "T1", "b": "B1", "c": "T2"})  # d missing
    with pytest.raises(SpecError):
        make_spec(binding=BindingPolicy.FIXED,
                  fixed_binding={"a": "T1", "b": "T1", "c": "T2", "d": "B1"})
    with pytest.raises(SpecError):
        make_spec(binding=BindingPolicy.FIXED,
                  fixed_binding={"a": "T1", "b": "NOPE", "c": "T2", "d": "B1"})
    spec = make_spec(binding=BindingPolicy.FIXED,
                     fixed_binding={"a": "T1", "b": "B1", "c": "T2", "d": "B2"})
    assert spec.binding is BindingPolicy.FIXED


def test_clockwise_requires_permutation_order():
    with pytest.raises(SpecError):
        make_spec(binding=BindingPolicy.CLOCKWISE)
    with pytest.raises(SpecError):
        make_spec(binding=BindingPolicy.CLOCKWISE, module_order=["a", "b"])
    spec = make_spec(binding=BindingPolicy.CLOCKWISE,
                     module_order=["d", "c", "b", "a"])
    assert spec.module_order == ["d", "c", "b", "a"]


def test_negative_weights_rejected():
    with pytest.raises(SpecError):
        make_spec(alpha=-1)
    with pytest.raises(SpecError):
        make_spec(beta=-0.5)


def test_conflicts_of():
    spec = make_spec(conflicts={conflict_pair(1, 2)})
    assert spec.conflicts_of(1) == [2]
    assert spec.conflicts_of(2) == [1]


def test_effective_max_sets():
    spec = make_spec()
    assert spec.effective_max_sets() == 2
    spec2 = make_spec(max_sets=10)
    assert spec2.effective_max_sets() == 2  # capped by flow count
    spec3 = make_spec(max_sets=1)
    assert spec3.effective_max_sets() == 1


def test_flow_lookup_and_summary():
    spec = make_spec()
    assert spec.flow(1).target == "b"
    with pytest.raises(SpecError):
        spec.flow(99)
    assert "8-pin" in spec.summary()


def test_empty_flows_allowed():
    spec = make_spec(flows=[])
    assert spec.effective_max_sets() == 1

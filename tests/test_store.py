"""Tests for the persistent content-addressed solve cache (repro.store).

Covers the store mechanics (envelope validation, quarantine, racing
writers, LRU gc), the codec's zero-trust decoding, the ambient-store
plumbing, and the end-to-end Tier A / Tier B behaviour through
``synthesize``, ``run_batch`` and the service.
"""

import json
import pickle
import threading

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions, SynthesisStatus
from repro.core.synthesizer import synthesize
from repro.store import (
    CACHE_EPOCH,
    Store,
    StoreError,
    active_store,
    artifact_key,
    code_salt,
    digest,
    load_result,
    result_key,
    set_active_store,
    store_result,
    use_store,
)


def small_spec(seed=0):
    return generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def some_key(tag="x"):
    return digest("test-entry", tag)


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def test_keys_are_sha256_hex():
    key = some_key()
    assert len(key) == 64
    assert all(c in "0123456789abcdef" for c in key)


def test_keys_fold_in_the_salt(monkeypatch):
    before = some_key()
    monkeypatch.setenv("REPRO_STORE_SALT", "tenant-b")
    assert some_key() != before
    assert code_salt() == "tenant-b"


def test_default_salt_names_the_epoch():
    assert f"epoch{CACHE_EPOCH}:" in code_salt()


def test_result_key_separates_case_and_config():
    spec = small_spec()
    base = result_key(spec, SynthesisOptions())
    assert result_key(spec, SynthesisOptions(mip_gap=1e-2)) != base
    assert result_key(small_spec(seed=1), SynthesisOptions()) != base
    # runtime attachments are not identity
    assert result_key(spec, SynthesisOptions(cache=False)) == base


def test_result_key_is_fault_salted():
    """A degraded chip must never address a healthy chip's entry."""
    from repro.repair import mask_spec
    from repro.sim import stuck_closed
    from repro.store import fault_salt

    spec = small_spec()
    assert fault_salt(spec) == "healthy"
    seg = next(k for k in sorted(spec.switch.segments)
               if not spec.switch.is_pin(k[0])
               and not spec.switch.is_pin(k[1]))
    degraded = mask_spec(small_spec(), [stuck_closed(*seg)])
    assert fault_salt(degraded) == degraded.switch.health.digest()
    assert result_key(degraded, SynthesisOptions()) != \
        result_key(spec, SynthesisOptions())
    # the salt is canonical: re-deriving the same mask gives the same key
    assert result_key(mask_spec(small_spec(), [stuck_closed(*seg)]),
                      SynthesisOptions()) == \
        result_key(degraded, SynthesisOptions())


def test_cached_healthy_result_never_serves_a_degraded_chip(tmp_path):
    from repro.repair import mask_spec
    from repro.sim import stuck_closed

    store = Store(tmp_path)
    opts = SynthesisOptions(store=store, time_limit=60)
    healthy = synthesize(small_spec(), opts)
    assert healthy.status is SynthesisStatus.OPTIMAL
    assert healthy.counters.get("store_put") == 1
    # strike a junction-junction segment the healthy routing uses
    seg = next(k for k in sorted(healthy.used_segments)
               if not healthy.spec.switch.is_pin(k[0])
               and not healthy.spec.switch.is_pin(k[1]))
    degraded_spec = mask_spec(small_spec(), [stuck_closed(*seg)])
    degraded = synthesize(degraded_spec, opts)
    assert "store_hit" not in degraded.counters  # no healthy-entry hit
    assert degraded.status.solved
    for path in degraded.flow_paths.values():
        assert seg not in path.segments
    # the degraded result got its own fault-salted entry
    warm = synthesize(mask_spec(small_spec(), [stuck_closed(*seg)]), opts)
    assert warm.counters.get("store_hit") == 1
    assert warm.objective == degraded.objective


def test_artifact_key_canonicalizes_tuples_and_floats():
    assert artifact_key("catalog", ("a", 1, 0.5)) == \
        artifact_key("catalog", ["a", 1, 0.5])
    assert artifact_key("catalog", 0.5) != artifact_key("catalog", 0.25)


# ----------------------------------------------------------------------
# store mechanics
# ----------------------------------------------------------------------
def test_put_get_roundtrip(tmp_path):
    store = Store(tmp_path)
    key = some_key()
    assert store.put(key, "catalog", {"routes": [["a", "b"]]})
    assert store.get(key, "catalog") == {"routes": [["a", "b"]]}
    assert store.counters["hits"] == 1
    assert store.contains(key, "catalog")


def test_get_miss(tmp_path):
    store = Store(tmp_path)
    assert store.get(some_key(), "catalog") is None
    assert store.counters["misses"] == 1


def test_malformed_key_rejected(tmp_path):
    with pytest.raises(StoreError):
        Store(tmp_path).get("not-a-key", "catalog")


def test_entries_are_immutable_first_writer_wins(tmp_path):
    store = Store(tmp_path)
    key = some_key()
    assert store.put(key, "catalog", {"routes": [["a", "b"]]})
    assert not store.put(key, "catalog", {"routes": [["c", "d"]]})
    assert store.get(key, "catalog") == {"routes": [["a", "b"]]}
    assert store.counters["put_races"] == 1


def test_truncated_entry_is_a_miss_and_is_repaired(tmp_path):
    """A torn write (crash mid-flush without atomic rename) heals."""
    store = Store(tmp_path)
    key = some_key()
    store.put(key, "catalog", {"routes": [["a", "b"]]})
    path = store._object_path(key)
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])  # truncate: unparseable JSON
    assert store.get(key, "catalog") is None
    assert store.counters["corrupt"] == 1
    assert not path.exists()  # quarantined
    # the next writer repairs the entry
    assert store.put(key, "catalog", {"routes": [["a", "b"]]})
    assert store.get(key, "catalog") is not None


def test_tampered_payload_is_a_miss(tmp_path):
    store = Store(tmp_path)
    key = some_key()
    store.put(key, "catalog", {"routes": [["a", "b"]]})
    path = store._object_path(key)
    entry = json.loads(path.read_text())
    entry["payload"]["routes"] = [["evil", "route"]]  # sha now mismatches
    path.write_text(json.dumps(entry))
    assert store.get(key, "catalog") is None
    assert store.counters["corrupt"] == 1


def test_wrong_kind_or_stale_salt_is_a_miss(tmp_path, monkeypatch):
    store = Store(tmp_path)
    key = some_key()
    store.put(key, "catalog", {"routes": []})
    assert store.get(key, "incumbent") is None  # kind mismatch
    store.put(key, "catalog", {"routes": []})
    monkeypatch.setenv("REPRO_STORE_SALT", "next-version")
    assert store.get(key, "catalog") is None  # stale salt


def test_concurrent_writers_converge(tmp_path):
    """Racing writers on one key leave exactly one valid entry."""
    store = Store(tmp_path)
    key = some_key()
    wins = []
    barrier = threading.Barrier(8)

    def writer(i):
        barrier.wait()
        if store.put(key, "catalog", {"routes": [["a", "b"]]}):
            wins.append(i)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
    assert store.get(key, "catalog") == {"routes": [["a", "b"]]}
    assert store.verify()["invalid"] == []


def test_blob_sidecar_roundtrip(tmp_path):
    store = Store(tmp_path)
    key = some_key()
    store.put(key, "catalog", {"routes": []}, blob=b"\x00\x01binary")
    assert store.get_blob(key) == b"\x00\x01binary"
    store.delete(key)
    assert store.get_blob(key) is None


def test_gc_evicts_least_recently_used(tmp_path):
    store = Store(tmp_path)
    keys = [some_key(str(i)) for i in range(4)]
    for i, key in enumerate(keys):
        store.put(key, "catalog", {"routes": [["n", str(i)]]})
        path = store._object_path(key)
        import os

        os.utime(path, (1000 + i, 1000 + i))  # deterministic recency
    sizes = sum(size for _, _, size in store._entries())
    report = store.gc(max_bytes=sizes // 2)
    assert report["evicted"] >= 1
    assert report["kept_bytes"] <= sizes // 2
    # the oldest entries went first
    assert store.contains(keys[-1], "catalog")
    assert not store.contains(keys[0], "catalog")
    assert store.counters["evictions"] == report["evicted"]


def test_hit_bumps_recency(tmp_path):
    import os

    store = Store(tmp_path)
    a, b = some_key("a"), some_key("b")
    store.put(a, "catalog", {"routes": [["a", "a"]]})
    store.put(b, "catalog", {"routes": [["b", "b"]]})
    os.utime(store._object_path(a), (1000, 1000))
    os.utime(store._object_path(b), (2000, 2000))
    store.get(a, "catalog")  # a becomes most recent
    entries = sum(size for _, _, size in store._entries())
    store.gc(max_bytes=entries - 1)  # must evict exactly one
    assert store.contains(a, "catalog")
    assert not store.contains(b, "catalog")


def test_gc_spares_entry_hit_between_scan_and_lock(tmp_path):
    """A reader bumping recency after gc's scan but before its lock
    must win: gc re-stats under the shard lock and skips the entry."""
    import contextlib
    import os

    store = Store(tmp_path)
    keys = [some_key(str(i)) for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, "catalog", {"routes": [["n", str(i)]]})
        os.utime(store._object_path(key), (1000 + i, 1000 + i))
    victim = keys[0]  # oldest: first on gc's eviction list
    original_lock = store._shard_lock
    raced = []

    def lock_after_racing_reader(key):
        @contextlib.contextmanager
        def cm():
            if key == victim and not raced:
                raced.append(key)
                os.utime(store._object_path(victim))  # the reader's bump
            with original_lock(key):
                yield
        return cm()

    store._shard_lock = lock_after_racing_reader
    entries = sum(size for _, _, size in store._entries())
    report = store.gc(max_bytes=entries - 1)
    assert raced, "the injected reader never fired"
    # the just-hit entry survived; gc moved on to the next-oldest
    assert store.contains(victim, "catalog")
    assert not store.contains(keys[1], "catalog")
    assert report["evicted"] == 1


def test_gc_tolerates_entry_vanishing_before_lock(tmp_path):
    """An entry unlinked between scan and lock (concurrent gc/repair)
    frees its bytes without crashing or counting as an eviction."""
    import contextlib
    import os

    store = Store(tmp_path)
    keys = [some_key(str(i)) for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, "catalog", {"routes": [["n", str(i)]]})
        os.utime(store._object_path(key), (1000 + i, 1000 + i))
    victim = keys[0]
    original_lock = store._shard_lock
    vanished = []

    def lock_after_concurrent_unlink(key):
        @contextlib.contextmanager
        def cm():
            if not vanished:
                vanished.append(key)
                store._object_path(victim).unlink()
            with original_lock(key):
                yield
        return cm()

    store._shard_lock = lock_after_concurrent_unlink
    report = store.gc(max_bytes=0)
    assert vanished
    # the vanished entry is not *our* eviction; the other two are
    assert report["evicted"] == 2
    assert store.counters["evictions"] == 2


def test_get_tolerates_eviction_between_read_and_bump(tmp_path,
                                                     monkeypatch):
    """gc unlinking a file after a reader loaded it but before the
    LRU utime bump must not break the read (payload already in hand)."""
    import os as _os

    from repro.store import store as store_module

    store = Store(tmp_path)
    key = some_key("racy")
    store.put(key, "catalog", {"routes": [["a", "b"]]})
    real_utime = _os.utime

    def unlink_then_bump(path, *args, **kwargs):
        _os.unlink(path)  # the concurrent gc wins the race
        return real_utime(path, *args, **kwargs)  # ENOENT

    monkeypatch.setattr(store_module.os, "utime", unlink_then_bump)
    assert store.get(key, "catalog") == {"routes": [["a", "b"]]}
    monkeypatch.undo()
    assert store.get(key, "catalog") is None  # really evicted


def test_gc_and_readers_race_without_losing_hot_entries(tmp_path):
    """Thread-level smoke: hammer get() against gc() and require the
    hot key (re-put on miss, as real callers do) always readable."""
    store = Store(tmp_path)
    hot = some_key("hot")
    payload = {"routes": [["h", "h"]]}
    store.put(hot, "catalog", payload)
    for i in range(6):
        store.put(some_key(f"cold{i}"), "catalog", {"routes": [["c", str(i)]]})
    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            got = store.get(hot, "catalog")
            if got is None:
                store.put(hot, "catalog", payload)
            elif got != payload:
                failures.append(got)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for _ in range(25):
        store.gc(max_bytes=256)
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not failures


def test_verify_reports_and_repairs(tmp_path):
    store = Store(tmp_path)
    good, bad = some_key("good"), some_key("bad")
    store.put(good, "catalog", {"routes": []})
    store.put(bad, "catalog", {"routes": []})
    store._object_path(bad).write_text("{ nope")
    report = store.verify(repair=True)
    assert report["checked"] == 2
    assert report["valid"] == 1
    assert report["invalid"][0]["key"] == bad
    assert not store._object_path(bad).exists()
    assert store.verify() == {"checked": 1, "valid": 1, "invalid": []}


def test_stats_shape(tmp_path):
    store = Store(tmp_path, max_bytes=1 << 20)
    store.put(some_key(), "catalog", {"routes": []})
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["by_kind"] == {"catalog": 1}
    assert stats["max_bytes"] == 1 << 20
    assert stats["salt"] == code_salt()
    assert stats["counters"]["puts"] == 1


def test_store_pickles_by_configuration(tmp_path):
    store = Store(tmp_path, max_bytes=123, seed_pseudocosts=True)
    store.put(some_key(), "catalog", {"routes": []})
    clone = pickle.loads(pickle.dumps(store))
    assert str(clone.root) == str(store.root)
    assert clone.max_bytes == 123
    assert clone.seed_pseudocosts is True
    assert clone.counters["puts"] == 0  # counters are per-process
    assert clone.contains(some_key(), "catalog")  # same on-disk cache


# ----------------------------------------------------------------------
# ambient store
# ----------------------------------------------------------------------
def test_use_store_installs_and_restores(tmp_path):
    assert active_store() is None
    store = Store(tmp_path)
    with use_store(store):
        assert active_store() is store
        with use_store(None):
            assert active_store() is None
        assert active_store() is store
    assert active_store() is None


def test_set_active_store_returns_previous(tmp_path):
    store = Store(tmp_path)
    assert set_active_store(store) is None
    try:
        assert active_store() is store
    finally:
        assert set_active_store(None) is store


def test_repro_store_env_opens_a_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
    store = active_store()
    assert store is not None
    assert str(store.root) == str(tmp_path / "envstore")
    assert active_store() is store  # cached across calls
    # an explicitly installed store wins over the environment
    other = Store(tmp_path / "other")
    with use_store(other):
        assert active_store() is other


# ----------------------------------------------------------------------
# Tier A through synthesize
# ----------------------------------------------------------------------
def test_synthesize_tier_a_roundtrip(tmp_path):
    spec = small_spec()
    store = Store(tmp_path)
    opts = SynthesisOptions(store=store, time_limit=60)
    cold = synthesize(spec, opts)
    assert cold.status is SynthesisStatus.OPTIMAL
    assert cold.counters.get("store_put") == 1
    warm = synthesize(small_spec(), opts)  # fresh but identical spec
    assert warm.counters.get("store_hit") == 1
    assert warm.objective == cold.objective
    assert warm.binding == cold.binding
    assert warm.flow_sets == cold.flow_sets
    assert {f: p.vertices for f, p in warm.flow_paths.items()} == \
        {f: p.vertices for f, p in cold.flow_paths.items()}


def test_cache_false_ignores_the_store(tmp_path):
    spec = small_spec()
    store = Store(tmp_path)
    synthesize(spec, SynthesisOptions(store=store, time_limit=60))
    again = synthesize(
        spec, SynthesisOptions(store=store, cache=False, time_limit=60))
    assert "store_hit" not in again.counters
    assert again.status is SynthesisStatus.OPTIMAL


def test_tier_a_hit_failing_verification_falls_through(tmp_path):
    """A stored result the checker rejects must not be served."""
    spec = small_spec()
    store = Store(tmp_path)
    opts = SynthesisOptions(store=store, time_limit=60)
    cold = synthesize(spec, opts)
    key = result_key(spec, opts)
    payload = store.get(key, "result")
    assert payload is not None
    # Forge a valid-looking entry whose binding is wrong: it decodes
    # cleanly but the independent verifier rejects it.
    forged = dict(payload)
    (m, p), = [list(forged["binding"].items())[0]]
    wrong = next(pin for pin in spec.switch.pins if pin != p)
    forged["binding"] = {**forged["binding"], m: wrong}
    store.delete(key)
    store.put(key, "result", forged)
    assert load_result(store, key, spec) is None  # rejected + deleted
    assert store.counters["verify_failed"] == 1
    assert not store.contains(key, "result")
    # synthesize falls through to a real solve and repairs the entry
    result = synthesize(spec, opts)
    assert "store_hit" not in result.counters
    assert result.status is SynthesisStatus.OPTIMAL
    assert result.objective == cold.objective
    assert store.contains(key, "result")


def test_only_proven_optimal_results_are_cached(tmp_path):
    spec = small_spec()
    store = Store(tmp_path)
    result = synthesize(spec, SynthesisOptions(store=store, time_limit=60))
    assert result.status is SynthesisStatus.OPTIMAL
    fake = synthesize(spec, SynthesisOptions(cache=False, time_limit=60))
    fake.status = SynthesisStatus.FEASIBLE
    assert store_result(store, some_key(), fake) is False


def test_ambient_store_reaches_synthesize(tmp_path):
    spec = small_spec()
    store = Store(tmp_path)
    with use_store(store):
        synthesize(spec, SynthesisOptions(time_limit=60))
        warm = synthesize(spec, SynthesisOptions(time_limit=60))
    assert warm.counters.get("store_hit") == 1


# ----------------------------------------------------------------------
# Tier B: path catalogs
# ----------------------------------------------------------------------
def test_path_catalog_persists_across_processes_simulated(tmp_path):
    """A cleared in-memory LRU falls back to the stored catalog."""
    from repro.switches import clear_path_cache, enumerate_paths, \
        path_cache_info

    spec = small_spec()
    store = Store(tmp_path)
    clear_path_cache()
    with use_store(store):
        fresh = enumerate_paths(spec.switch)
        assert path_cache_info()["misses"] == 1
        clear_path_cache()  # simulate a new process: memory gone, disk not
        stored = enumerate_paths(spec.switch)
        info = path_cache_info()
    clear_path_cache()
    assert info["store_hits"] == 1
    assert info["misses"] == 0
    assert [p.vertices for p in stored] == [p.vertices for p in fresh]
    assert [p.length for p in stored] == [p.length for p in fresh]


def test_corrupt_stored_catalog_is_quarantined(tmp_path):
    from repro.switches import clear_path_cache, enumerate_paths

    spec = small_spec()
    store = Store(tmp_path)
    clear_path_cache()
    with use_store(store):
        enumerate_paths(spec.switch)
        [(path, _, _)] = [e for e in store._entries()]
        entry = json.loads(path.read_text())
        entry["payload"]["routes"] = [["ghost", "vertices"]]
        from repro.store.store import _payload_sha

        entry["payload_sha"] = _payload_sha(entry["payload"])
        path.write_text(json.dumps(entry))  # valid envelope, bogus routes
        clear_path_cache()
        catalog = enumerate_paths(spec.switch)  # decode fails -> re-enumerate
    clear_path_cache()
    assert len(catalog) > 0


# ----------------------------------------------------------------------
# batch + service integration
# ----------------------------------------------------------------------
def test_run_batch_warm_rows_match_cold(tmp_path):
    from repro.experiments import run_batch

    specs = [small_spec(s) for s in range(2)]
    store = Store(tmp_path)
    cold = run_batch(specs, SynthesisOptions(time_limit=60), store=store)
    warm = run_batch([small_spec(s) for s in range(2)],
                     SynthesisOptions(time_limit=60), store=store)
    strip = lambda row: {k: v for k, v in row.items() if k != "runtime_s"}
    assert [strip(r) for r in warm.rows] == [strip(r) for r in cold.rows]
    assert store.counters["hits"] >= 2


def test_service_completes_stored_jobs_at_admission(tmp_path):
    from repro.service import SynthesisService

    spec = small_spec()
    store = Store(tmp_path)
    opts = SynthesisOptions(time_limit=60)
    with SynthesisService(workers=1, options=opts, store=store) as svc:
        job = svc.submit(spec)
        record = svc.wait(job, timeout=120)
        assert record.state == "done"
    # a second tenant on the same store: terminal at submit time
    with SynthesisService(workers=1, options=opts, store=store) as svc2:
        job2 = svc2.submit(small_spec())
        assert svc2.job(job2).terminal  # no worker involved
        assert svc2.job(job2).state == "done"
        assert svc2.job(job2).row["status"] == "optimal"
        assert svc2.job(job2).row == record.row or \
            {k: v for k, v in svc2.job(job2).row.items()
             if k != "runtime_s"} == \
            {k: v for k, v in record.row.items() if k != "runtime_s"}

"""Deadline propagation and the degradation ladder.

The headline guarantee under test: with ``time_limit=T`` the *whole*
pipeline — including the pressure-sharing clique-cover ILP that
historically ran unbounded after the main solve — finishes within
``T`` plus a short non-interruptible tail, and a timed-out exact solve
degrades to the validated greedy solution instead of returning an
empty TIMEOUT result.
"""

import time

import pytest

from repro.cases import generate_case
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    SynthesisStatus,
    synthesize,
    synthesize_greedy,
    share_pressure,
)
from repro.deadline import Deadline
from repro.errors import ReproError


# ----------------------------------------------------------------------
# the Deadline primitive
# ----------------------------------------------------------------------
def test_unbounded_deadline_is_inert():
    d = Deadline(None)
    assert not d.bounded
    assert d.remaining() is None
    assert not d.expired()
    assert d.remaining_or(42.0) == 42.0


def test_bounded_deadline_counts_down():
    d = Deadline(10.0)
    assert d.bounded
    left = d.remaining()
    assert 0.0 < left <= 10.0
    assert d.remaining_or(99.0) < 10.0  # the default is ignored when bounded
    assert not d.expired()


def test_deadline_expires_and_clamps():
    d = Deadline(0.0)
    assert d.expired()
    assert d.remaining() == 0.0
    time.sleep(0.01)
    assert d.remaining() == 0.0  # clamped, never negative
    assert d.elapsed() > 0.0


def test_negative_limit_rejected():
    with pytest.raises(ReproError):
        Deadline(-1.0)


# ----------------------------------------------------------------------
# propagation through the pipeline
# ----------------------------------------------------------------------
def stress_spec():
    """12-pin unfixed case whose exact solve needs far more than 1.5s."""
    return generate_case(seed=3, switch_size=12, n_flows=5, n_inlets=3,
                         n_conflicts=2, binding=BindingPolicy.UNFIXED)


def test_total_wall_time_bounded_on_stress_case():
    """Acceptance: wall time stays within T + 0.5s, pressure ILP enabled.

    Runs on the branch-and-bound backend, which checks the deadline at
    every node. (scipy's HiGHS polls its limit sporadically and can
    overrun by ~40% on its own — see the companion test below.)
    """
    T = 1.5
    options = SynthesisOptions(time_limit=T, backend="branch_bound",
                               pressure_sharing=True, pressure_method="ilp")
    start = time.perf_counter()
    result = synthesize(stress_spec(), options)
    wall = time.perf_counter() - start
    assert wall <= T + 0.5, f"synthesize took {wall:.2f}s for time_limit={T}"
    # Under the degrade policy a timeout can no longer surface as an
    # empty result: either the solver got an incumbent in time or the
    # greedy fallback stood in.
    assert result.status.solved
    if result.counters.get("degraded"):
        assert result.solver == "greedy(degraded)"
        assert result.error  # the original failure is recorded


def test_wall_time_roughly_bounded_on_default_backend():
    """The default backend can overrun only by HiGHS's own polling slack.

    Before deadline propagation the pressure ILP ran with *no* limit
    after the main solve, so total wall time was unbounded regardless of
    backend. Now the only overrun left is scipy's coarse internal limit
    polling, bounded here with a deliberately generous margin.
    """
    T = 1.5
    start = time.perf_counter()
    result = synthesize(stress_spec(), SynthesisOptions(time_limit=T))
    wall = time.perf_counter() - start
    assert wall <= T + 1.5, f"synthesize took {wall:.2f}s for time_limit={T}"
    assert result.status.solved


def test_timeout_degrades_to_validated_greedy():
    """A hopeless budget still yields a verified FEASIBLE solution."""
    result = synthesize(stress_spec(), SynthesisOptions(time_limit=0.0))
    assert result.status is SynthesisStatus.FEASIBLE
    assert result.counters.get("degraded") == 1
    assert result.solver == "greedy(degraded)"
    # ... and it matches what the greedy heuristic itself produces
    greedy = synthesize_greedy(stress_spec())
    assert result.flow_channel_length == pytest.approx(
        greedy.flow_channel_length)
    assert result.num_flow_sets == greedy.num_flow_sets


def test_timeout_without_degrade_still_returns_timeout():
    result = synthesize(
        stress_spec(), SynthesisOptions(time_limit=0.0, on_error="capture"))
    assert result.status is SynthesisStatus.TIMEOUT


def test_unknown_on_error_policy_rejected():
    with pytest.raises(ReproError):
        synthesize(stress_spec(), SynthesisOptions(on_error="retry"))


def test_greedy_respects_its_own_deadline():
    result = synthesize_greedy(stress_spec(), time_limit=0.0)
    assert result.status is SynthesisStatus.TIMEOUT
    assert result.solver == "greedy"


# ----------------------------------------------------------------------
# pressure-sharing fallback
# ----------------------------------------------------------------------
def incompatible_status(n=8):
    """n valves, pairwise incompatible (worst case for the cover ILP)."""
    return {
        (f"n{i}", f"n{i+1}"): ["O" if j == i else "C" for j in range(n)]
        for i in range(n)
    }


def test_share_pressure_zero_budget_falls_back_to_greedy():
    res = share_pressure(incompatible_status(), time_limit=0.0,
                         on_timeout="greedy")
    assert res.degraded
    assert res.method == "greedy"
    assert res.num_control_inlets == 8  # pairwise incompatible: no sharing


def test_share_pressure_timeout_raises_by_default():
    # Backends solve this tiny ILP at presolve even with time_limit=0,
    # so the budget-exhausted path is exercised via an injected timeout.
    from repro.errors import SolveTimeoutError
    from repro.testing import FaultPlan, install_faulty_backend

    with install_faulty_backend("flaky", plan=FaultPlan(schedule=["timeout"])):
        with pytest.raises(SolveTimeoutError):
            share_pressure(incompatible_status(), backend="flaky",
                           time_limit=5.0)


def test_share_pressure_timeout_with_greedy_policy_degrades():
    from repro.testing import FaultPlan, install_faulty_backend

    with install_faulty_backend("flaky", plan=FaultPlan(schedule=["timeout"])):
        res = share_pressure(incompatible_status(), backend="flaky",
                             time_limit=5.0, on_timeout="greedy")
    assert res.degraded
    assert res.method == "greedy"
    assert res.num_control_inlets == 8


def test_share_pressure_with_budget_is_exact_and_not_degraded():
    res = share_pressure(incompatible_status(4), time_limit=30,
                         on_timeout="greedy")
    assert not res.degraded
    assert res.method == "ilp"


def test_share_pressure_rejects_unknown_policy():
    with pytest.raises(ReproError):
        share_pressure(incompatible_status(2), on_timeout="panic")


def test_pressure_degradation_recorded_in_counters():
    """A solved case whose pressure budget is gone gets a greedy cover."""
    spec = generate_case(seed=5, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)
    # Generous main budget, then exhaust it before the pressure phase by
    # solving with an already-expired deadline: time_limit=0 + degrade
    # goes straight to greedy, which uses the greedy cover. Instead we
    # check the clean path keeps the flag off.
    clean = synthesize(spec, SynthesisOptions(time_limit=60))
    assert clean.status is SynthesisStatus.OPTIMAL
    assert "pressure_degraded" not in clean.counters
    assert clean.pressure is not None and not clean.pressure.degraded


# ---------------------------------------------------------------------------
# process-boundary serialization
# ---------------------------------------------------------------------------

def test_deadline_pickle_carries_remaining_not_clock_anchor():
    """A pickled deadline must re-arm with the *remaining* budget.

    The monotonic anchor is per-process; the historical bug was that a
    deadline crossing a spawn boundary silently re-granted the full
    original budget (or worse, a nonsense one from the child's clock
    epoch). Serializing must therefore capture remaining seconds.
    """
    import pickle

    d = Deadline(10.0)
    time.sleep(0.05)
    clone = pickle.loads(pickle.dumps(d))
    assert clone.bounded
    # The clone's *limit* equals the remaining budget at pickle time —
    # strictly less than the original limit, never a reset to 10s.
    assert clone.limit is not None
    assert clone.limit <= 10.0 - 0.04
    assert clone.remaining() <= clone.limit


def test_deadline_pickle_unbounded_stays_unbounded():
    import pickle

    clone = pickle.loads(pickle.dumps(Deadline(None)))
    assert not clone.bounded
    assert clone.remaining() is None
    assert not clone.expired()


def test_deadline_pickle_expired_stays_expired():
    import pickle

    d = Deadline(0.0)
    clone = pickle.loads(pickle.dumps(d))
    assert clone.expired()
    assert clone.remaining() == 0.0


def test_deadline_wire_round_trip():
    d = Deadline(5.0)
    wire = d.to_wire()
    assert wire is not None and 0.0 < wire <= 5.0
    rebuilt = Deadline.from_wire(wire)
    assert rebuilt.bounded and rebuilt.remaining() <= wire
    assert Deadline.from_wire(Deadline(None).to_wire()).remaining() is None


def test_deadline_survives_real_process_hop():
    """End to end: a child process sees a shrunk, working budget."""
    import multiprocessing as mp
    import pickle

    d = Deadline(30.0)
    time.sleep(0.02)
    payload = pickle.dumps(d)

    ctx = mp.get_context("spawn")
    with ctx.Pool(1) as pool:
        remaining = pool.apply(_remaining_of, (payload,))
    assert 0.0 < remaining < 30.0


def _remaining_of(payload: bytes) -> float:
    import pickle

    return pickle.loads(payload).remaining()

"""Tests for actuation programs and multiplexer control."""

import json

import pytest

from repro.control import (
    HIGH,
    LOW,
    ActuationProgram,
    MuxPlan,
    compile_program,
    control_strategy_rows,
)
from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.core.valves import CLOSED, OPEN
from repro.errors import ReproError
from repro.sim import simulate
from repro.switches import CrossbarSwitch


@pytest.fixture(scope="module")
def result():
    """A two-set schedule with essential valves and shared pressure."""
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2"],
        flows=[Flow(1, "acid", "w1"), Flow(2, "base", "w2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "L1", "w2": "B2"},
        name="program-case",
    )
    res = synthesize(spec)
    assert res.status.solved and res.valves.essential
    return res


def test_compile_structure(result):
    program = compile_program(result)
    assert program.num_steps == result.num_flow_sets
    assert program.num_inlets == result.pressure.num_control_inlets
    covered = {v for group in program.inlets for v in group}
    assert covered == result.valves.essential
    for step in program.steps:
        assert set(step.levels) == set(range(program.num_inlets))
        assert set(step.levels.values()) <= {HIGH, LOW}


def test_program_realizes_schedule(result):
    """Compilation cross-check: every O/C demand is reproduced."""
    program = compile_program(result)
    for valve in result.valves.essential:
        for step, state in enumerate(result.valves.status[valve]):
            if state in (OPEN, CLOSED):
                assert program.valve_state(valve, step) == state


def test_program_consistent_with_simulator(result):
    """Driving don't-care valves to the program's level (open) still
    executes cleanly — the don't-care semantics is real."""
    report = simulate(result, dont_care_open=True)
    assert report.is_clean


def test_transitions_counted(result):
    program = compile_program(result)
    manual = 0
    for a, b in zip(program.steps, program.steps[1:]):
        manual += sum(1 for i in a.levels if a.levels[i] != b.levels[i])
    assert program.transitions() == manual


def test_program_export(result, tmp_path):
    program = compile_program(result)
    path = tmp_path / "program.json"
    program.save(path)
    data = json.loads(path.read_text())
    assert data["case"] == "program-case"
    assert len(data["steps"]) == program.num_steps
    assert "inlet 0" in program.pretty()


def test_unsolved_rejected():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["a", "b"],
        flows=[Flow(1, "a", "b")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"a": "T1", "b": "B1"},
    )
    res = synthesize(spec)
    res.status = type(res.status).NO_SOLUTION
    with pytest.raises(ReproError):
        compile_program(res)


# ----------------------------------------------------------------------
# multiplexer
# ----------------------------------------------------------------------
def test_mux_input_counts():
    assert MuxPlan(1).num_control_inputs == 3   # 1 bit (degenerate) + source
    assert MuxPlan(2).num_control_inputs == 3
    assert MuxPlan(4).num_control_inputs == 5
    assert MuxPlan(5).num_control_inputs == 7
    assert MuxPlan(16).num_control_inputs == 9
    with pytest.raises(ReproError):
        MuxPlan(0)


def test_mux_actuations(result):
    program = compile_program(result)
    mux = MuxPlan(program.num_inlets)
    expected = len(program.steps[0].levels) + program.transitions()
    assert mux.actuations_for(program) == expected


def test_control_strategy_rows(result):
    rows = control_strategy_rows(result)
    strategies = [r["strategy"] for r in rows]
    assert "direct (1 inlet/valve)" in strategies
    assert "pressure sharing (paper)" in strategies
    assert "multiplexer (Columba S)" in strategies
    direct = next(r for r in rows if r["strategy"].startswith("direct"))
    shared = next(r for r in rows if r["strategy"].startswith("pressure"))
    assert shared["control inputs"] <= direct["control inputs"]
    # parallel strategies actuate once per flow set
    assert direct["actuations"] == result.num_flow_sets


def test_control_strategy_rows_no_valves():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["a", "b"],
        flows=[Flow(1, "a", "b")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"a": "T1", "b": "B1"},
    )
    res = synthesize(spec)
    rows = control_strategy_rows(res)
    assert rows[0]["strategy"] == "none needed"

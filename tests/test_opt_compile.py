"""Tests for the sparse model compilation cache (repro.opt.compile)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.opt import Model, VarType
from repro.opt.compile import SENSE_EQ, SENSE_GE, SENSE_LE, compile_model


def demo_model():
    m = Model("compile demo")
    x = m.add_binary("x")
    y = m.add_integer("y", 0, 5)
    z = m.add_var("z", VarType.CONTINUOUS, 0.0, 4.0)
    m.add_constr(x + 2 * y <= 7, "le_row")
    m.add_constr(3 * y - z >= 1, "ge_row")
    m.add_constr(x + z == 2, "eq_row")
    m.set_objective(x + y + z, "min")
    return m, (x, y, z)


def test_coo_and_csr_agree():
    m, (x, y, z) = demo_model()
    compiled = m.compiled()
    assert compiled.n == 3 and compiled.m == 3
    dense = np.zeros((3, 3))
    dense[compiled.a_rows, compiled.a_cols] = compiled.a_data
    np.testing.assert_allclose(compiled.A_csr.toarray(), dense)
    np.testing.assert_allclose(dense[0], [1, 2, 0])
    np.testing.assert_allclose(dense[1], [0, 3, -1])
    np.testing.assert_allclose(dense[2], [1, 0, 1])


def test_senses_and_range_rows():
    m, _ = demo_model()
    compiled = m.compiled()
    assert list(compiled.senses) == [SENSE_LE, SENSE_GE, SENSE_EQ]
    np.testing.assert_allclose(compiled.rhs, [7, 1, 2])
    # range form: LE rows are unbounded below, GE rows unbounded above
    np.testing.assert_allclose(compiled.row_lb, [-np.inf, 1, 2])
    np.testing.assert_allclose(compiled.row_ub, [7, np.inf, 2])


def test_split_form_negates_ge_rows():
    m, _ = demo_model()
    A_ub, b_ub, A_eq, b_eq = m.compiled().split_form()
    np.testing.assert_allclose(
        sorted(A_ub.toarray().tolist()), sorted([[1, 2, 0], [0, -3, 1]]))
    assert set(b_ub.tolist()) == {7, -1}
    np.testing.assert_allclose(A_eq.toarray(), [[1, 0, 1]])
    np.testing.assert_allclose(b_eq, [2])


def test_bounds_and_integrality():
    m, _ = demo_model()
    compiled = m.compiled()
    np.testing.assert_allclose(compiled.lb, [0, 0, 0])
    np.testing.assert_allclose(compiled.ub, [1, 5, 4])
    assert list(compiled.integrality) == [1, 1, 0]


def test_compiled_is_cached_until_mutation():
    m, _ = demo_model()
    first = m.compiled()
    assert m.compiled() is first          # same object while unchanged
    m.add_constr(m.variables[0] <= 1)
    second = m.compiled()
    assert second is not first            # add_constr invalidates
    assert second.m == first.m + 1


def test_add_var_invalidates():
    m, _ = demo_model()
    first = m.compiled()
    m.add_var("w", VarType.CONTINUOUS, 0.0, 1.0)
    assert m.compiled() is not first
    assert m.compiled().n == first.n + 1


def test_set_objective_invalidates():
    m, (x, y, z) = demo_model()
    first = m.compiled()
    m.set_objective(5 * x, "max")
    second = m.compiled()
    assert second is not first
    # maximization stores the negated vector internally
    np.testing.assert_allclose(second.c, [-5, 0, 0])
    assert second.obj_sign == -1
    assert second.report_objective(-5.0) == pytest.approx(5.0)


def test_explicit_invalidate():
    m, _ = demo_model()
    first = m.compiled()
    m.invalidate()
    assert m.compiled() is not first


def test_compile_model_function_matches_method():
    m, _ = demo_model()
    assert compile_model(m) is m.compiled()


def test_objective_constant_and_sign():
    m = Model()
    x = m.add_integer("x", 0, 10)
    m.add_constr(x <= 4)
    m.set_objective(2 * x + 3, "max")
    sol = m.solve()
    assert sol.objective == pytest.approx(11)
    compiled = m.compiled()
    assert compiled.obj_offset == pytest.approx(3)
    assert compiled.report_objective(-8.0) == pytest.approx(11.0)


def test_quadratic_model_rejected():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y <= 1)
    with pytest.raises(ModelError):
        m.compiled()


def test_empty_model_compiles():
    m = Model()
    compiled = m.compiled()
    assert compiled.n == 0 and compiled.m == 0
    assert compiled.A_csr.shape == (0, 0)


def test_solution_dict_roundtrip():
    m, (x, y, z) = demo_model()
    compiled = m.compiled()
    values = compiled.solution_dict(np.array([1.0, 2.0, 1.0]))
    assert values[x] == 1.0 and values[y] == 2.0 and values[z] == 1.0

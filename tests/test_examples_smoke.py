"""Smoke tests: the fast example scripts run end to end.

The solver-heavy examples (chip_synthesis, flow_scheduling full mode)
are exercised by the benchmark harness instead; here we run the ones
that finish in seconds, exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "pressure_sharing.py",
    "fault_injection.py",
    "baseline_comparison.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
        cwd=EXAMPLES.parent,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_output_contents(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
        cwd=EXAMPLES.parent,
    )
    assert "status: optimal" in proc.stdout
    assert "binding" in proc.stdout
    svg = EXAMPLES / "output" / "quickstart.svg"
    assert svg.exists()


def test_every_example_has_a_docstring_and_main():
    for script in EXAMPLES.glob("*.py"):
        source = script.read_text(encoding="utf-8")
        assert source.lstrip().startswith(('#!', '"""')), script.name
        assert "def main(" in source, script.name
        assert '__name__ == "__main__"' in source, script.name

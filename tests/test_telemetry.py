"""Tests for the distributed telemetry plane (`repro.obs.telemetry`).

Covers the wire contract (framed batches, torn-batch rejection, the
`foreign` grandchild relay), the deterministic merge (byte-identical
output for any batch grouping or arrival order), the flight recorder,
Prometheus exposition + its validator, metric instance namespacing,
and the end-to-end platform path: two shard processes plus the
coordinator yield one merged correlation-carrying `repro-obs-v1`
stream served over ``GET /metrics`` and ``GET /jobs/<id>/trace``.
"""

import json
import os
import signal
import time

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy
from repro.io import spec_to_dict
from repro.obs import validate_trace_records
from repro.obs.telemetry import (
    FlightRecorder,
    TelemetryCollector,
    TelemetryShipper,
    correlation_id,
    correlation_job,
    merge_streams,
    render_prometheus,
    series_from_sources,
    validate_batch,
    validate_prometheus_text,
)
from repro.obs.trace import Tracer
from repro.service import ServiceHTTPServer, ShardCoordinator, fetch_metrics, fetch_trace, submit_job, wait_job

OPTS = {"time_limit": 30}


def small_spec(seed=0):
    return generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def make_records(tracer_name, spans):
    """Record a few spans/events on a throwaway tracer; return records."""
    tracer = Tracer(tracer_name)
    for name in spans:
        with tracer.span(name):
            tracer.event(f"{name}_evt", detail=name)
    return tracer.records(with_metrics=False)


# ----------------------------------------------------------------------
# shipper: incremental framed batches
# ----------------------------------------------------------------------
def test_shipper_ships_records_exactly_once():
    tracer = Tracer("child")
    shipper = TelemetryShipper(tracer, source="child")
    with tracer.span("a"):
        pass
    first = shipper.collect()
    assert validate_batch(first)
    assert first["n"] == len(first["records"]) == 2  # begin + end
    with tracer.span("b"):
        pass
    second = shipper.collect()
    assert {r["name"] for r in second["records"]} == {"b"}
    assert second["n"] == 2
    # nothing new: empty batch, still well-framed
    third = shipper.collect()
    assert third["n"] == 0 and validate_batch(third)


def test_shipper_metrics_are_cumulative():
    tracer = Tracer("child")
    shipper = TelemetryShipper(tracer, source="child")
    tracer.metrics.counter("work").inc(2)
    assert shipper.collect()["metrics"]["work"]["value"] == 2
    tracer.metrics.counter("work").inc(3)
    # snapshot is the running total, not the delta
    assert shipper.collect()["metrics"]["work"]["value"] == 5


def test_shipper_bounds_batch_size():
    tracer = Tracer("child")
    shipper = TelemetryShipper(tracer, source="child", max_batch=3)
    for index in range(4):
        tracer.event("tick", i=index)
    first, second = shipper.collect(), shipper.collect()
    assert first["n"] == 3 and second["n"] == 1


def test_shipper_relays_foreign_batches():
    """Grandchild batches absorbed by a mid-tier tracer ride along."""
    worker = Tracer("bb-worker-0")
    with worker.span("bb_task"):
        pass
    worker_batch = TelemetryShipper(worker, source="bb-worker-0").collect()

    shard = Tracer("shard-0")
    assert shard.absorb_batch(worker_batch)
    with shard.span("job"):
        pass
    shipper = TelemetryShipper(shard, source="shard-0")
    relayed = shipper.collect()
    assert relayed["foreign"] == [worker_batch]
    # foreign ships exactly once too
    assert "foreign" not in shipper.collect()

    collector = TelemetryCollector()
    assert collector.absorb(relayed)
    names = {name for name, _ in collector.sources()}
    assert names == {"shard-0", "bb-worker-0"}
    merged = collector.merged()
    validate_trace_records(merged)
    assert {r["src"] for r in merged} == {"shard-0", "bb-worker-0"}


# ----------------------------------------------------------------------
# collector: framing, torn batches, monotonic aggregation
# ----------------------------------------------------------------------
def test_collector_rejects_torn_batches():
    tracer = Tracer("child")
    shipper = TelemetryShipper(tracer, source="child")
    with tracer.span("a"):
        pass
    batch = shipper.collect()

    collector = TelemetryCollector()
    torn = dict(batch)
    del torn["complete"]  # died before the end marker
    assert not collector.absorb(torn)
    short = dict(batch, records=batch["records"][:-1])  # n mismatch
    assert not collector.absorb(short)
    assert not collector.absorb("garbage")
    assert collector.rejected == 3
    assert collector.sources() == []
    # the intact batch still lands
    assert collector.absorb(batch)
    validate_trace_records(collector.merged())


def test_collector_aggregates_across_respawn_monotonically():
    """A respawned shard is a new stream; sums never go backwards."""
    collector = TelemetryCollector()

    def batch_from(pid, value):
        tracer = Tracer("shard-0")
        tracer.metrics.counter("jobs").inc(value)
        batch = TelemetryShipper(tracer, source="shard-0").collect()
        batch["pid"] = pid  # simulate distinct incarnations
        return batch

    collector.absorb(batch_from(pid=100, value=7))
    before = collector.aggregated_metrics()["jobs"]["value"]
    # the kill: the respawned process restarts its counter from zero
    collector.absorb(batch_from(pid=200, value=1))
    after = collector.aggregated_metrics()["jobs"]["value"]
    assert before == 7 and after == 8  # 7 + 1, not reset to 1
    assert len(collector.sources()) == 2


# ----------------------------------------------------------------------
# deterministic merge
# ----------------------------------------------------------------------
def test_merge_is_invariant_to_batch_grouping_and_order():
    """Same records => byte-identical merge, however they were batched."""
    tracers = []
    for index in range(3):
        tracer = Tracer(f"shard-{index}")
        with tracer.span("job", shard=index):
            tracer.event("progress", step=1)
        tracers.append(tracer)

    streams = [(f"shard-{i}", 1000 + i, t.records(with_metrics=False))
               for i, t in enumerate(tracers)]

    whole = merge_streams(streams)
    reversed_arrival = merge_streams(list(reversed(streams)))
    # split every stream into two "batches" shipped separately: the
    # collector concatenates them per (source, pid) key, so the merge
    # input is the same record list either way
    split = merge_streams(
        (name, pid, records[:1] + records[1:]) for name, pid, records
        in streams)
    assert json.dumps(whole) == json.dumps(reversed_arrival)
    assert json.dumps(whole) == json.dumps(split)
    validate_trace_records(whole)
    # every record stays attributable to its origin process
    assert {(r["src"], r["pid"]) for r in whole} \
        == {(f"shard-{i}", 1000 + i) for i in range(3)}


def test_merge_repairs_torn_spans():
    """A killed child's dangling span_begin is closed, not fatal."""
    tracer = Tracer("victim")
    ctx = tracer.span("doomed")
    ctx.__enter__()  # never exited: the SIGKILL case
    records = tracer.records(with_metrics=False)
    # drop the synthesized closes records() adds, keeping the raw tear
    torn = [r for r in records if not r.get("truncated")]
    merged = merge_streams([("victim", 1, torn)])
    validate_trace_records(merged)
    closes = [r for r in merged if r["type"] == "span_end"]
    assert closes and all(r.get("truncated") for r in closes)


def test_merge_orders_by_logical_clock_across_processes():
    """RPC-witnessed clocks order cause before effect in the merge."""
    parent = Tracer("parent")
    with parent.span("submit"):
        pass
    # the child witnesses the parent's clock on RPC receipt, so all its
    # work sorts after the submit span that caused it
    child = Tracer("child")
    child.witness(parent.clock)
    with child.span("execute"):
        pass
    merged = merge_streams([
        ("child", 2, child.records(with_metrics=False)),
        ("parent", 1, parent.records(with_metrics=False)),
    ])
    names = [r["name"] for r in merged if r["type"] == "span_begin"]
    assert names == ["submit", "execute"]


# ----------------------------------------------------------------------
# correlation ids + flight recorder
# ----------------------------------------------------------------------
def test_correlation_id_round_trip():
    corr = correlation_id("abc123-def456", 7)
    assert corr == "abc123-def456#7"
    assert correlation_job(corr) == "abc123-def456"


def test_flight_recorder_retains_and_validates_per_job():
    recorder = FlightRecorder(max_jobs=2, max_records=8)
    for job in ("job-a", "job-b"):
        tracer = Tracer("shard-0")
        with tracer.correlate(correlation_id(job, 1)):
            with tracer.span("synthesize"):
                tracer.event("solver_done")
        recorder.observe(dict(r, src="shard-0", pid=1)
                         for r in tracer.records(with_metrics=False))
    # lookup by bare job id or by full correlation id
    for key in ("job-a", correlation_id("job-a", 1)):
        trace = recorder.trace(key)
        validate_trace_records(trace)
        assert all(r["corr"] == "job-a#1" for r in trace)
    assert recorder.trace("job-nope") is None
    # LRU: a third job evicts the oldest
    tracer = Tracer("shard-0")
    with tracer.correlate(correlation_id("job-c", 1)):
        tracer.event("solver_done")
    recorder.observe(dict(r, src="shard-0", pid=1)
                     for r in tracer.records(with_metrics=False))
    assert recorder.trace("job-a") is None
    assert recorder.trace("job-c") is not None


def test_flight_recorder_ring_bound_survives_validation():
    """A ring that wrapped (lost span begins) still yields a valid trace."""
    recorder = FlightRecorder(max_jobs=1, max_records=4)
    tracer = Tracer("shard-0")
    with tracer.correlate("job#1"):
        for index in range(6):
            with tracer.span("step", i=index):
                pass
    recorder.observe(dict(r, src="shard-0", pid=1)
                     for r in tracer.records(with_metrics=False))
    trace = recorder.trace("job")
    assert len(trace) <= 4 + 1  # ring bound (+1 synthesized close max)
    validate_trace_records(trace)


# ----------------------------------------------------------------------
# metric instance namespacing
# ----------------------------------------------------------------------
def test_metric_instances_do_not_collide():
    tracer = Tracer("host")
    tracer.metrics.gauge("service_queue_depth", instance="svc-a").set(3)
    tracer.metrics.gauge("service_queue_depth", instance="svc-b").set(9)
    snapshot = tracer.metrics.snapshot()
    assert snapshot["service_queue_depth[svc-a]"]["value"] == 3
    assert snapshot["service_queue_depth[svc-b]"]["value"] == 9
    # exposition keeps one metric family with distinct instance labels
    text = render_prometheus(series_from_sources({"host@1": snapshot}))
    assert text.count("# TYPE service_queue_depth gauge") == 1
    assert 'service_queue_depth{instance="svc-a"} 3' in text
    assert 'service_queue_depth{instance="svc-b"} 9' in text
    validate_prometheus_text(text)


def test_store_counters_are_instance_namespaced(tmp_path):
    from repro.obs.trace import use_tracer
    from repro.store import Store

    tracer = Tracer("host")
    with use_tracer(tracer):
        for name in ("alpha", "beta"):
            store = Store(tmp_path / name)
            store.put("0" * 64, "meta", {"which": name})
    snapshot = tracer.metrics.snapshot()
    keys = [k for k in snapshot if k.startswith("store_puts")]
    assert sorted(keys) == ["store_puts[alpha]", "store_puts[beta]"]
    assert all(snapshot[k]["value"] == 1 for k in keys)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_render_prometheus_histogram_buckets_are_cumulative():
    tracer = Tracer("host")
    hist = tracer.metrics.histogram("latency")
    for value in (0.0005, 0.005, 0.005, 2.0):
        hist.observe(value)
    snap = tracer.metrics.snapshot()["latency"]
    text = render_prometheus([("latency", {"instance": "x"}, snap)])
    validate_prometheus_text(text)
    lines = dict(line.rsplit(" ", 1) for line in text.splitlines()
                 if not line.startswith("#"))
    assert lines['latency_bucket{instance="x",le="0.001"}'] == "1"
    assert lines['latency_bucket{instance="x",le="0.01"}'] == "3"
    assert lines['latency_bucket{instance="x",le="+Inf"}'] == "4"
    assert lines['latency_count{instance="x"}'] == "4"


def test_render_prometheus_rejects_kind_collision():
    with pytest.raises(ValueError, match="both"):
        render_prometheus([
            ("thing", {}, {"kind": "counter", "value": 1}),
            ("thing", {}, {"kind": "gauge", "value": 2}),
        ])


def test_validate_prometheus_text_rejects_malformed():
    validate_prometheus_text(
        "# HELP up help\n# TYPE up gauge\nup 1\n")
    for bad in (
            "",  # no samples
            "up one\n",  # non-numeric value
            "# TYPE up bogus\nup 1\n",  # bad TYPE
            "# TYPE up gauge\n# TYPE up gauge\nup 1\n",  # duplicate TYPE
            '# TYPE up gauge\nup{bad label="x"} 1\n',  # label syntax
    ):
        with pytest.raises(ValueError):
            validate_prometheus_text(bad)


# ----------------------------------------------------------------------
# end to end: the platform ships, merges and serves telemetry
# ----------------------------------------------------------------------
def test_platform_merged_telemetry_end_to_end(tmp_path):
    specs = [small_spec(s) for s in range(4)]
    trace_dir = tmp_path / "traces"
    with ShardCoordinator(str(tmp_path / "platform"), shards=2, workers=1,
                          options=OPTS, trace_dir=str(trace_dir)) as coord:
        with ServiceHTTPServer(coord) as server:
            jobs = [submit_job(server.url, spec_to_dict(s)) for s in specs]
            assert {j["shard"] for j in jobs} == {0, 1}
            finals = [wait_job(server.url, j["id"], timeout=180)
                      for j in jobs]
            assert all(f["state"] == "done" for f in finals)
            corrs = {f["corr"] for f in finals}
            assert all(correlation_job(c) in {j["id"] for j in jobs}
                       for c in corrs)

            # /metrics: valid exposition with platform rollups and
            # per-shard instance labels
            text = fetch_metrics(server.url)
            assert validate_prometheus_text(text) > 0
            assert 'platform_jobs{state="done"} 4' in text
            assert 'instance="shard-0"' in text
            assert 'instance="shard-1"' in text

            # /jobs/<id>/trace: retained flight trace, schema-valid,
            # correlation intact
            body = fetch_trace(server.url, jobs[0]["id"])
            assert body["job"] == jobs[0]["id"]
            validate_trace_records(body["records"])
            assert body["records"]
            assert {r["corr"] for r in body["records"]} \
                == {finals[0]["corr"]}

            # stats carry the queue/latency/telemetry satellites
            stats = coord.stats()
            assert stats["telemetry"]["sources"] >= 2
            assert stats["latency"]["service_job_latency"]["count"] == 4
            assert stats["queue_depth_max"] >= 1

        merged = coord.telemetry_records()
        validate_trace_records(merged)
        srcs = {r["src"] for r in merged}
        assert "coordinator" in srcs
        assert {"shard-0", "shard-1"} <= srcs
        with_corr = {r.get("corr") for r in merged} - {None}
        assert corrs <= with_corr
        coord.stop(drain="inflight", deadline=60)
    # the merged artifact lands on stop and validates standalone
    artifact = trace_dir / "merged-trace.jsonl"
    assert artifact.exists()
    from repro.obs import read_trace_jsonl
    data = read_trace_jsonl(artifact)
    validate_trace_records(data.records)


def test_platform_telemetry_survives_shard_sigkill(tmp_path):
    """A SIGKILLed shard's partial batch is dropped cleanly; counters
    stay monotonic across the respawn and the merge still validates."""
    with ShardCoordinator(str(tmp_path / "platform"), shards=2, workers=1,
                          options=OPTS) as coord:
        job = coord.submit(spec_to_dict(small_spec()))
        coord.wait(job["id"], timeout=180)
        coord.pull_telemetry()
        before = coord.collector.aggregated_metrics()
        before_jobs = sum(snap.get("value", 0)
                          for key, snap in before.items()
                          if key.startswith("service_jobs_done"))
        assert before_jobs >= 1

        old_pid = coord.kill_shard(job["shard"])
        assert old_pid is not None
        # a fresh submission forces respawn + replay on that shard
        job2 = coord.submit(spec_to_dict(small_spec(seed=1)))
        coord.wait(job2["id"], timeout=180)
        deadline = time.time() + 30
        while time.time() < deadline:
            coord.pull_telemetry()
            new_pids = {pid for name, pid in coord.collector.sources()
                        if name == f"shard-{job['shard']}"}
            if len(new_pids) >= 2:
                break
            time.sleep(0.2)
        # the respawned incarnation reports as a new (source, pid) stream
        assert len(new_pids) >= 2 and old_pid in new_pids

        after = coord.collector.aggregated_metrics()
        for name, snap in before.items():
            if snap.get("kind") == "counter":
                assert after.get(name, {}).get("value", 0) \
                    >= snap["value"], name
        merged = coord.telemetry_records()
        validate_trace_records(merged)
        coord.stop(drain="inflight", deadline=60)

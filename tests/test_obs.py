"""Tests for the observability layer (repro.obs).

Covers the tracer core (nesting, cross-thread parentage, the bounded
buffer), metrics, manifests, both exporters with their validators, the
timeline renderers, the CLI surface, and an end-to-end traced 12-pin
synthesis — including the guarantee that results are identical with
tracing on and off.
"""

import json
import threading

import pytest

from repro.cases import chip_sw1
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.obs import (
    OBS_SCHEMA,
    MetricsRegistry,
    TraceData,
    Tracer,
    ascii_timeline,
    case_fingerprint,
    chrome_trace_events,
    config_fingerprint,
    current_tracer,
    format_comparison,
    format_summary,
    incumbent_trajectory,
    obs_event,
    obs_span,
    read_trace_jsonl,
    run_manifest,
    save_manifest,
    use_tracer,
    validate_chrome_trace,
    validate_trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------
def test_span_nesting_and_parentage():
    tracer = Tracer("t")
    with tracer.span("outer") as outer_id:
        with tracer.span("inner") as inner_id:
            tracer.event("ping", detail=1)
    records = tracer.records(with_metrics=False)
    validate_trace_records(records)
    begins = {r["name"]: r for r in records if r["type"] == "span_begin"}
    assert "parent" not in begins["outer"]
    assert begins["inner"]["parent"] == outer_id
    (event,) = [r for r in records if r["type"] == "event"]
    assert event["span"] == inner_id
    assert event["attrs"] == {"detail": 1}


def test_span_ids_and_seq_are_strictly_increasing():
    tracer = Tracer()
    for _ in range(5):
        with tracer.span("s"):
            tracer.event("e")
    records = tracer.records(with_metrics=False)
    seqs = [r["seq"] for r in records]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    ts = [r["t"] for r in records]
    assert ts == sorted(ts)


def test_explicit_parent_links_across_threads():
    tracer = Tracer()
    with tracer.span("submit") as submit_id:

        def member():
            with tracer.span("member", parent=submit_id):
                tracer.event("incumbent", objective=1.0)

        t = threading.Thread(target=member)
        t.start()
        t.join()
    records = tracer.records(with_metrics=False)
    validate_trace_records(records)
    member_begin = next(r for r in records
                        if r["type"] == "span_begin" and r["name"] == "member")
    assert member_begin["parent"] == submit_id
    assert member_begin["tid"] != 0  # recorded from a second thread


def test_concurrent_producers_keep_seq_order():
    tracer = Tracer()

    def worker(n):
        for _ in range(200):
            tracer.event("tick", worker=n)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = tracer.records(with_metrics=False)
    validate_trace_records(records)  # includes the seq-order invariant
    assert len(records) == 800


def test_bounded_buffer_drops_events_but_not_span_ends():
    tracer = Tracer(max_events=10)
    with tracer.span("outer"):
        for _ in range(50):
            tracer.event("flood")
    assert tracer.dropped == 50 - (10 - 1)  # 1 slot went to span_begin
    records = tracer.records(with_metrics=False)
    # span_end lands beyond the cap, but is never dropped
    assert records[-1]["type"] == "span_end"
    validate_trace_records(records)


def test_snapshot_closes_still_open_spans_as_truncated():
    tracer = Tracer()
    release = threading.Event()
    entered = threading.Event()

    def stuck():
        with tracer.span("stuck"):
            entered.set()
            release.wait(5)

    t = threading.Thread(target=stuck)
    t.start()
    entered.wait(5)
    records = tracer.records(with_metrics=False)
    release.set()
    t.join()
    validate_trace_records(records)
    end = next(r for r in records
               if r["type"] == "span_end" and r["name"] == "stuck")
    assert end.get("truncated") is True


def test_use_tracer_installs_and_restores():
    assert current_tracer() is None
    a, b = Tracer("a"), Tracer("b")
    with use_tracer(a):
        assert current_tracer() is a
        with use_tracer(b):
            assert current_tracer() is b
        assert current_tracer() is a
    assert current_tracer() is None


def test_obs_helpers_are_noops_when_disabled():
    assert current_tracer() is None
    obs_event("incumbent", objective=1.0)  # must not raise
    with obs_span("phantom") as span_id:
        assert span_id is None


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def test_metrics_counter_gauge_histogram():
    reg = MetricsRegistry()
    reg.counter("nodes").inc()
    reg.counter("nodes").inc(4)
    reg.gauge("depth").set(7)
    reg.gauge("depth").dec(2)
    h = reg.histogram("seconds")
    for v in (0.005, 0.5, 50.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["nodes"] == {"kind": "counter", "value": 5}
    assert snap["depth"]["value"] == 5
    assert snap["seconds"]["count"] == 3
    assert snap["seconds"]["min"] == 0.005
    assert snap["seconds"]["max"] == 50.0
    assert snap["seconds"]["buckets"]["0.01"] == 1
    assert snap["seconds"]["buckets"]["1.0"] == 1
    assert snap["seconds"]["buckets"]["100.0"] == 1


def test_metrics_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("n")
    with pytest.raises(TypeError, match="is a Counter"):
        reg.gauge("n")


def test_metrics_records_shape():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    (record,) = reg.records()
    assert record == {"type": "metric", "name": "c",
                      "kind": "counter", "value": 1}


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------
def test_run_manifest_fields(tmp_path):
    spec = chip_sw1(BindingPolicy.FIXED)
    options = SynthesisOptions(backend="branch_bound")
    manifest = run_manifest(spec, options, extra={"note": "test"})
    for key in ("schema", "created_unix", "python", "platform", "machine",
                "git", "libraries", "case", "case_fingerprint",
                "config_fingerprint", "backend", "note"):
        assert key in manifest, key
    assert manifest["schema"] == OBS_SCHEMA
    assert manifest["case"] == spec.name
    assert manifest["backend"] == "branch_bound"
    path = save_manifest(manifest, tmp_path / "manifest.json")
    assert json.loads(path.read_text())["case"] == spec.name


def test_fingerprints_are_stable_and_sensitive():
    spec = chip_sw1(BindingPolicy.FIXED)
    assert case_fingerprint(spec) == case_fingerprint(chip_sw1(BindingPolicy.FIXED))
    assert case_fingerprint(spec) != case_fingerprint(chip_sw1(BindingPolicy.UNFIXED))
    a = SynthesisOptions(backend="highs")
    b = SynthesisOptions(backend="backtrack")
    assert config_fingerprint(a) == config_fingerprint(SynthesisOptions(backend="highs"))
    assert config_fingerprint(a) != config_fingerprint(b)


def test_config_fingerprint_ignores_attached_tracer():
    plain = SynthesisOptions()
    traced = SynthesisOptions(trace=Tracer())
    assert config_fingerprint(plain) == config_fingerprint(traced)


# ---------------------------------------------------------------------------
# exporters and validators
# ---------------------------------------------------------------------------
def _small_trace() -> Tracer:
    tracer = Tracer("unit")
    with tracer.span("solve", kind="phase"):
        tracer.event("incumbent", objective=10.0, source="heuristic")
        with tracer.span("presolve"):
            pass
        tracer.event("incumbent", objective=4.0, source="search")
        tracer.event("cut_round", cuts=3)
    tracer.metrics.counter("nodes").inc(7)
    return tracer


def test_jsonl_roundtrip_with_manifest(tmp_path):
    tracer = _small_trace()
    manifest = run_manifest(options=SynthesisOptions())
    path = write_trace_jsonl(tracer, tmp_path / "trace.jsonl",
                             manifest=manifest)
    data = read_trace_jsonl(path)
    assert data.header["schema"] == OBS_SCHEMA
    assert data.header["name"] == "unit"
    assert data.manifest["config_fingerprint"] == manifest["config_fingerprint"]
    assert [r["name"] for r in data.by_type("span_begin")] == ["solve", "presolve"]
    assert len(data.events_named("incumbent")) == 2
    (metric,) = data.by_type("metric")
    assert metric["name"] == "nodes" and metric["value"] == 7
    validate_trace_records(data.records)


def test_read_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "header", "schema": "repro-obs-v99"}\n')
    with pytest.raises(ValueError, match="unsupported trace schema"):
        read_trace_jsonl(path)


def test_validator_rejects_broken_streams():
    records = _small_trace().records(with_metrics=False)
    validate_trace_records(records)

    shuffled = [dict(r) for r in records]
    shuffled[0]["seq"], shuffled[1]["seq"] = shuffled[1]["seq"], shuffled[0]["seq"]
    with pytest.raises(ValueError, match="seq"):
        validate_trace_records(shuffled)

    unclosed = [dict(r) for r in records
                if not (r["type"] == "span_end" and r["name"] == "solve")]
    with pytest.raises(ValueError, match="never closed"):
        validate_trace_records(unclosed)

    orphan = [dict(r) for r in records]
    orphan[1] = dict(orphan[1])
    for r in orphan:
        if r["type"] == "span_begin" and r["name"] == "presolve":
            r["parent"] = 99999
    with pytest.raises(ValueError, match="never begun"):
        validate_trace_records(orphan)


def test_chrome_trace_export_and_validation(tmp_path):
    tracer = _small_trace()
    path = write_chrome_trace(tracer, tmp_path / "trace.json",
                              manifest=run_manifest())
    payload = json.loads(path.read_text())
    validate_chrome_trace(payload)
    assert payload["otherData"]["schema"] == OBS_SCHEMA
    assert "git" in payload["otherData"]["manifest"]
    phases = [ev["ph"] for ev in payload["traceEvents"]]
    assert phases.count("B") == phases.count("E") == 2
    assert "i" in phases and "C" in phases
    instant = next(ev for ev in payload["traceEvents"] if ev["ph"] == "i")
    assert instant["s"] == "t"


def test_chrome_validator_rejects_unbalanced():
    events = chrome_trace_events(_small_trace().records())
    unbalanced = [ev for ev in events if ev["ph"] != "E"]
    with pytest.raises(ValueError, match="unbalanced"):
        validate_chrome_trace({"traceEvents": unbalanced})
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"foo": []})


def test_format_summary_and_comparison(tmp_path):
    tracer = _small_trace()
    path = write_trace_jsonl(tracer, tmp_path / "a.jsonl",
                             manifest=run_manifest(options=SynthesisOptions()))
    data = read_trace_jsonl(path)
    text = format_summary(data)
    assert "trace 'unit'" in text
    assert "solve" in text and "presolve" in text
    assert "incumbent x2" in text
    assert "objective=4.0" in text
    assert "nodes" in text

    diff = format_comparison(data, data)
    assert "config_fingerprint" in diff and "==" in diff
    assert "solve" in diff


# ---------------------------------------------------------------------------
# timelines
# ---------------------------------------------------------------------------
def test_incumbent_trajectory_and_ascii_timeline():
    data = TraceData(records=_small_trace().records())
    points = incumbent_trajectory(data)
    assert [p[1] for p in points] == [10.0, 4.0]
    assert points[0][2] == "heuristic" and points[1][2] == "search"
    chart = ascii_timeline(data)
    assert chart.count("*") == 2
    assert "10.000" in chart and "4.000" in chart
    assert "'c' = cut round" in chart


def test_ascii_timeline_without_incumbents():
    assert "no incumbent" in ascii_timeline(TraceData())


def test_svg_timeline_renders():
    from repro.render import render_incumbent_timeline

    data = TraceData(header={"name": "unit"},
                     records=_small_trace().records())
    svg = render_incumbent_timeline(data)
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    assert "incumbents: unit" in svg
    assert render_incumbent_timeline(TraceData()).count("<circle") == 0


# ---------------------------------------------------------------------------
# end-to-end: traced synthesis
# ---------------------------------------------------------------------------
def test_traced_synthesis_records_full_pipeline(tmp_path):
    spec = chip_sw1(BindingPolicy.FIXED)  # the paper's 12-pin case
    tracer = Tracer(spec.name)
    options = SynthesisOptions(backend="branch_bound", trace=tracer)
    result = synthesize(spec, options)
    assert result.status.solved
    assert current_tracer() is None  # uninstalled afterwards

    records = tracer.records()
    validate_trace_records(records)

    begun = {}
    for r in records:
        if r["type"] == "span_begin":
            begun.setdefault(r["name"], []).append(r)
    for phase in ("synthesize", "catalog", "build", "heuristic", "solve",
                  "extract", "analyze", "pressure", "verify"):
        assert phase in begun, phase
    (root,) = begun["synthesize"]
    assert "parent" not in root
    for phase in ("catalog", "build", "solve", "pressure"):
        # the main pipeline instance of each phase hangs off the root
        # (the pressure ILP opens its own nested "solve")
        assert any(r["parent"] == root["span"] for r in begun[phase]), phase

    incumbents = [r for r in records
                  if r["type"] == "event" and r["name"] == "incumbent"]
    assert incumbents, "a solved run must report at least one incumbent"
    # the final objective was announced as an incumbent at some point
    # (other incumbents belong to the nested pressure clique-cover ILP)
    objectives = [r["attrs"]["objective"] for r in incumbents]
    assert any(obj == pytest.approx(result.objective) for obj in objectives)

    metric_names = {r["name"] for r in records if r["type"] == "metric"}
    assert {"synthesize_runs", "lp_resolves",
            "lp_iterations_per_resolve"} <= metric_names

    # both exporters accept the real stream
    jsonl = write_trace_jsonl(tracer, tmp_path / "run.jsonl",
                              manifest=run_manifest(spec, options))
    validate_trace_records(read_trace_jsonl(jsonl).records)
    chrome = write_chrome_trace(tracer, tmp_path / "run.json")
    validate_chrome_trace(json.loads(chrome.read_text()))


def test_tracing_does_not_change_results():
    spec = chip_sw1(BindingPolicy.FIXED)
    plain = synthesize(spec, SynthesisOptions(backend="branch_bound"))
    traced = synthesize(spec, SynthesisOptions(backend="branch_bound",
                                               trace=Tracer()))
    assert traced.objective == plain.objective
    assert traced.binding == plain.binding
    assert traced.status == plain.status


def test_traced_portfolio_links_members_to_race(tmp_path):
    spec = chip_sw1(BindingPolicy.FIXED)
    tracer = Tracer(spec.name)
    result = synthesize(spec, SynthesisOptions(backend="portfolio",
                                               trace=tracer))
    assert result.status.solved
    records = tracer.records()
    validate_trace_records(records)
    members = [r for r in records if r["type"] == "span_begin"
               and r["name"].startswith("portfolio:")]
    assert members
    begun = {r["span"] for r in records if r["type"] == "span_begin"}
    for m in members:
        assert m["parent"] in begun
    winners = [r for r in records
               if r["type"] == "event" and r["name"] == "race_winner"]
    assert winners and "member" in winners[-1]["attrs"]


# ---------------------------------------------------------------------------
# batch integration
# ---------------------------------------------------------------------------
def test_batch_trace_dir_and_progress(tmp_path):
    from repro.cases import generate_case
    from repro.experiments.batch import run_batch

    specs = [generate_case(seed=5, switch_size=8, n_flows=3, n_inlets=2),
             generate_case(seed=7, switch_size=8, n_flows=3, n_inlets=2)]
    seen = []
    parent = Tracer("batch")
    with use_tracer(parent):
        batch = run_batch(specs, SynthesisOptions(),
                          trace_dir=tmp_path / "traces",
                          on_progress=lambda done, total, row:
                              seen.append((done, total, row["case"])))
    assert len(batch.rows) == 2
    assert seen == [(1, 2, specs[0].name), (2, 2, specs[1].name)]

    artifacts = sorted((tmp_path / "traces").glob("*.jsonl"))
    assert len(artifacts) == 2
    data = read_trace_jsonl(artifacts[0])
    validate_trace_records(data.records)
    assert data.manifest["batch_index"] == 0
    assert data.events_named("synthesis_result")

    parent_records = parent.records()
    assert len([r for r in parent_records
                if r["type"] == "event" and r["name"] == "batch_row"]) == 2
    gauges = {r["name"]: r for r in parent_records if r["type"] == "metric"}
    assert gauges["batch_rows_done"]["value"] == 2
    assert gauges["batch_queue_depth"]["value"] == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_trace_and_obs_subcommands(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "run"
    rc = main(["synthesize", "chip_sw1", "--policy", "fixed",
               "--backend", "branch_bound",
               "--trace", str(trace), "--trace-format", "both"])
    assert rc == 0
    jsonl = trace.with_suffix(".jsonl")
    chrome = trace.with_suffix(".chrome.json")
    assert jsonl.exists() and chrome.exists()
    validate_chrome_trace(json.loads(chrome.read_text()))
    capsys.readouterr()

    assert main(["obs", "summarize", str(jsonl), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "schema valid" in out and "spans:" in out

    assert main(["obs", "compare", str(jsonl), str(jsonl)]) == 0
    assert "config_fingerprint" in capsys.readouterr().out

    svg = tmp_path / "timeline.svg"
    assert main(["obs", "timeline", str(jsonl), "--svg", str(svg)]) == 0
    assert "incumbent" in capsys.readouterr().out
    assert svg.read_text().startswith("<svg")

"""Hypothesis properties of the expression algebra.

Algebraic laws evaluated pointwise: for random expressions E1, E2 and
random assignments σ, the library's symbolic operations must agree with
float arithmetic — value(E1 ∘ E2, σ) == value(E1, σ) ∘ value(E2, σ).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import Model, quicksum

N_VARS = 4


def _fresh():
    m = Model("prop")
    return m, [m.add_binary(f"x{i}") for i in range(N_VARS)]


coeffs = st.lists(
    st.integers(min_value=-5, max_value=5), min_size=N_VARS, max_size=N_VARS
)
consts = st.integers(min_value=-10, max_value=10)
assignments = st.lists(
    st.sampled_from([0.0, 1.0]), min_size=N_VARS, max_size=N_VARS
)


def _lin(xs, cs, k):
    return quicksum(c * x for c, x in zip(cs, xs)) + k


@settings(max_examples=60, deadline=None)
@given(coeffs, consts, coeffs, consts, assignments)
def test_addition_is_pointwise(c1, k1, c2, k2, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    e1, e2 = _lin(xs, c1, k1), _lin(xs, c2, k2)
    assert (e1 + e2).value(sigma) == pytest.approx(
        e1.value(sigma) + e2.value(sigma))


@settings(max_examples=60, deadline=None)
@given(coeffs, consts, coeffs, consts, assignments)
def test_subtraction_is_pointwise(c1, k1, c2, k2, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    e1, e2 = _lin(xs, c1, k1), _lin(xs, c2, k2)
    assert (e1 - e2).value(sigma) == pytest.approx(
        e1.value(sigma) - e2.value(sigma))


@settings(max_examples=60, deadline=None)
@given(coeffs, consts, coeffs, consts, assignments)
def test_product_is_pointwise(c1, k1, c2, k2, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    e1, e2 = _lin(xs, c1, k1), _lin(xs, c2, k2)
    assert (e1 * e2).value(sigma) == pytest.approx(
        e1.value(sigma) * e2.value(sigma))


@settings(max_examples=60, deadline=None)
@given(coeffs, consts, st.integers(min_value=-5, max_value=5), assignments)
def test_scalar_multiplication_is_pointwise(c1, k1, s, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    e = _lin(xs, c1, k1)
    assert (s * e).value(sigma) == pytest.approx(s * e.value(sigma))
    assert (e * s).value(sigma) == pytest.approx(s * e.value(sigma))


@settings(max_examples=40, deadline=None)
@given(coeffs, consts, assignments)
def test_bounds_contain_every_binary_evaluation(c1, k1, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    e = _lin(xs, c1, k1)
    lo, hi = e.bounds()
    assert lo - 1e-9 <= e.value(sigma) <= hi + 1e-9


@settings(max_examples=40, deadline=None)
@given(coeffs, consts, coeffs, consts, assignments)
def test_quicksum_matches_builtin_sum(c1, k1, c2, k2, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    parts = [c * x for c, x in zip(c1, xs)] + [k1] + \
            [c * x for c, x in zip(c2, xs)] + [k2]
    manual = float(k1 + k2)
    for c, v in list(zip(c1, values)) + list(zip(c2, values)):
        manual += c * v
    assert quicksum(parts).value(sigma) == pytest.approx(manual)


@settings(max_examples=30, deadline=None)
@given(coeffs, consts, assignments)
def test_constraint_satisfaction_matches_arithmetic(c1, k1, values):
    m, xs = _fresh()
    sigma = dict(zip(xs, values))
    e = _lin(xs, c1, k1)
    val = e.value(sigma)
    assert (e <= 0).satisfied(sigma) == (val <= 1e-6)
    assert (e >= 0).satisfied(sigma) == (val >= -1e-6)
    assert (e == 0).satisfied(sigma) == (abs(val) <= 1e-6)

"""Tests for candidate path enumeration (repro.switches.paths)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SwitchModelError
from repro.switches import CrossbarSwitch, enumerate_paths
from repro.switches.base import segment_key


@pytest.fixture(scope="module")
def sw8():
    return CrossbarSwitch(8)


@pytest.fixture(scope="module")
def catalog8(sw8):
    return enumerate_paths(sw8)


def test_every_ordered_pin_pair_covered(sw8, catalog8):
    for a in sw8.pins:
        for b in sw8.pins:
            if a == b:
                continue
            assert catalog8.between(a, b), f"no path {a}->{b}"


def test_paths_are_shortest(sw8, catalog8):
    import networkx as nx
    for a in sw8.pins:
        dist = nx.single_source_dijkstra_path_length(sw8.graph, a, weight="length")
        for b in sw8.pins:
            if a == b:
                continue
            for p in catalog8.between(a, b):
                assert p.length == pytest.approx(dist[b])


def test_path_structure(sw8, catalog8):
    for p in catalog8:
        assert p.vertices[0] == p.source_pin
        assert p.vertices[-1] == p.target_pin
        # consecutive vertices joined by actual segments
        for a, b in zip(p.vertices, p.vertices[1:]):
            assert segment_key(a, b) in sw8.segments
        # nodes exclude pins
        assert all(not sw8.is_pin(n) for n in p.nodes)
        # segment set consistent with the vertex sequence
        assert p.segments == frozenset(
            segment_key(a, b) for a, b in zip(p.vertices, p.vertices[1:])
        )
        # no intermediate pins
        assert all(not sw8.is_pin(v) for v in p.vertices[1:-1])


def test_path_length_consistency(sw8, catalog8):
    for p in catalog8:
        assert p.length == pytest.approx(
            sum(sw8.segments[k].length for k in p.segments)
        )


def test_unique_indices(catalog8):
    indices = [p.index for p in catalog8]
    assert len(set(indices)) == len(indices)


def test_major_nodes_subset(sw8, catalog8):
    for p in catalog8:
        majors = p.major_nodes(sw8)
        assert majors <= p.nodes
        assert all(sw8.kinds[n].value in ("center", "arm") for n in majors)


def test_uses_node_and_segment(sw8, catalog8):
    p = catalog8.between("T1", "B1")[0]
    assert p.uses_node("TL") or p.uses_node("L") or p.uses_node("C")
    a, b = next(iter(p.segments))
    assert p.uses_segment(a, b) and p.uses_segment(b, a)


def test_slack_enumerates_more_paths(sw8):
    strict = enumerate_paths(sw8)
    slack = enumerate_paths(sw8, slack=2.0)
    assert len(slack) > len(strict)
    # slack paths stay within budget
    for a in sw8.pins:
        for b in sw8.pins:
            if a == b:
                continue
            shortest = strict.shortest_length(a, b)
            for p in slack.between(a, b):
                assert p.length <= shortest + 2.0 + 1e-9
                assert len(set(p.vertices)) == len(p.vertices)  # simple


def test_slack_paths_sorted_shortest_first(sw8):
    cat = enumerate_paths(sw8, slack=2.0)
    for a in sw8.pins:
        for b in sw8.pins:
            if a == b:
                continue
            lengths = [p.length for p in cat.between(a, b)]
            assert lengths == sorted(lengths)


def test_max_paths_per_pair(sw8):
    capped = enumerate_paths(sw8, slack=2.0, max_paths_per_pair=1)
    for a in sw8.pins:
        for b in sw8.pins:
            if a == b:
                continue
            paths = capped.between(a, b)
            assert len(paths) == 1
            # the kept path is a shortest one
            assert paths[0].length == pytest.approx(
                enumerate_paths(sw8).shortest_length(a, b)
            )


def test_pin_restriction(sw8):
    cat = enumerate_paths(sw8, pins=["T1", "B1"])
    starts = {p.source_pin for p in cat}
    ends = {p.target_pin for p in cat}
    assert starts == {"T1", "B1"}
    assert ends == {"T1", "B1"}


def test_invalid_inputs(sw8):
    with pytest.raises(SwitchModelError):
        enumerate_paths(sw8, slack=-1.0)
    with pytest.raises(SwitchModelError):
        enumerate_paths(sw8, pins=["C"])  # a node, not a pin
    with pytest.raises(SwitchModelError):
        enumerate_paths(sw8).shortest_length("T1", "T1")


def test_starting_and_ending_at(catalog8):
    starting = catalog8.starting_at("T1")
    assert starting and all(p.source_pin == "T1" for p in starting)
    ending = catalog8.ending_at("B2")
    assert ending and all(p.target_pin == "B2" for p in ending)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([8, 12]), st.floats(min_value=0.0, max_value=3.0))
def test_enumeration_invariants_property(n_pins, slack):
    """Property: any slack, any size — paths are simple, within budget,
    and cover every ordered pin pair."""
    sw = CrossbarSwitch(n_pins)
    cat = enumerate_paths(sw, slack=slack)
    shortest = enumerate_paths(sw)
    for a in sw.pins:
        for b in sw.pins:
            if a == b:
                continue
            base = shortest.shortest_length(a, b)
            paths = cat.between(a, b)
            assert paths
            for p in paths:
                assert p.length <= base + slack + 1e-6
                assert len(set(p.vertices)) == len(p.vertices)


# ---------------------------------------------------------------------------
# memoization
# ---------------------------------------------------------------------------

def test_cache_hits_on_equal_structure():
    from repro.switches import clear_path_cache, path_cache_info

    clear_path_cache()
    first = enumerate_paths(CrossbarSwitch(8))
    second = enumerate_paths(CrossbarSwitch(8))   # fresh instance, same structure
    info = path_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # cached Path objects are shared, catalogs are fresh per switch
    assert second.paths[0] is first.paths[0]
    assert second is not first
    assert [str(p) for p in second] == [str(p) for p in first]
    clear_path_cache()


def test_cache_distinguishes_parameters(sw8):
    from repro.switches import clear_path_cache, path_cache_info

    clear_path_cache()
    enumerate_paths(sw8)
    enumerate_paths(sw8, slack=2.0)
    enumerate_paths(sw8, max_paths_per_pair=1)
    enumerate_paths(sw8, pins=sw8.pins[:4])
    assert path_cache_info()["misses"] == 4
    assert path_cache_info()["hits"] == 0
    clear_path_cache()


def test_cache_distinguishes_structures():
    from repro.switches import CrossbarSwitch as CB, clear_path_cache, path_cache_info

    clear_path_cache()
    enumerate_paths(CB(8))
    enumerate_paths(CB(12))
    assert path_cache_info()["misses"] == 2
    clear_path_cache()


def test_structure_key_stable_across_instances():
    a, b = CrossbarSwitch(8), CrossbarSwitch(8)
    assert a is not b
    assert a.structure_key() == b.structure_key()
    assert a.structure_key() != CrossbarSwitch(12).structure_key()


def test_cached_catalog_binds_requesting_switch():
    from repro.switches import clear_path_cache

    clear_path_cache()
    enumerate_paths(CrossbarSwitch(8))
    sw = CrossbarSwitch(8)
    catalog = enumerate_paths(sw)
    assert catalog.switch is sw
    clear_path_cache()

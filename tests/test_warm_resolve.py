"""Warm starts, re-solve contexts and the model result memo.

The contract under test: none of the incremental-solve machinery may
change any reported status or objective — a context-reused or
warm-started solve must be indistinguishable (modulo runtime) from a
cold one.
"""

from __future__ import annotations

import time

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.core.builder import SynthesisModelBuilder
from repro.core.heuristic import model_assignment, synthesize_greedy
from repro.core.synthesizer import build_catalog
from repro.analysis.sensitivity import weight_sweep
from repro.opt import Model, SolveContext, SolveStatus, WarmStart
from repro.opt.solvers.backtrack import BacktrackBackend
from repro.opt.solvers.branch_bound import BranchBoundBackend

ALL_POLICIES = [BindingPolicy.FIXED, BindingPolicy.CLOCKWISE,
                BindingPolicy.UNFIXED]


def _case(policy: BindingPolicy, seed: int = 11):
    return generate_case(seed=seed, switch_size=8, n_flows=3, binding=policy)


def _fingerprint(result):
    """Everything the paper reports, excluding wall-clock noise."""
    return (
        result.status,
        result.objective,
        result.binding,
        {fid: (p.source_pin, p.target_pin, tuple(sorted(p.segments)))
         for fid, p in result.flow_paths.items()},
        [tuple(group) for group in result.flow_sets],
        tuple(sorted(result.used_segments)),
    )


@pytest.mark.parametrize("policy", ALL_POLICIES,
                         ids=[p.value for p in ALL_POLICIES])
def test_context_reuse_is_identical_to_cold_solve(policy):
    options = SynthesisOptions(time_limit=120)
    cold = synthesize(_case(policy), options)
    context = SolveContext()
    first = synthesize(_case(policy), options, context=context)
    second = synthesize(_case(policy), options, context=context)
    assert _fingerprint(first) == _fingerprint(cold)
    assert _fingerprint(second) == _fingerprint(cold)
    assert context.stats["model_hits"] == 1
    # The unchanged model + backend re-solve comes from the result memo.
    assert second.counters.get("resolve_cache_hit") == 1


def test_weight_sweep_with_context_matches_cold_sweep():
    spec = _case(BindingPolicy.FIXED, seed=3)
    weights = ((1.0, 100.0), (1.0, 1.0), (100.0, 1.0))
    options = SynthesisOptions(time_limit=120)
    context = SolveContext()
    shared = weight_sweep(spec, weights, options, context=context)
    # Cold reference: every point solved from scratch, no sharing.
    from repro.analysis.sensitivity import _respec
    cold_points = [synthesize(_respec(spec, a, b), options) for a, b in weights]
    assert [(p.alpha, p.beta, p.num_sets,
             None if p.length_mm is None else round(p.length_mm, 6))
            for p in shared.points] == \
        [(a, b, r.num_flow_sets, round(r.flow_channel_length, 6))
         for (a, b), r in zip(weights, cold_points)]
    # Later points reused the structurally identical model.
    assert context.stats["model_hits"] == len(weights) - 1


def test_model_result_memo_hits_on_unchanged_resolve():
    spec = _case(BindingPolicy.FIXED, seed=11)
    catalog = build_catalog(spec, SynthesisOptions())
    built = SynthesisModelBuilder(spec, catalog).build()
    first = built.model.solve(time_limit=60)
    second = built.model.solve(time_limit=60)
    assert first.status is SolveStatus.OPTIMAL
    assert second.status is SolveStatus.OPTIMAL
    assert second.counters.get("resolve_cache_hit") == 1
    assert second.objective == first.objective
    assert {v.name: val for v, val in second.values.items()} == \
        {v.name: val for v, val in first.values.items()}
    # The memo is invalidated by any structural change.
    built.model.set_objective(2 * built.n_sets_expr + built.length_expr, "min")
    third = built.model.solve(time_limit=60)
    assert "resolve_cache_hit" not in third.counters


def test_heuristic_incumbent_does_not_change_branch_bound_optimum():
    spec = _case(BindingPolicy.FIXED, seed=11)
    options_warm = SynthesisOptions(time_limit=120, backend="branch_bound",
                                    heuristic_incumbent=True)
    options_cold = SynthesisOptions(time_limit=120, backend="branch_bound",
                                    heuristic_incumbent=False)
    warm = synthesize(spec, options_warm)
    cold = synthesize(spec, options_cold)
    assert warm.status.solved and cold.status.solved
    assert warm.objective == pytest.approx(cold.objective)
    assert "incumbent_seeded" not in cold.counters


def test_model_assignment_maps_greedy_onto_built_model():
    spec = _case(BindingPolicy.FIXED, seed=11)
    catalog = build_catalog(spec, SynthesisOptions())
    built = SynthesisModelBuilder(spec, catalog).build()
    greedy = synthesize_greedy(spec, verify=False, pressure_sharing=False)
    assert greedy.status.solved
    assignment = model_assignment(built, greedy)
    if assignment is None:
        pytest.skip("greedy route not present in the path catalog")
    assert set(assignment) == set(built.model.variables)
    assert built.model.check_assignment(assignment, tol=1e-6) == []


def test_warm_start_rejected_when_infeasible_or_incomplete():
    m = Model("guard")
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add_constr(x + y == 1)
    m.set_objective(x, "min")
    # Violates the equality: silently dropped.
    assert m._build_warm_start({x: 1.0, y: 1.0}, None) is None
    # Incomplete: silently dropped.
    assert m._build_warm_start({x: 1.0}, None) is None
    ws = m._build_warm_start({x: 0.0, y: 1.0}, None)
    assert isinstance(ws, WarmStart)
    assert ws.objective == 0.0


def test_portfolio_returns_warm_start_proven_at_root():
    m = Model("provable")
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add_constr(x + y >= 1)
    m.set_objective(x + y, "min")
    sol = m.solve(backend="portfolio", warm_start={x: 1.0, y: 0.0},
                  warm_source="heuristic")
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(1.0)
    # The warm incumbent matched the root bound: no race was spawned.
    assert sol.solver == "portfolio(warm)"
    assert sol.counters["nodes"] == 0
    assert sol.counters["incumbent_seeded"] == 1


def test_branch_bound_seeds_warm_incumbent():
    m = Model("seeded")
    xs = [m.add_binary(f"x{i}") for i in range(6)]
    for a, b in zip(xs, xs[1:]):
        m.add_constr(a + b <= 1)
    m.set_objective(sum(x * 1.0 for x in xs), "max")
    greedy = {x: (1.0 if i % 2 == 0 else 0.0) for i, x in enumerate(xs)}
    sol = m.solve(backend="branch_bound", warm_start=greedy,
                  warm_source="heuristic")
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(3.0)
    assert sol.counters.get("incumbent_seeded") == 1
    assert "heuristic" in sol.message


@pytest.mark.parametrize("backend_cls", [BranchBoundBackend, BacktrackBackend])
def test_time_limit_clock_covers_presolve(backend_cls):
    """The deadline starts before presolve, so a nearly-expired limit
    must come back as TIME_LIMIT quickly instead of running a full
    search after presolve already overspent the budget."""
    m = Model("deadline")
    xs = [m.add_binary(f"x{i}") for i in range(40)]
    for i, a in enumerate(xs):
        for b in xs[i + 1:i + 4]:
            m.add_constr(a + b <= 1)
    m.set_objective(sum(x * (1.0 + 0.01 * i) for i, x in enumerate(xs)), "max")
    start = time.perf_counter()
    sol = backend_cls().solve(m, time_limit=1e-6)
    elapsed = time.perf_counter() - start
    assert sol.status in (SolveStatus.TIME_LIMIT, SolveStatus.FEASIBLE)
    assert elapsed < 5.0

"""Property-based tests: synthesis invariants over random generated cases.

Uses the artificial case generator and re-checks every invariant with
the independent verifier plus a few oracle comparisons (exact vs greedy,
exact vs backtracking solver on the same model).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cases import generate_case
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    SynthesisStatus,
    synthesize,
    synthesize_greedy,
    verify_result,
)
from repro.core.verify import verify_contamination_freedom, verify_schedule

FAST = SynthesisOptions(time_limit=30)

case_params = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=10_000),
    "n_flows": st.integers(min_value=1, max_value=3),
    "n_inlets": st.integers(min_value=1, max_value=2),
    "n_conflicts": st.integers(min_value=0, max_value=2),
    "binding": st.sampled_from([BindingPolicy.FIXED]),
})


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case_params)
def test_synthesis_invariants_random_fixed_cases(params):
    """Any solved random fixed-binding case passes full verification;
    infeasible outcomes are accepted (random fixed maps can interleave
    conflicting flows)."""
    spec = generate_case(switch_size=8, **params)
    res = synthesize(spec, FAST)
    if res.status.solved:
        verify_result(res)
        # sets never exceed flows; L never exceeds the full switch
        assert 1 <= res.num_flow_sets <= len(spec.flows)
        assert res.flow_channel_length <= spec.switch.total_length() + 1e-9
    else:
        assert res.status in (SynthesisStatus.NO_SOLUTION,
                              SynthesisStatus.TIMEOUT)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_greedy_feasible_implies_exact_feasible(seed):
    """If the greedy heuristic finds a solution, the exact model must
    too, and at an objective at least as good."""
    spec_g = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                           n_conflicts=1, binding=BindingPolicy.FIXED)
    greedy = synthesize_greedy(spec_g)
    if not greedy.status.solved:
        return
    spec_e = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                           n_conflicts=1, binding=BindingPolicy.FIXED)
    exact = synthesize(spec_e, FAST)
    assert exact.status.solved
    greedy_obj = (spec_g.alpha * greedy.num_flow_sets
                  + spec_g.beta * greedy.flow_channel_length)
    assert exact.objective <= greedy_obj + 1e-6


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_unfixed_dominates_fixed(seed):
    """The unfixed policy explores a superset of the fixed policy's
    solutions, so its optimum is never worse."""
    fixed = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                          n_conflicts=0, binding=BindingPolicy.FIXED)
    unfixed = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                            n_conflicts=0, binding=BindingPolicy.UNFIXED)
    res_f = synthesize(fixed, FAST)
    res_u = synthesize(unfixed, FAST)
    assert res_u.status.solved
    if res_f.status.solved:
        assert res_u.objective <= res_f.objective + 1e-6


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_removing_conflicts_never_hurts(seed):
    """Dropping all conflict constraints can only improve the optimum."""
    with_c = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                           n_conflicts=2, binding=BindingPolicy.FIXED)
    without_c = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                              n_conflicts=2, binding=BindingPolicy.FIXED,
                              conflicts=set())
    res_w = synthesize(with_c, FAST)
    res_o = synthesize(without_c, FAST)
    assert res_o.status.solved
    if res_w.status.solved:
        assert res_o.objective <= res_w.objective + 1e-6


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=3_000))
def test_larger_switch_never_worse_runtime_feasibility(seed):
    """§4.2 observation: the same case solves on both the 8-pin and the
    12-pin switch; feasibility carries over to the larger model."""
    small = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                          n_conflicts=1, binding=BindingPolicy.UNFIXED)
    large = generate_case(seed=seed, switch_size=12, n_flows=2, n_inlets=2,
                          n_conflicts=1, binding=BindingPolicy.UNFIXED)
    res_s = synthesize(small, FAST)
    res_l = synthesize(large, FAST)
    if res_s.status.solved:
        assert res_l.status.solved

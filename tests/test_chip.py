"""Tests for chip-level co-layout (repro.chip)."""

import pytest

from repro.chip import (
    ChipLayout,
    DEFAULT_FOOTPRINTS,
    ModuleShape,
    chip_layout,
    default_shape,
    infer_kind,
    shapes_for,
)
from repro.core import BindingPolicy, Flow, SwitchSpec, SynthesisOptions, synthesize
from repro.errors import ReproError
from repro.switches import CrossbarSwitch


# ----------------------------------------------------------------------
# module shapes
# ----------------------------------------------------------------------
def test_kind_inference():
    assert infer_kind("M1") == "mixer"
    assert infer_kind("mixer_3") == "mixer"
    assert infer_kind("RC2") == "chamber"
    assert infer_kind("i_10") == "inlet"
    assert infer_kind("o_7") == "outlet"
    assert infer_kind("p_c1") == "outlet"
    assert infer_kind("waste") == "outlet"
    assert infer_kind("somethingelse") == "generic"


def test_default_shapes_positive():
    for kind, (w, h) in DEFAULT_FOOTPRINTS.items():
        assert w > 0 and h > 0
    shape = default_shape("M1")
    assert shape.kind == "mixer"
    assert shape.area == pytest.approx(shape.width * shape.height)


def test_shape_validation():
    with pytest.raises(ReproError):
        ModuleShape("bad", 0, 1)


def test_shapes_for_overrides():
    shapes = shapes_for(["M1", "RC1"], {"M1": ModuleShape("M1", 5, 5)})
    assert shapes["M1"].width == 5
    assert shapes["RC1"].kind == "chamber"
    with pytest.raises(ReproError):
        shapes_for(["M1"], {"zzz": ModuleShape("zzz", 1, 1)})


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def solved():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i_1", "i_2", "o_1", "o_2", "M1"],
        flows=[Flow(1, "i_1", "o_1"), Flow(2, "i_2", "o_2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i_1": "T1", "o_1": "B1", "i_2": "T2",
                       "o_2": "B2", "M1": "L1"},
    )
    res = synthesize(spec, SynthesisOptions(time_limit=60))
    assert res.status.solved
    return res


def test_layout_places_every_module(solved):
    layout = chip_layout(solved)
    assert set(layout.modules) == set(solved.spec.modules)


def test_no_module_overlaps(solved):
    layout = chip_layout(solved)
    assert layout.overlapping_modules() == []


def test_connections_end_at_pins(solved):
    layout = chip_layout(solved)
    switch = solved.spec.switch
    for conn in layout.connections:
        assert conn.points[-1] == switch.coords[conn.pin]
        assert conn.points[0] == layout.modules[conn.module].port
        assert conn.length > 0


def test_modules_outside_the_switch(solved):
    layout = chip_layout(solved)
    lo, hi = solved.spec.switch.bounding_box()
    for placed in layout.modules.values():
        inside_x = lo.x < placed.center.x < hi.x
        inside_y = lo.y < placed.center.y < hi.y
        assert not (inside_x and inside_y)


def test_chip_area_covers_switch(solved):
    layout = chip_layout(solved)
    lo, hi = solved.spec.switch.bounding_box()
    assert layout.chip_area >= (hi.x - lo.x) * (hi.y - lo.y)
    assert "mm^2" in layout.summary()


def test_unsolved_rejected(solved):
    import copy
    from repro.core import SynthesisStatus
    bad = copy.copy(solved)
    bad.status = SynthesisStatus.NO_SOLUTION
    with pytest.raises(ReproError):
        chip_layout(bad)


def test_ordered_binding_avoids_crossings():
    """When modules bind in placement order around the switch (the
    clockwise policy's contract) the chip connections nest cleanly;
    scrambling the same binding forces crossings."""
    modules = ["a", "b", "c", "d"]
    flows = [Flow(1, "a", "b"), Flow(2, "c", "d")]

    def run(binding_map):
        spec = SwitchSpec(
            switch=CrossbarSwitch(8),
            modules=modules,
            flows=[Flow(1, "a", "b"), Flow(2, "c", "d")],
            binding=BindingPolicy.FIXED,
            fixed_binding=binding_map,
        )
        res = synthesize(spec, SynthesisOptions(time_limit=60))
        assert res.status.solved
        return chip_layout(res)

    ordered = run({"a": "T1", "b": "T2", "c": "B2", "d": "B1"})
    scrambled = run({"a": "T1", "b": "B2", "c": "T2", "d": "B1"})
    assert ordered.crossings() <= scrambled.crossings()


def test_custom_shapes_respected(solved):
    big = ModuleShape("M1", 6.0, 6.0, "mixer")
    layout = chip_layout(solved, shapes={"M1": big})
    assert layout.modules["M1"].shape.width == 6.0
    assert layout.overlapping_modules() == []

"""End-to-end chaos test: injected faults + SIGKILL + restart.

Drives ``benchmarks/chaos_soak.py`` — the same script CI's chaos-soak
job runs over 50 specs — at a size suited to the test suite, then
independently re-verifies its acceptance criteria from the artifacts:
every job terminal exactly once in a schema-valid journal, the circuit
breaker demonstrably opened and recovered, and the full story visible
in a schema-valid ``repro-obs-v1`` trace.

``REPRO_CHAOS_SPECS`` scales the run (CI soak uses 50).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs import read_trace_jsonl, validate_trace_records
from repro.service import TERMINAL_STATES, replay_journal, validate_journal

REPO = Path(__file__).resolve().parent.parent
N_SPECS = int(os.environ.get("REPRO_CHAOS_SPECS", "8"))


def test_chaos_kill_restart_completes_every_job_exactly_once(tmp_path):
    out = tmp_path / "chaos"
    proc = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "chaos_soak.py"),
         "--specs", str(N_SPECS), "--out", str(out)],
        capture_output=True, text=True, timeout=900,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})
    assert proc.returncode == 0, \
        f"chaos soak failed:\n{proc.stdout}\n{proc.stderr}"
    assert "killed as planned" in proc.stdout

    # Re-verify the acceptance criteria independently of the driver's
    # own PASS verdict, straight from the artifacts it leaves behind.
    journal = out / "journal.jsonl"
    counts = validate_journal(journal)  # raises on double completion
    assert set(counts) <= set(TERMINAL_STATES)
    assert sum(counts.values()) >= N_SPECS
    assert not counts.get("failed"), \
        f"the backend ladder should have rescued every job: {counts}"
    jobs = replay_journal(journal).jobs
    assert all(job.row is not None for job in jobs.values())

    data = read_trace_jsonl(out / "trace.jsonl")
    validate_trace_records(data.records)
    events = {r["name"] for r in data.records if r["type"] == "event"}
    assert {"fault_injected", "job_retry", "breaker_open",
            "breaker_close", "job_done", "drain"} <= events

    report = json.loads((out / "summary.json").read_text())
    assert report["failures"] == []
    assert report["breakers"]["chaos"]["opens"] >= 1
    assert report["breakers"]["chaos"]["state"] == "closed"
    # The kill interrupted real progress: work completed before the
    # SIGKILL survived in the journal run 2 started from.
    assert sum(report["run1_jobs_surviving"].values()) >= 1

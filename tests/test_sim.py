"""Tests for the execution simulator (repro.sim)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.contamination import route_shortest
from repro.cases import generate_case, nucleic_acid
from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisOptions,
    conflict_pair,
    synthesize,
)
from repro.core.valves import analyze_valves
from repro.errors import ReproError
from repro.sim import (
    EventKind,
    SwitchSimulator,
    fluid_conflicts_of,
    simulate,
    stuck_closed,
    stuck_open,
)
from repro.switches import CrossbarSwitch, SpineSwitch


def two_corridor_spec(**kw):
    """Two conflicting fluids on opposite corridors, one flow set."""
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2"],
        flows=[Flow(1, "acid", "w1"), Flow(2, "base", "w2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "R1", "w2": "B2"},
        **kw,
    )


def shared_corridor_spec(**kw):
    """Two inlets forced through the same corridor in different sets —
    the schedule needs closed valves."""
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2"],
        flows=[Flow(1, "acid", "w1"), Flow(2, "base", "w2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "L1", "w2": "B2"},
        **kw,
    )


def test_clean_single_set_execution():
    res = synthesize(two_corridor_spec())
    report = simulate(res)
    assert report.is_clean
    assert report.delivered == {1, 2}
    assert "delivered 2 flow(s)" in report.summary()


def test_clean_multi_set_execution():
    res = synthesize(shared_corridor_spec())
    assert res.num_flow_sets == 2
    report = simulate(res)
    assert report.is_clean, [str(e) for e in report.events
                             if e.kind is not EventKind.FLUID_FILL]


def test_valve_actuation_events_emitted():
    res = synthesize(shared_corridor_spec())
    report = simulate(res)
    actuations = report.of_kind(EventKind.VALVE_SET)
    # one actuation per essential valve per flow set
    assert len(actuations) == res.num_valves * res.num_flow_sets


def test_stuck_closed_starves_a_flow():
    res = synthesize(two_corridor_spec())
    # break any segment on flow 1's path
    seg = sorted(res.flow_paths[1].segments)[0]
    report = simulate(res, faults=[stuck_closed(*seg)])
    assert 1 in report.undelivered
    assert not report.is_clean


def test_stuck_open_on_some_essential_valve_causes_trouble():
    """At least one essential valve must be load-bearing: jamming it
    open produces a misroute, collision or contamination."""
    res = synthesize(shared_corridor_spec())
    assert res.valves.essential
    troubled = []
    for key in sorted(res.valves.essential):
        report = simulate(res, faults=[stuck_open(*key)])
        if not report.is_clean:
            troubled.append(key)
    assert troubled, "no essential valve mattered under fault injection"


def test_faults_on_unused_segments_are_harmless():
    res = synthesize(two_corridor_spec())
    unused = [k for k in res.spec.switch.segments
              if k not in res.used_segments]
    report = simulate(res, faults=[stuck_open(*unused[0]),
                                   stuck_closed(*unused[1])])
    assert report.is_clean


def test_conflicting_residue_detected_without_schedule_protection():
    """Manually force two conflicting fluids through one corridor in
    consecutive sets and watch the simulator flag the residue."""
    sw = CrossbarSwitch(8)
    spec = shared_corridor_spec(conflicts={conflict_pair(1, 2)})
    # route both flows straight down the left corridor (invalid for the
    # optimizer, which is exactly the point)
    binding = {"acid": "T1", "w1": "B1", "base": "L1", "w2": "B2"}
    paths = route_shortest(sw, {"acid": "T1", "w1": "B1",
                                "base": "L1", "w2": "B1"},
                           [Flow(1, "acid", "w1")])
    path1 = paths[1]
    paths2 = route_shortest(sw, {"base": "L1", "w2": "B2"},
                            [Flow(2, "base", "w2")])
    path2 = paths2[2] if 2 in paths2 else list(paths2.values())[0]
    flow_paths = {1: path1, 2: path2}
    used = set(path1.segments) | set(path2.segments)
    valves = analyze_valves(sw, flow_paths, [[1], [2]])
    sim = SwitchSimulator(
        switch=sw,
        used_segments=used,
        valve_status={k: v for k, v in valves.status.items()
                      if k in valves.essential},
        flow_paths=flow_paths,
        flow_sets=[[1], [2]],
        sources={1: "acid", 2: "base"},
        binding=binding,
        fluid_conflicts={frozenset({"acid", "base"})},
    )
    report = sim.run()
    if set(path1.segments) & set(path2.segments) or \
            set(path1.nodes) & set(path2.nodes):
        assert report.contamination_events


def test_spine_baseline_contaminates_in_simulation():
    """Running the nucleic-acid flows sequentially on a spine leaves
    conflicting residue on the shared spine — detected dynamically."""
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    spine = SpineSwitch(len(spec.modules))
    binding = {m: spine.pins[i] for i, m in enumerate(spec.modules)}
    paths = route_shortest(spine, binding, spec.flows)
    valves = analyze_valves(spine, paths, [[1], [2], [3]])
    sim = SwitchSimulator(
        switch=spine,
        used_segments={k for p in paths.values() for k in p.segments},
        valve_status={k: v for k, v in valves.status.items()
                      if k in valves.essential},
        flow_paths=paths,
        flow_sets=[[1], [2], [3]],  # even fully serialized...
        sources={f.id: f.source for f in spec.flows},
        binding=binding,
        fluid_conflicts=fluid_conflicts_of(spec),
    )
    report = sim.run()
    assert report.contamination_events  # ...the residue still pollutes


def test_simulate_requires_solved_result():
    res = synthesize(nucleic_acid(BindingPolicy.FIXED))  # no solution
    with pytest.raises(ReproError):
        simulate(res)


def test_event_str_readable():
    res = synthesize(two_corridor_spec())
    report = simulate(res)
    text = str(report.events[0])
    assert "[set 0]" in text


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_random_solved_cases_simulate_clean(seed):
    """Dynamic property: whatever the optimizer accepts must execute
    without contamination, collisions, misroutes or starvation."""
    spec = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=1, binding=BindingPolicy.FIXED)
    res = synthesize(spec, SynthesisOptions(time_limit=30))
    if not res.status.solved:
        return
    report = simulate(res)
    assert report.is_clean, [str(e) for e in report.events
                             if e.kind is not EventKind.FLUID_FILL]

"""Tests for application-specific switch reduction (repro.switches.reduce)."""

import pytest

from repro.errors import SwitchModelError
from repro.switches import CrossbarSwitch, reduce_switch
from repro.switches.base import segment_key


@pytest.fixture()
def sw():
    return CrossbarSwitch(8)


def _keys(*pairs):
    return {segment_key(a, b) for a, b in pairs}


def test_reduction_metrics(sw):
    used = _keys(("T1", "TL"), ("TL", "T"), ("T", "C"), ("C", "R"), ("R", "TR"),
                 ("TR", "R1"))
    essential = _keys(("T", "C"), ("C", "R"))
    red = reduce_switch(sw, used, essential)
    assert red.num_valves == 2
    assert red.flow_channel_length == pytest.approx(0.7 + 1 + 1 + 1 + 1 + 0.7)
    assert red.is_connected()
    assert set(red.used_pins) == {"T1", "R1"}
    assert "C" in red.used_nodes and "BL" not in red.used_nodes


def test_removed_sets(sw):
    used = _keys(("T1", "TL"), ("TL", "T"))
    red = reduce_switch(sw, used, set())
    assert len(red.removed_segments) == len(sw.segments) - 2
    assert segment_key("C", "R") in red.removed_segments
    # all valves removed (none essential)
    assert len(red.removed_valves) == len(sw.valves)


def test_essential_valve_on_removed_segment_rejected(sw):
    used = _keys(("T1", "TL"))
    essential = _keys(("C", "R"))
    with pytest.raises(SwitchModelError):
        reduce_switch(sw, used, essential)


def test_unknown_segment_rejected(sw):
    with pytest.raises(SwitchModelError):
        reduce_switch(sw, {("T1", "B1")}, set())


def test_disconnected_reduction_detected(sw):
    used = _keys(("T1", "TL"), ("B1", "BL"))
    red = reduce_switch(sw, used, set())
    assert not red.is_connected()


def test_graph_has_lengths(sw):
    used = _keys(("T1", "TL"), ("TL", "T"))
    g = reduce_switch(sw, used, set()).graph()
    assert g.edges["T1", "TL"]["length"] == pytest.approx(0.7)


def test_segment_objects_accessible(sw):
    used = _keys(("T1", "TL"), ("TL", "T"))
    red = reduce_switch(sw, used, set())
    assert {str(s) for s in red.segments} == {"T1-TL", "T-TL"}

"""Tests focused on flow scheduling (§3.3) semantics."""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SchedulingForm,
    SwitchSpec,
    SynthesisStatus,
    conflict_pair,
    synthesize,
)
from repro.switches import CrossbarSwitch


def spec_fixed(flows, fixed, **kw):
    modules = sorted(fixed)
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=modules,
        flows=flows,
        binding=BindingPolicy.FIXED,
        fixed_binding=fixed,
        **kw,
    )


def _sets_disjoint_per_inlet(spec, res):
    source = {f.id: f.source for f in spec.flows}
    for group in res.flow_sets:
        owners = {}
        for fid in group:
            p = res.flow_paths[fid]
            for n in p.nodes:
                assert owners.setdefault(n, source[fid]) == source[fid]
            for s in p.segments:
                assert owners.setdefault(s, source[fid]) == source[fid]


def test_crossing_inlets_forced_into_two_sets():
    """Flows T1->R2 and T2->L2 must both cross the center region, so
    with different inlets they cannot execute in parallel."""
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        {"i1": "T1", "o1": "R2", "i2": "T2", "o2": "L2"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    _sets_disjoint_per_inlet(spec, res)
    p1, p2 = res.flow_paths[1], res.flow_paths[2]
    if set(p1.nodes) & set(p2.nodes) or set(p1.segments) & set(p2.segments):
        assert res.num_flow_sets == 2


def test_branching_flows_count_single_set():
    """Figure 3.1(b): branches from one inlet stay in one flow set."""
    spec = spec_fixed(
        [Flow(1, "L1src", "o1"), Flow(2, "L1src", "o2"), Flow(3, "L1src", "o3")],
        {"L1src": "L1", "o1": "B1", "o2": "B2", "o3": "R2"},
    )
    res = synthesize(spec)
    assert res.num_flow_sets == 1
    _sets_disjoint_per_inlet(spec, res)


def test_flow_sets_partition():
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2"), Flow(3, "i1", "o3")],
        {"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2", "o3": "L2"},
    )
    res = synthesize(spec)
    scheduled = sorted(f for g in res.flow_sets for f in g)
    assert scheduled == [1, 2, 3]
    assert all(g for g in res.flow_sets)


def test_max_sets_one_can_be_infeasible():
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        {"i1": "T1", "o1": "R2", "i2": "T2", "o2": "L2"},
        max_sets=1,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.NO_SOLUTION


def test_conflicting_flows_never_share_even_across_sets():
    """Contamination is about residue, not time: conflicting flows may
    not reuse each other's channels even in different flow sets."""
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        {"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
        conflicts={conflict_pair(1, 2)},
    )
    res = synthesize(spec)
    p1, p2 = res.flow_paths[1], res.flow_paths[2]
    assert not (set(p1.nodes) & set(p2.nodes))
    assert not (set(p1.segments) & set(p2.segments))


def test_nonconflicting_flows_may_reuse_channels_across_sets():
    """Same corridor, different sets: allowed without conflicts."""
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        {"i1": "T1", "o1": "B1", "i2": "L1", "o2": "L2"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    p1, p2 = res.flow_paths[1], res.flow_paths[2]
    # the cheapest solution shares the left corridor in two sets
    shared = set(p1.nodes) & set(p2.nodes)
    if shared:
        assert res.set_of_flow(1) != res.set_of_flow(2)
        _ = res.valves  # valves must exist for leak protection
        assert res.valves.essential


@pytest.mark.parametrize("form", [SchedulingForm.PAPER, SchedulingForm.COMPACT])
def test_forms_agree_on_set_count(form):
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2"), Flow(3, "i3", "o3")],
        {"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2", "i3": "L1", "o3": "R2"},
        scheduling_form=form,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    key = "paper" if form is SchedulingForm.PAPER else "compact"
    test_forms_agree_on_set_count.seen[key] = (
        res.num_flow_sets, res.objective)


test_forms_agree_on_set_count.seen = {}


def test_forms_agree_on_set_count_check():
    seen = test_forms_agree_on_set_count.seen
    if len(seen) == 2:
        (s1, o1), (s2, o2) = seen.values()
        assert s1 == s2
        assert o1 == pytest.approx(o2)


def test_sets_counted_without_gaps():
    spec = spec_fixed(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        {"i1": "T1", "o1": "R2", "i2": "T2", "o2": "L2"},
    )
    res = synthesize(spec)
    # reported sets are exactly the non-empty ones, in order
    assert res.num_flow_sets == len(res.flow_sets)
    assert all(res.flow_sets)

"""Stability tests for the canonical fingerprints (repro.obs.manifest).

The case/config fingerprints are no longer descriptive metadata: they
key Tier A of the persistent solve cache and the service's idempotent
job identity. A digest that silently drifts makes every store entry
unreachable and every journaled job a stranger, so the known values
are pinned here as literals. If one of these tests fails, the change
is *semantic*: bump :data:`repro.store.keys.CACHE_EPOCH` in the same
commit and update the pins deliberately.
"""

import dataclasses

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.obs.manifest import case_fingerprint, config_fingerprint
from repro.service import job_id_for

#: Pinned digests; update only together with a CACHE_EPOCH bump.
PINNED_CASE = "9e1b463f1a61ed13"
PINNED_CONFIG = "8df0150b207f34d5"


def pinned_spec():
    return generate_case(seed=0, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def test_case_fingerprint_is_pinned():
    assert case_fingerprint(pinned_spec()) == PINNED_CASE


def test_config_fingerprint_is_pinned():
    assert config_fingerprint(SynthesisOptions()) == PINNED_CONFIG


def test_job_id_is_the_fingerprint_pair():
    assert job_id_for(pinned_spec(), SynthesisOptions()) == \
        f"{PINNED_CASE}-{PINNED_CONFIG}"


def test_runtime_attachments_do_not_change_the_config_fingerprint():
    """trace/store/cache are compare=False: never part of identity."""
    from repro.obs import Tracer
    from repro.store import Store

    plain = config_fingerprint(SynthesisOptions())
    attached = config_fingerprint(SynthesisOptions(
        trace=Tracer("t"), store=Store("/nonexistent-store"), cache=False))
    assert attached == plain


def test_compare_fields_do_change_the_fingerprint():
    assert config_fingerprint(SynthesisOptions(mip_gap=1e-2)) != PINNED_CONFIG
    assert config_fingerprint(SynthesisOptions(backend="highs")) != \
        PINNED_CONFIG


def test_exclusion_rule_is_the_dataclass_compare_flag():
    """The manifest must not keep a hand-written exclusion list."""
    excluded = {f.name for f in dataclasses.fields(SynthesisOptions)
                if not f.compare}
    assert excluded == {"trace", "store", "cache"}


def test_case_fingerprint_tracks_spec_content():
    a = pinned_spec()
    b = generate_case(seed=1, switch_size=8, n_flows=2, n_inlets=2,
                      n_conflicts=0, binding=BindingPolicy.FIXED)
    assert case_fingerprint(a) != case_fingerprint(b)
    # re-generating the same seed reproduces the same digest
    assert case_fingerprint(pinned_spec()) == case_fingerprint(a)

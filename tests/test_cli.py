"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main


def test_cases_command(capsys):
    assert main(["cases"]) == 0
    out = capsys.readouterr().out
    assert "chip_sw1" in out and "nucleic_acid" in out


def test_show_switch(capsys, tmp_path):
    svg = tmp_path / "sw.svg"
    assert main(["show-switch", "8", "--svg", str(svg)]) == 0
    out = capsys.readouterr().out
    assert "20 segments" in out
    assert svg.exists()


def test_synthesize_registry_case(capsys, tmp_path):
    svg = tmp_path / "out.svg"
    result_json = tmp_path / "out.json"
    code = main([
        "synthesize", "kinase_sw1", "--policy", "fixed",
        "--svg", str(svg), "--json", str(result_json),
        "--time-limit", "60",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "kinase activity sw.1" in out
    assert svg.exists()
    data = json.loads(result_json.read_text())
    assert data["status"] == "optimal"


def test_synthesize_json_spec(capsys, tmp_path):
    case_path = tmp_path / "case.json"
    assert main(["export-case", "kinase_sw1", "--policy", "fixed",
                 "-o", str(case_path)]) == 0
    capsys.readouterr()
    assert main(["synthesize", str(case_path), "--time-limit", "60"]) == 0
    out = capsys.readouterr().out
    assert "binding:" in out


def test_synthesize_infeasible_case_exit_code(capsys):
    code = main(["synthesize", "nucleic_acid", "--policy", "fixed",
                 "--time-limit", "60"])
    assert code == 1
    out = capsys.readouterr().out
    assert "no solution" in out


def test_unknown_case_errors(capsys):
    code = main(["synthesize", "not_a_case"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown case" in err


def test_policy_with_json_spec_rejected(tmp_path, capsys):
    case_path = tmp_path / "case.json"
    main(["export-case", "kinase_sw1", "--policy", "fixed", "-o", str(case_path)])
    capsys.readouterr()
    code = main(["synthesize", str(case_path), "--policy", "unfixed"])
    assert code == 2


def test_compare_command(capsys):
    code = main(["compare", "nucleic_acid", "--time-limit", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "proposed (synthesized)" in out
    assert "spine" in out


def test_simulate_command(capsys):
    code = main(["simulate", "kinase_sw1", "--policy", "fixed",
                 "--time-limit", "60", "--faults"])
    assert code == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "routing time" in out


def test_simulate_infeasible_case(capsys):
    code = main(["simulate", "nucleic_acid", "--policy", "fixed",
                 "--time-limit", "60"])
    assert code == 1


def test_layout_command(capsys, tmp_path):
    svg = tmp_path / "chip.svg"
    code = main(["layout", "kinase_sw1", "--policy", "fixed",
                 "--time-limit", "60", "--svg", str(svg)])
    assert code == 0
    out = capsys.readouterr().out
    assert "mm^2" in out
    assert svg.exists()

"""Tests for JSON interchange (repro.io)."""

import json

import pytest

from repro.cases import chip_sw1, nucleic_acid
from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.errors import SpecError
from repro.io import (
    load_spec,
    result_to_dict,
    save_result,
    save_spec,
    spec_from_dict,
    spec_to_dict,
    switch_from_dict,
    switch_to_dict,
)
from repro.switches import CrossbarSwitch, GRUSwitch, ScalableCrossbarSwitch, SpineSwitch


@pytest.mark.parametrize("policy", list(BindingPolicy))
def test_spec_roundtrip(policy):
    spec = chip_sw1(policy)
    data = spec_to_dict(spec)
    back = spec_from_dict(data)
    assert back.name == spec.name
    assert back.modules == spec.modules
    assert [f.id for f in back.flows] == [f.id for f in spec.flows]
    assert back.conflicts == spec.conflicts
    assert back.binding == spec.binding
    assert back.fixed_binding == spec.fixed_binding
    assert back.module_order == spec.module_order
    assert back.switch.n_pins == spec.switch.n_pins
    assert type(back.switch) is type(spec.switch)


def test_spec_file_roundtrip(tmp_path):
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    path = tmp_path / "case.json"
    save_spec(spec, path)
    loaded = load_spec(path)
    assert loaded.name == spec.name
    assert len(loaded.flows) == 3
    # the file is valid JSON with the documented top-level keys
    raw = json.loads(path.read_text())
    assert {"name", "switch", "modules", "flows", "conflicts", "binding"} <= set(raw)


@pytest.mark.parametrize("switch_cls,family", [
    (CrossbarSwitch, "crossbar"),
    (ScalableCrossbarSwitch, "scalable-crossbar"),
    (SpineSwitch, "spine"),
    (GRUSwitch, "gru"),
])
def test_switch_roundtrip(switch_cls, family):
    sw = switch_cls(8)
    data = switch_to_dict(sw)
    assert data["family"] == family
    back = switch_from_dict(data)
    assert type(back) is switch_cls
    assert back.n_pins == 8


def test_switch_unknown_family_rejected():
    with pytest.raises(SpecError):
        switch_from_dict({"family": "torus", "pins": 8})


def test_malformed_spec_rejected():
    with pytest.raises(SpecError):
        spec_from_dict({"modules": ["a"], "flows": [{"id": 1}]})


def test_invalid_json_file_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(SpecError):
        load_spec(path)


def test_loaded_spec_is_validated(tmp_path):
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    data = spec_to_dict(spec)
    data["flows"][0]["target"] = "nonexistent"
    path = tmp_path / "bad_case.json"
    path.write_text(json.dumps(data))
    with pytest.raises(SpecError):
        load_spec(path)


def test_result_export(tmp_path):
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "B2"},
        name="export-me",
    )
    result = synthesize(spec)
    data = result_to_dict(result)
    assert data["case"] == "export-me"
    assert data["status"] == "optimal"
    assert len(data["flows"]) == 2
    assert data["num_flow_sets"] == result.num_flow_sets
    for entry in data["flows"]:
        assert entry["route"][0] == result.binding[spec.flow(entry["id"]).source]

    path = tmp_path / "result.json"
    save_result(result, path)
    raw = json.loads(path.read_text())
    assert raw["flow_channel_length_mm"] == pytest.approx(
        result.flow_channel_length, abs=1e-3
    )


def test_unsolved_result_export():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["m1", "m2", "m3", "r1", "r2", "r3"],
        flows=[Flow(1, "m1", "r1"), Flow(2, "m2", "r2"), Flow(3, "m3", "r3")],
        conflicts={frozenset({1, 2}), frozenset({1, 3}), frozenset({2, 3})},
        binding=BindingPolicy.FIXED,
        fixed_binding={"m1": "T1", "m2": "T2", "m3": "R1",
                       "r1": "R2", "r2": "B2", "r3": "B1"},
    )
    result = synthesize(spec)
    data = result_to_dict(result)
    assert data["status"] == "no solution"
    assert "binding" not in data


def test_result_export_carries_timings_and_counters(tmp_path):
    from repro.io import load_result_summary
    from repro.perf import PhaseTimings

    spec = chip_sw1(BindingPolicy.FIXED)
    result = synthesize(spec)
    data = result_to_dict(result)
    assert "timings_s" in data and "counters" in data
    assert set(data["timings_s"]) == set(result.timings)
    for phase, seconds in data["timings_s"].items():
        assert seconds == pytest.approx(result.timings[phase], abs=1e-5)
    assert data["counters"] == result.counters
    # keys are emitted in canonical phase order for stable diffs
    assert list(data["timings_s"]) == result.timings.ordered()
    assert list(data["counters"]) == sorted(result.counters)

    path = tmp_path / "result.json"
    save_result(result, path)
    summary = load_result_summary(path)
    assert isinstance(summary["timings_s"], PhaseTimings)
    assert summary["timings_s"].ordered() == result.timings.ordered()
    assert summary["timings_s"].total == pytest.approx(
        result.timings.total, abs=1e-2)
    assert summary["counters"] == result.counters
    assert all(isinstance(v, int) for v in summary["counters"].values())


def test_load_result_summary_tolerates_missing_measurements(tmp_path):
    from repro.io import load_result_summary
    from repro.perf import PhaseTimings

    path = tmp_path / "bare.json"
    path.write_text('{"case": "x", "status": "optimal"}')
    summary = load_result_summary(path)
    assert summary["case"] == "x"
    assert isinstance(summary["timings_s"], PhaseTimings)
    assert summary["timings_s"].total == 0.0
    assert summary["counters"] == {}

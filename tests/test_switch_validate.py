"""Tests for the switch structural validator (repro.switches.validate)."""

import pytest

from repro.errors import SwitchModelError
from repro.geometry import Point
from repro.switches import (
    CrossbarSwitch,
    GRUSwitch,
    ScalableCrossbarSwitch,
    SpineSwitch,
    assert_valid_switch,
    validate_switch,
)
from repro.switches.base import NodeKind, SwitchModel


class CustomSwitch(SwitchModel):
    """A minimal hand-built topology used to exercise the validator."""

    def __init__(self, break_mode: str = "none") -> None:
        super().__init__("custom")
        self._add_node("C", NodeKind.CENTER, Point(0, 0))
        self._add_node("N", NodeKind.ARM, Point(0, 1))
        self._add_node("S", NodeKind.ARM, Point(0, -1))
        self._add_pin("P1", Point(0, 2))
        self._add_pin("P2", Point(0, -2))
        self._add_segment("P1", "N")
        self._add_segment("N", "C")
        self._add_segment("C", "S")
        self._add_segment("S", "P2")

        if break_mode == "dangling_pin":
            self._add_pin("P3", Point(2, 0))          # never connected
        elif break_mode == "fat_pin":
            self._add_pin("P3", Point(2, 0))
            self._add_segment("P3", "C")
            self._add_segment("P3", "N")              # degree-2 pin
        elif break_mode == "island":
            self._add_node("X", NodeKind.ARM, Point(5, 5))
            self._add_node("Y", NodeKind.ARM, Point(5, 6))
            self._add_segment("X", "Y")               # disconnected part
        elif break_mode == "bad_rotation":
            self.rotation_order = 3                   # 2 pins % 3 != 0
        elif break_mode == "crowded":
            # a node closer than flow width + spacing to another vertex
            self._add_node("Z", NodeKind.ARM, Point(0.05, 0))
            self._add_segment("Z", "N")
            self._add_segment("Z", "S")


@pytest.mark.parametrize("switch_cls", [CrossbarSwitch, ScalableCrossbarSwitch])
@pytest.mark.parametrize("n_pins", [8, 12, 16])
def test_shipped_crossbars_validate(switch_cls, n_pins):
    assert validate_switch(switch_cls(n_pins)) == []


@pytest.mark.parametrize("factory", [lambda: SpineSwitch(8),
                                     lambda: GRUSwitch(8),
                                     lambda: GRUSwitch(12)])
def test_shipped_baselines_validate(factory):
    assert validate_switch(factory()) == []


def test_clean_custom_switch_passes():
    assert validate_switch(CustomSwitch()) == []
    assert_valid_switch(CustomSwitch())


def test_dangling_pin_detected():
    problems = validate_switch(CustomSwitch("dangling_pin"))
    assert any("P3" in p and "degree" in p for p in problems) or \
        any("not connected" in p for p in problems)


def test_fat_pin_detected():
    problems = validate_switch(CustomSwitch("fat_pin"))
    assert any("exactly one segment" in p for p in problems)


def test_disconnected_island_detected():
    problems = validate_switch(CustomSwitch("island"))
    assert any("not connected" in p for p in problems)


def test_bad_rotation_order_detected():
    problems = validate_switch(CustomSwitch("bad_rotation"))
    assert any("rotation_order" in p for p in problems)


def test_crowded_layout_detected():
    problems = validate_switch(CustomSwitch("crowded"))
    assert any("closer than" in p for p in problems)


def test_assert_valid_switch_raises_with_report():
    with pytest.raises(SwitchModelError) as exc:
        assert_valid_switch(CustomSwitch("fat_pin"))
    assert "failed validation" in str(exc.value)


def test_custom_switch_synthesizes_end_to_end():
    """A validated custom topology slots straight into the pipeline."""
    from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize

    sw = CustomSwitch()
    spec = SwitchSpec(
        switch=sw,
        modules=["a", "b"],
        flows=[Flow(1, "a", "b")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"a": "P1", "b": "P2"},
    )
    result = synthesize(spec)
    assert result.status.solved
    assert result.flow_paths[1].vertices == ("P1", "N", "C", "S", "P2")

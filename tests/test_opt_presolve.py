"""Tests for the presolve pass (repro.opt.presolve)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.opt import Model, SolveStatus, VarType, quicksum
from repro.opt.presolve import presolve


def test_singleton_equality_fixes_variable():
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(2 * x == 6)
    m.add_constr(x + y <= 8)
    m.set_objective(y, "max")
    res = presolve(m)
    assert not res.proven_infeasible
    assert res.fixed == {x: 3.0}
    assert res.model.num_vars == 1
    sol = res.model.solve()
    assert sol.objective == pytest.approx(5)  # y <= 8 - 3


def test_bound_tightening():
    m = Model()
    x = m.add_integer("x", 0, 100)
    m.add_constr(3 * x <= 10)   # x <= 3 (integer floor)
    m.add_constr(2 * x >= 3)    # x >= 2 (integer ceil)
    res = presolve(m)
    (nx,) = res.model.variables
    assert nx.lb == 2 and nx.ub == 3
    # both rows became redundant after tightening
    assert res.model.num_constraints == 0


def test_infeasibility_detected():
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x >= 1)
    m.add_constr(x <= 0)
    assert presolve(m).proven_infeasible


def test_fractional_singleton_integer_infeasible():
    m = Model()
    x = m.add_integer("x", 0, 10)
    m.add_constr(2 * x == 5)
    assert presolve(m).proven_infeasible


def test_redundant_constraints_dropped():
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x <= 5)        # vacuous for a binary
    m.add_constr(x >= -3)       # vacuous
    res = presolve(m)
    assert res.dropped_constraints == 2
    assert res.model.num_constraints == 0


def test_extend_solution():
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x == 4)
    m.add_constr(y >= 2)
    m.set_objective(y, "min")
    res = presolve(m)
    sol = res.model.solve()
    values = res.extend_solution({v: sol.value(v) for v in res.model.variables})
    by_name = {v.name: val for v, val in values.items()}
    assert by_name["x"] == 4.0
    assert by_name["y"] == 2.0


def test_objective_constant_folded():
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x == 4)
    m.add_constr(y >= 1)
    m.set_objective(3 * x + y, "min")
    res = presolve(m)
    sol = res.model.solve()
    # objective in the reduced model must account for the fixed 3*4
    assert sol.objective == pytest.approx(13)


def test_quadratic_model_rejected():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y <= 1)
    with pytest.raises(ModelError):
        presolve(m)


def test_chained_propagation():
    """Fixing one variable cascades through equalities."""
    m = Model()
    a = m.add_integer("a", 0, 10)
    b = m.add_integer("b", 0, 10)
    c = m.add_integer("c", 0, 10)
    m.add_constr(a == 2)
    m.add_constr(a + b == 5)   # -> b = 3 once a is fixed
    m.add_constr(b + c == 4)   # -> c = 1 once b is fixed
    res = presolve(m)
    names = {v.name: val for v, val in res.fixed.items()}
    assert names == {"a": 2.0, "b": 3.0, "c": 1.0}
    assert res.model.num_vars == 0


def test_constraint_emptied_by_fixing_is_dropped():
    """A row whose variables all get fixed degenerates to a constant
    check; consistent rows vanish from the reduced model."""
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x == 2)
    m.add_constr(y == 3)
    m.add_constr(x + y <= 9)       # becomes 5 <= 9 once both are fixed
    res = presolve(m)
    assert not res.proven_infeasible
    assert res.model.num_vars == 0
    assert res.model.num_constraints == 0
    names = {v.name: val for v, val in res.fixed.items()}
    assert names == {"x": 2.0, "y": 3.0}


def test_constraint_emptied_by_fixing_proves_infeasibility():
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x == 2)
    m.add_constr(y == 3)
    m.add_constr(x + y == 9)       # 5 == 9: contradiction
    assert presolve(m).proven_infeasible


def test_bound_tightening_to_infeasibility():
    """Tightening drives lb past ub without any single row being
    unsatisfiable on the original bounds."""
    m = Model()
    x = m.add_var("x", lb=0.0, ub=10.0)
    m.add_constr(2 * x >= 12)      # x >= 6
    m.add_constr(3 * x <= 12)      # x <= 4
    assert presolve(m).proven_infeasible


def test_activity_infeasible_row_detected():
    """A row whose best-case activity still misses the rhs."""
    m = Model()
    x = m.add_integer("x", 0, 2)
    y = m.add_integer("y", 0, 3)
    m.add_constr(x + y >= 10)      # max activity is 5
    assert presolve(m).proven_infeasible


def test_all_variables_fixed_model():
    """Every variable pinned: the reduced model is empty and its
    objective is the folded constant."""
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x == 7)
    m.add_constr(y == 1)
    m.set_objective(2 * x + 5 * y, "min")
    res = presolve(m)
    assert res.model.num_vars == 0
    assert res.model.num_constraints == 0
    sol = res.model.solve()
    assert sol.objective == pytest.approx(19)
    values = res.extend_solution({})
    assert {v.name: val for v, val in values.items()} == {"x": 7.0, "y": 1.0}


def _random_small_model(seed: int) -> Model:
    rng = random.Random(seed)
    m = Model(f"ps{seed}")
    xs = [m.add_integer(f"x{i}", 0, rng.randint(1, 3)) for i in range(3)]
    for _ in range(rng.randint(1, 4)):
        coeffs = [rng.randint(-2, 2) for _ in xs]
        sense = rng.choice(["le", "ge", "eq"])
        rhs = rng.randint(-2, 4)
        lhs = quicksum(c * x for c, x in zip(coeffs, xs))
        if sense == "le":
            m.add_constr(lhs <= rhs)
        elif sense == "ge":
            m.add_constr(lhs >= rhs)
        else:
            m.add_constr(lhs == rhs)
    m.set_objective(quicksum(rng.randint(-2, 2) * x for x in xs), "min")
    return m


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=20_000))
def test_presolve_preserves_optimum(seed):
    """Property: solving the presolved model (plus fixed variables)
    gives exactly the original optimum, including infeasibility."""
    original = _random_small_model(seed)
    baseline = original.solve(backend="highs")

    res = presolve(_random_small_model(seed))
    if res.proven_infeasible:
        assert baseline.status is SolveStatus.INFEASIBLE
        return
    reduced_sol = res.model.solve(backend="highs")
    if baseline.status is SolveStatus.INFEASIBLE:
        assert reduced_sol.status is SolveStatus.INFEASIBLE
        return
    assert reduced_sol.status is SolveStatus.OPTIMAL
    assert reduced_sol.objective == pytest.approx(baseline.objective)

"""Tests for the proposed crossbar switch family (repro.switches.crossbar).

These encode the structural facts the thesis states for the switch
models, so the geometry reconstruction stays pinned to the paper.
"""

import networkx as nx
import pytest

from repro.errors import SwitchModelError
from repro.switches import CrossbarSwitch, NodeKind, make_switch, smallest_switch_for
from repro.switches.base import segment_key


@pytest.fixture(scope="module", params=[8, 12, 16])
def switch(request):
    return CrossbarSwitch(request.param)


def test_only_documented_sizes():
    with pytest.raises(SwitchModelError):
        CrossbarSwitch(10)
    with pytest.raises(SwitchModelError):
        CrossbarSwitch(20)


def test_8pin_pin_order_matches_paper():
    """§2.2: 'the pins are T1, T2, R1, R2, B2, B1, L2, L1' (clockwise)."""
    sw = CrossbarSwitch(8)
    assert sw.pins == ["T1", "T2", "R1", "R2", "B2", "B1", "L2", "L1"]


def test_8pin_major_nodes_match_paper():
    """§3.2: 'Nodes of an 8-pin switch is {C, T, R, B, L}'."""
    sw = CrossbarSwitch(8)
    assert set(sw.major_nodes()) == {"C", "T", "R", "B", "L"}


def test_8pin_has_20_segments():
    """§2.2: 'There are 20 flow segments in the 8-pin switch'."""
    assert len(CrossbarSwitch(8).segments) == 20


def test_paper_named_segments_exist():
    """§2.2 names T1-TL and TL-T; §3.5 names TR-R."""
    sw = CrossbarSwitch(8)
    assert sw.segment("T1", "TL").length > 0
    assert sw.segment("TL", "T").length > 0
    assert sw.segment("TR", "R").length > 0


def test_12pin_has_two_centers_with_connecting_segment():
    """§4.1 (ChIP): flows 'separated by the channel segment C1-C2'."""
    sw = CrossbarSwitch(12)
    assert "C1" in sw.nodes and "C2" in sw.nodes
    assert sw.segment("C1", "C2").length > 0


def test_segment_count_formula(switch):
    assert len(switch.segments) == 11 * switch.m + 9


def test_pin_count(switch):
    assert switch.n_pins == 4 * switch.m + 4
    assert len(set(switch.pins)) == switch.n_pins


def test_every_segment_has_a_valve(switch):
    """The general (unreduced) model carries a valve on every segment."""
    assert set(switch.valves) == set(switch.segments)


def test_graph_connected_and_pins_degree_one(switch):
    assert nx.is_connected(switch.graph)
    for pin in switch.pins:
        assert switch.graph.degree[pin] == 1


def test_pins_evenly_distributed(switch):
    """§2.2: flow pins distributed nearly evenly on the border."""
    lo, hi = switch.bounding_box()
    top = [p for p in switch.pins if switch.coords[p].y == hi.y]
    bottom = [p for p in switch.pins if switch.coords[p].y == lo.y]
    left = [p for p in switch.pins if switch.coords[p].x == lo.x]
    right = [p for p in switch.pins if switch.coords[p].x == hi.x]
    assert len(top) == len(bottom) == 2 * switch.m
    assert len(left) == len(right) == 2


def test_pin_index_clockwise(switch):
    indices = [switch.pin_index(p) for p in switch.pins]
    assert indices == list(range(1, switch.n_pins + 1))
    with pytest.raises(SwitchModelError):
        switch.pin_index("C")


def test_node_kinds(switch):
    centers = [n for n in switch.nodes if switch.kinds[n] is NodeKind.CENTER]
    corners = [n for n in switch.nodes if switch.kinds[n] is NodeKind.CORNER]
    arms = [n for n in switch.nodes if switch.kinds[n] is NodeKind.ARM]
    assert len(centers) == switch.m
    assert len(corners) == 2 * (switch.m + 1)
    assert len(arms) == 2 * switch.m + 2


def test_segment_lengths_positive_and_manhattan(switch):
    for seg in switch.segments.values():
        assert seg.length > 0
        a, b = switch.coords[seg.a], switch.coords[seg.b]
        assert seg.length == pytest.approx(a.manhattan_to(b))


def test_design_rules_clean(switch):
    assert switch.check_design_rules() == []


def test_total_length(switch):
    assert switch.total_length() == pytest.approx(
        sum(s.length for s in switch.segments.values())
    )


def test_segment_lookup_and_neighbors():
    sw = CrossbarSwitch(8)
    seg = sw.segment("C", "R")
    neighbors = {str(s) for s in sw.neighbor_segments(seg)}
    # neighbours at C: the three other spokes; at R: the corner links
    assert "C-T" in neighbors and "C-L" in neighbors and "B-C" in neighbors
    assert "R-TR" in neighbors and "BR-R" in neighbors
    restricted = sw.neighbor_segments(
        seg, restrict_to=frozenset({segment_key("C", "T")})
    )
    assert [str(s) for s in restricted] == ["C-T"]


def test_segments_at_vertex():
    sw = CrossbarSwitch(8)
    at_c = {str(s) for s in sw.segments_at("C")}
    assert at_c == {"C-T", "B-C", "C-L", "C-R"}


def test_make_switch_and_smallest_for():
    assert make_switch(12).n_pins == 12
    assert smallest_switch_for(7).n_pins == 8
    assert smallest_switch_for(9).n_pins == 12
    assert smallest_switch_for(13).n_pins == 16
    assert smallest_switch_for(17).n_pins == 24
    assert smallest_switch_for(25).n_pins == 32
    with pytest.raises(SwitchModelError):
        smallest_switch_for(33)


def test_rotation_order():
    assert CrossbarSwitch(8).rotation_order == 4
    assert CrossbarSwitch(12).rotation_order == 2
    assert CrossbarSwitch(16).rotation_order == 2


def test_rotation_is_length_preserving_automorphism():
    """Shifting the pin cycle by n/rotation_order positions must map
    segments to segments of equal length (the symmetry-breaking
    constraint in the synthesis model relies on this)."""
    for n_pins in (8, 12):
        sw = CrossbarSwitch(n_pins)
        shift = sw.n_pins // sw.rotation_order
        pin_map = {
            p: sw.pins[(i + shift) % sw.n_pins] for i, p in enumerate(sw.pins)
        }
        # extend to nodes via graph isomorphism check: relabeled pin graph
        # must be isomorphic with matching edge lengths
        g1 = sw.graph
        g2 = nx.relabel_nodes(sw.graph, {**{n: n for n in sw.nodes}}, copy=True)
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            g1, g2,
            edge_match=lambda e1, e2: abs(e1["length"] - e2["length"]) < 1e-9,
        )
        found = False
        for mapping in matcher.isomorphisms_iter():
            if all(mapping[p] == pin_map[p] for p in sw.pins):
                found = True
                break
        assert found, f"no automorphism realizes the {shift}-pin rotation"

"""Unit tests for geometry primitives and design rules."""

import pytest

from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY, manhattan_distance


def test_point_manhattan():
    assert Point(0, 0).manhattan_to(Point(3, 4)) == 7
    assert manhattan_distance(Point(-1, 2), Point(1, -2)) == 6


def test_point_euclidean():
    assert Point(0, 0).euclidean_to(Point(3, 4)) == pytest.approx(5.0)


def test_point_translate_scale():
    p = Point(1, 2).translated(2, -1)
    assert p == Point(3, 1)
    assert p.scaled(2) == Point(6, 2)


def test_stanford_rules_values():
    """The constants quoted from the Stanford Foundry design rules."""
    r = STANFORD_FOUNDRY
    assert r.flow_channel_width == pytest.approx(0.1)     # 100 um
    assert r.valve_length == pytest.approx(0.1)           # 100 um
    assert r.control_channel_width == pytest.approx(0.3)  # 300 um
    assert r.min_channel_spacing == pytest.approx(0.1)    # 100 um
    assert r.control_inlet_area == pytest.approx(1.0)     # 1 mm^2


def test_spacing_validation():
    r = DesignRules()
    assert r.validate_spacing(0.1)
    assert r.validate_spacing(0.2)
    assert not r.validate_spacing(0.05)


def test_area_helpers():
    r = DesignRules()
    assert r.control_area(5) == pytest.approx(5.0)
    assert r.flow_area(13.6) == pytest.approx(1.36)
    with pytest.raises(ValueError):
        r.control_area(-1)
    with pytest.raises(ValueError):
        r.flow_area(-0.1)

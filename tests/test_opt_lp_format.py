"""Tests for LP-format export (repro.opt.lp_format)."""

import re

import pytest

from repro.opt import Model, VarType, model_to_lp, quicksum, write_lp


def small_model():
    m = Model("lp demo")
    x = m.add_binary("x")
    y = m.add_binary("y[1]")       # name needs sanitizing
    z = m.add_integer("z", 0, 5)
    m.add_constr(x + y <= 1, "cap one")
    m.add_constr(2 * z - x >= 1, "lower")
    m.add_constr(x + z == 3, "tie")
    m.set_objective(3 * x + 2 * y + z + 4, "min")
    return m, (x, y, z)


def test_sections_present():
    m, _ = small_model()
    text = model_to_lp(m)
    for section in ("Minimize", "Subject To", "Bounds", "Generals",
                    "Binaries", "End"):
        assert section in text


def test_names_sanitized():
    m, _ = small_model()
    text = model_to_lp(m)
    assert "y[1]" not in text
    assert "y_1_" in text
    assert "cap_one:" in text


def test_constraint_lines():
    m, _ = small_model()
    text = model_to_lp(m)
    assert "x + 1 y_1_ <= 1" in text.replace("1 x", "x")
    assert ">= 1" in text
    assert "= 3" in text


def test_objective_constant_encoded():
    m, _ = small_model()
    text = model_to_lp(m)
    assert "__one__" in text
    assert "__one__ = 1" in text


def test_maximize_header():
    m = Model()
    x = m.add_binary("x")
    m.set_objective(x, "max")
    assert "Maximize" in model_to_lp(m)


def test_quadratic_model_linearized_on_export():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y >= 1)
    text = model_to_lp(m)
    assert "_lin_" in text  # auxiliary product variable exported
    assert "End" in text


def test_unbounded_integer_bounds():
    m = Model()
    m.add_integer("free", 0)  # ub = +inf
    text = model_to_lp(m)
    assert "0 <= free <= +inf" in text


def test_write_lp(tmp_path):
    m, _ = small_model()
    path = tmp_path / "model.lp"
    write_lp(m, path)
    assert path.read_text().startswith("\\ model: lp demo")


def test_empty_objective():
    m = Model()
    m.add_binary("x")
    text = model_to_lp(m)
    assert "__zero__" in text


def _parse_lp_constraints(text):
    """Parse the Subject To section back into
    ``{name: (coeffs, sense, rhs)}`` — the inverse of the exporter for
    the linear rows it emits."""
    lines = text.splitlines()
    start = lines.index("Subject To") + 1
    end = lines.index("Bounds")
    term_re = re.compile(r"([+-])\s*([\d.eE+-]+)\s+(\w+)")
    parsed = {}
    for line in lines[start:end]:
        name, body = line.strip().split(":", 1)
        body = body.strip()
        match = re.search(r"(<=|>=|=)\s*([\d.eE+-]+)\s*$", body)
        sense, rhs = match.group(1), float(match.group(2))
        expr = body[: match.start()].strip()
        if not expr.startswith(("+", "-")):
            expr = "+ " + expr
        coeffs = {}
        for sign, coef, var in term_re.findall(expr):
            coeffs[var] = float(coef) * (1 if sign == "+" else -1)
        parsed[name] = (coeffs, sense, rhs)
    return parsed


def test_roundtrip_coefficients():
    """Export then re-parse: every constraint's coefficients, sense and
    rhs survive the text round trip exactly."""
    m, (x, y, z) = small_model()
    parsed = _parse_lp_constraints(model_to_lp(m))
    assert parsed["cap_one"] == ({"x": 1.0, "y_1_": 1.0}, "<=", 1.0)
    assert parsed["lower"] == ({"x": -1.0, "z": 2.0}, ">=", 1.0)
    assert parsed["tie"] == ({"x": 1.0, "z": 1.0}, "=", 3.0)


def test_roundtrip_matches_compiled_arrays():
    """The LP text and the sparse compilation describe the same rows."""
    from repro.opt.compile import SENSE_EQ, SENSE_GE, SENSE_LE

    m, _ = small_model()
    parsed = _parse_lp_constraints(model_to_lp(m))
    compiled = m.compiled()
    sense_token = {SENSE_LE: "<=", SENSE_GE: ">=", SENSE_EQ: "="}
    A = compiled.A_csr.toarray()
    for r in range(compiled.m):
        name = compiled.row_names[r].replace(" ", "_")
        coeffs, sense, rhs = parsed[name]
        assert sense == sense_token[int(compiled.senses[r])]
        assert rhs == pytest.approx(compiled.rhs[r])
        rebuilt = {v.name.replace("[", "_").replace("]", "_"): A[r, v.index]
                   for v in compiled.variables if A[r, v.index]}
        assert rebuilt == pytest.approx(coeffs)


def test_export_roundtrip_against_solver():
    """The exported text is a faithful picture: re-parsing the simple
    constraint lines and solving matches our solver's optimum."""
    m, (x, y, z) = small_model()
    sol = m.solve()
    # x + z == 3 with z <= 5, x binary; minimize 3x + 2y + z + 4
    # best: x=0, z=3, y=0 -> 3 + 4 = 7
    assert sol.objective == pytest.approx(7)
    text = model_to_lp(m)
    assert text.count("<=") >= 2  # constraint + bounds lines exist

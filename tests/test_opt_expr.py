"""Unit tests for the expression algebra (repro.opt.expr)."""

import pytest

from repro.errors import ModelError
from repro.opt import LinExpr, Model, QuadExpr, Sense, VarType, quicksum
from repro.opt.expr import Constraint


@pytest.fixture()
def model():
    return Model("expr-tests")


def test_var_creation_bounds(model):
    v = model.add_var("v", VarType.INTEGER, 2, 7)
    assert v.lb == 2 and v.ub == 7
    b = model.add_binary("b")
    assert (b.lb, b.ub) == (0, 1)


def test_var_bounds_validation(model):
    with pytest.raises(ModelError):
        model.add_var("bad", VarType.INTEGER, 5, 1)


def test_duplicate_names_rejected(model):
    model.add_binary("x")
    with pytest.raises(ModelError):
        model.add_binary("x")


def test_var_addition_builds_linexpr(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    e = x + y + 3
    assert isinstance(e, LinExpr)
    assert e.terms[x] == 1 and e.terms[y] == 1
    assert e.constant == 3


def test_var_scalar_multiplication(model):
    x = model.add_binary("x")
    e = 5 * x
    assert isinstance(e, LinExpr)
    assert e.terms[x] == 5


def test_subtraction_and_negation(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    e = x - y
    assert e.terms[x] == 1 and e.terms[y] == -1
    n = -x
    assert n.terms[x] == -1


def test_rsub(model):
    x = model.add_binary("x")
    e = 1 - x
    assert e.constant == 1 and e.terms[x] == -1


def test_var_times_var_is_quadratic(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    q = x * y
    assert isinstance(q, QuadExpr)
    assert len(q.quad_terms) == 1
    (pair, coef), = q.quad_terms.items()
    assert coef == 1 and set(pair) == {x, y}


def test_product_key_is_order_independent(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    assert (x * y).quad_terms.keys() == (y * x).quad_terms.keys()


def test_linexpr_times_linexpr(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    q = (x + 1) * (y + 2)
    assert isinstance(q, QuadExpr)
    assert q.constant == 2
    assert q.lin_terms[x] == 2 and q.lin_terms[y] == 1
    assert list(q.quad_terms.values()) == [1]


def test_quad_scalar_multiplication(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    q = 3 * (x * y)
    assert list(q.quad_terms.values()) == [3]


def test_quad_times_quad_rejected(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    with pytest.raises(ModelError):
        (x * y) * (x * y)


def test_zero_coefficients_dropped(model):
    x = model.add_binary("x")
    e = x - x
    assert isinstance(e, LinExpr)
    assert not e.terms


def test_comparison_builds_constraint(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    c = x + y <= 1
    assert isinstance(c, Constraint)
    assert c.sense is Sense.LE
    c2 = x >= y
    assert c2.sense is Sense.GE
    c3 = x + 2 * y == 2
    assert c3.sense is Sense.EQ


def test_constraint_satisfied(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    c = x + y <= 1
    assert c.satisfied({x: 1.0, y: 0.0})
    assert not c.satisfied({x: 1.0, y: 1.0})
    eq = x == y
    assert eq.satisfied({x: 1.0, y: 1.0})
    assert not eq.satisfied({x: 1.0, y: 0.0})


def test_expression_value_evaluation(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    lin = 2 * x + 3 * y + 1
    assert lin.value({x: 1.0, y: 1.0}) == 6
    quad = x * y + x + 1
    assert quad.value({x: 1.0, y: 0.0}) == 2
    assert quad.value({x: 1.0, y: 1.0}) == 3


def test_linexpr_bounds(model):
    x = model.add_var("x", VarType.INTEGER, -2, 3)
    y = model.add_binary("y")
    lo, hi = (2 * x - y + 1).bounds()
    assert lo == 2 * (-2) - 1 + 1
    assert hi == 2 * 3 - 0 + 1


def test_quicksum_empty():
    e = quicksum([])
    assert isinstance(e, LinExpr)
    assert e.constant == 0 and not e.terms


def test_quicksum_mixed(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    e = quicksum([x, 2 * y, 3, x * y])
    assert isinstance(e, QuadExpr)
    assert e.constant == 3
    assert e.lin_terms[x] == 1 and e.lin_terms[y] == 2
    assert len(e.quad_terms) == 1


def test_quicksum_accumulates_duplicates(model):
    x = model.add_binary("x")
    e = quicksum([x, x, x])
    assert e.terms[x] == 3


def test_vars_usable_as_dict_keys(model):
    x, y = model.add_binary("x"), model.add_binary("y")
    d = {x: 1, y: 2}
    assert d[x] == 1 and d[y] == 2
    assert len(d) == 2

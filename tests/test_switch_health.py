"""Tests for generalized valve arrays and hardware health masks.

Covers the HealthMask algebra (canonicalization, merge, digest), the
masking of crossbar and FPVA-grid structures (pruned segments/valves,
fresh structure keys, idempotence), reachability re-validation on the
degraded structure, and masked path enumeration.
"""

import pytest

from repro.errors import SwitchModelError
from repro.switches import (
    CrossbarSwitch,
    FPVAGrid,
    HealthMask,
    apply_health_mask,
    clear_path_cache,
    enumerate_paths,
    make_fpva,
    reachability_report,
)
from repro.switches.base import segment_key
from repro.switches.crossbar import SIZES
from repro.switches.validate import validate_switch


def internal_segment(switch):
    """A segment with no pin endpoint (masking it never strands a pin)."""
    return next(k for k in sorted(switch.segments)
                if not switch.is_pin(k[0]) and not switch.is_pin(k[1]))


# ----------------------------------------------------------------------
# HealthMask algebra
# ----------------------------------------------------------------------
def test_mask_canonicalizes_endpoints():
    mask = HealthMask(stuck_closed=frozenset({("Z", "A")}))
    assert mask.stuck_closed == {segment_key("A", "Z")}
    assert mask.kind_of("A", "Z") == "stuck_closed"
    assert mask.kind_of("Z", "A") == "stuck_closed"
    assert mask.kind_of("A", "B") is None


def test_mask_from_triples_roundtrip_and_digest_is_order_free():
    a = HealthMask.from_triples(
        [("C", "L", "stuck_open"), ("A", "B", "blocked_segment")])
    b = HealthMask.from_triples(
        [("B", "A", "blocked_segment"), ("L", "C", "stuck_open")])
    assert a == b
    assert a.digest() == b.digest()
    assert a.triples() == [("A", "B", "blocked_segment"),
                           ("C", "L", "stuck_open")]
    assert HealthMask.from_triples(a.triples()) == a


def test_mask_rejects_unknown_kind():
    with pytest.raises(SwitchModelError, match="unknown fault kind"):
        HealthMask.from_triples([("A", "B", "melted")])


def test_mask_from_faults_accepts_sim_valvefaults():
    from repro.sim import blocked_segment, stuck_closed, stuck_open

    mask = HealthMask.from_faults([
        stuck_open("L", "C"), stuck_closed("A", "B"),
        blocked_segment("X", "Y", onset=3),
    ])
    assert mask.stuck_open == {("C", "L")}
    assert mask.stuck_closed == {("A", "B")}
    assert mask.blocked == {("X", "Y")}
    assert len(mask.dead_segments) == 3


def test_mask_merge_unions_kinds():
    a = HealthMask.from_triples([("A", "B", "stuck_open")])
    b = HealthMask.from_triples([("C", "D", "stuck_closed")])
    merged = a.merge(b)
    assert merged.dead_segments == {("A", "B"), ("C", "D")}
    assert merged.digest() != a.digest() != b.digest()
    assert HealthMask().is_empty
    assert not merged.is_empty


# ----------------------------------------------------------------------
# masking a structure
# ----------------------------------------------------------------------
def test_with_health_prunes_segments_valves_and_graph():
    switch = CrossbarSwitch(8)
    seg = internal_segment(switch)
    masked = switch.with_health(
        HealthMask.from_triples([(*seg, "stuck_closed")]))
    assert seg not in masked.segments
    assert seg not in masked.valves
    assert not masked.graph.has_edge(*seg)
    assert len(masked.segments) == len(switch.segments) - 1
    assert masked.structure_key() != switch.structure_key()
    assert masked.health.kind_of(*seg) == "stuck_closed"
    # the original is untouched
    assert seg in switch.segments
    assert switch.health is None


def test_with_health_is_idempotent_and_merges_from_pristine():
    switch = CrossbarSwitch(8)
    segs = sorted(switch.segments)
    first = HealthMask.from_triples([(*internal_segment(switch), "blocked_segment")])
    once = switch.with_health(first)
    twice = once.with_health(first)
    assert twice.health == once.health
    assert set(twice.segments) == set(once.segments)
    # a second fault accumulates onto the pristine structure
    other = next(k for k in segs
                 if k != internal_segment(switch))
    more = once.with_health(HealthMask.from_triples([(*other, "stuck_open")]))
    assert more.health.dead_segments == \
        first.dead_segments | {other}
    assert len(more.segments) == len(switch.segments) - 2


def test_with_health_rejects_unknown_segments():
    switch = CrossbarSwitch(8)
    with pytest.raises(SwitchModelError, match="not in"):
        switch.with_health(
            HealthMask.from_triples([("NO", "PE", "stuck_closed")]))


def test_empty_mask_is_a_no_op():
    switch = CrossbarSwitch(8)
    assert switch.with_health(HealthMask()) is switch


def test_apply_health_mask_requires_a_mask():
    with pytest.raises(SwitchModelError, match="HealthMask"):
        apply_health_mask(CrossbarSwitch(8), {("A", "B")})


# ----------------------------------------------------------------------
# reachability on the degraded structure
# ----------------------------------------------------------------------
def test_reachability_clean_on_healthy_switch():
    report = reachability_report(CrossbarSwitch(8))
    assert report.fully_connected
    assert report.dead_pins == ()
    assert report.unreachable_pairs == ()


def test_masking_a_pin_stub_strands_the_pin():
    switch = CrossbarSwitch(8)
    pin = switch.pins[0]
    (stub,) = [k for k in switch.segments if pin in k]
    masked = switch.with_health(
        HealthMask.from_triples([(*stub, "blocked_segment")]))
    report = reachability_report(masked)
    assert report.dead_pins == (pin,)
    assert not report.fully_connected


def test_disconnecting_mask_reports_unreachable_pairs():
    grid = make_fpva(2, 2)  # 4 junctions, 4 pins: a single square
    # cut the square into two halves: g0_0-g0_1 and g1_0-g1_1
    masked = grid.with_health(HealthMask.from_triples([
        ("g0_0", "g0_1", "stuck_closed"),
        ("g1_0", "g1_1", "stuck_closed"),
    ]))
    report = reachability_report(masked)
    assert report.dead_pins == ()
    assert report.unreachable_pairs
    for a, b in report.unreachable_pairs:
        assert a != b


# ----------------------------------------------------------------------
# generalized valve arrays
# ----------------------------------------------------------------------
def test_fpva_grid_structure():
    grid = FPVAGrid(3, 4)
    assert grid.n_pins == 2 * 3 + 2 * 4 - 4
    assert len(grid.nodes) == 12
    # lattice edges + one stub per pin
    assert len(grid.segments) == (3 * 3 + 2 * 4) + grid.n_pins
    assert len(grid.valves) == len(grid.segments)
    validate_switch(grid)


def test_fpva_grid_rejects_degenerate_sizes():
    with pytest.raises(SwitchModelError):
        FPVAGrid(1, 4)
    with pytest.raises(SwitchModelError):
        make_fpva(2, 1)


def test_scaled_crossbars_validate():
    assert set(SIZES) == {8, 12, 16, 24, 32}
    for pins in (24, 32):
        switch = CrossbarSwitch(pins)
        assert switch.n_pins == pins
        validate_switch(switch)


# ----------------------------------------------------------------------
# masked path enumeration
# ----------------------------------------------------------------------
def test_masked_catalog_avoids_dead_segments_and_recovers_reachability():
    clear_path_cache()
    switch = CrossbarSwitch(8)
    seg = internal_segment(switch)
    masked = switch.with_health(
        HealthMask.from_triples([(*seg, "stuck_open")]))
    healthy_paths = enumerate_paths(switch)
    masked_paths = enumerate_paths(masked)
    clear_path_cache()
    assert all(seg not in p.segments for p in masked_paths)
    assert any(seg in p.segments for p in healthy_paths)
    assert len(masked_paths) < len(healthy_paths)
    # every surviving pin pair still appears in the masked catalog
    assert reachability_report(masked).fully_connected
    pairs = {(p.source_pin, p.target_pin) for p in masked_paths}
    healthy_pairs = {(p.source_pin, p.target_pin) for p in healthy_paths}
    assert pairs == healthy_pairs

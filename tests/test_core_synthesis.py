"""Integration tests for the synthesizer on small cases.

All cases here are deliberately tiny (8-pin, ≤4 flows, mostly fixed
binding) so each solve stays in the tens of milliseconds.
"""

import pytest

from repro.core import (
    BindingPolicy,
    ConflictForm,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
    SynthesisOptions,
    SynthesisStatus,
    conflict_pair,
    synthesize,
    verify_result,
)
from repro.switches import CrossbarSwitch


def fixed_spec(flows, conflicts=frozenset(), fixed=None, modules=None, **kw):
    modules = modules or sorted({f.source for f in flows} | {f.target for f in flows})
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=modules,
        flows=flows,
        conflicts=set(conflicts),
        binding=BindingPolicy.FIXED,
        fixed_binding=fixed,
        name="test-case",
        **kw,
    )


def test_single_flow():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "B1"})
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    assert res.num_flow_sets == 1
    assert res.flow_paths[1].source_pin == "T1"
    assert res.flow_paths[1].target_pin == "B1"
    # shortest T1->B1 route measures 0.7 + 1 + 1 + 0.7
    assert res.flow_channel_length == pytest.approx(3.4)


def test_no_flows_binding_only():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["a", "b"],
        flows=[],
        binding=BindingPolicy.UNFIXED,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    assert res.num_flow_sets == 0
    assert res.flow_channel_length == 0
    assert set(res.binding) == {"a", "b"}


def test_conflicting_flows_routed_apart():
    spec = fixed_spec(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        fixed={"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    p1, p2 = res.flow_paths[1], res.flow_paths[2]
    assert not (set(p1.nodes) & set(p2.nodes))
    assert not (set(p1.segments) & set(p2.segments))


def test_impossible_conflict_is_no_solution():
    """Three pairwise-conflicting flows with interleaved fixed pins must
    cross on a planar switch -> provably infeasible."""
    spec = fixed_spec(
        [Flow(1, "m1", "r1"), Flow(2, "m2", "r2"), Flow(3, "m3", "r3")],
        conflicts={conflict_pair(1, 2), conflict_pair(1, 3), conflict_pair(2, 3)},
        fixed={"m1": "T1", "m2": "T2", "m3": "R1",
               "r1": "R2", "r2": "B2", "r3": "B1"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.NO_SOLUTION


def test_same_inlet_flows_share_one_set():
    """Branching flows from one inlet always fit into a single set."""
    spec = fixed_spec(
        [Flow(1, "src", "o1"), Flow(2, "src", "o2"), Flow(3, "src", "o3")],
        fixed={"src": "T1", "o1": "B1", "o2": "B2", "o3": "R2"},
    )
    res = synthesize(spec)
    assert res.num_flow_sets == 1


def test_colliding_inlets_split_into_sets():
    """Two flows from different inlets forced through the same corridor
    must land in different flow sets."""
    spec = fixed_spec(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        # both enter at the top-left corner region: T1->L1 and L1?? use
        # pins that force sharing the TL corner: T1->L2 and L1->B1
        fixed={"i1": "T1", "o1": "L2", "i2": "L1", "o2": "B1"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    p1, p2 = res.flow_paths[1], res.flow_paths[2]
    if set(p1.nodes) & set(p2.nodes):
        assert res.num_flow_sets == 2
        assert res.set_of_flow(1) != res.set_of_flow(2)


def test_objective_composition():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "B1"},
                      alpha=1.0, beta=100.0)
    res = synthesize(spec)
    assert res.objective == pytest.approx(
        1.0 * res.num_flow_sets + 100.0 * res.flow_channel_length
    )


def test_alpha_zero_still_solves():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "B1"},
                      alpha=0.0)
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL


def test_result_verifies(tmp_path):
    spec = fixed_spec(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        fixed={"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
    )
    res = synthesize(spec, SynthesisOptions(verify=False))
    verify_result(res)  # explicit second pass


def test_used_segments_match_paths():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "R1"})
    res = synthesize(spec)
    derived = set()
    for p in res.flow_paths.values():
        derived |= set(p.segments)
    assert derived == set(res.used_segments)
    assert res.reduced is not None
    assert set(res.reduced.used_segments) == derived


def test_table_row_shapes():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "B1"})
    row = synthesize(spec).table_row()
    assert {"case", "#m", "sw. size", "binding", "T(s)", "L(mm)", "#v", "#s"} <= set(row)
    bad = fixed_spec(
        [Flow(1, "m1", "r1"), Flow(2, "m2", "r2"), Flow(3, "m3", "r3")],
        conflicts={conflict_pair(1, 2), conflict_pair(1, 3), conflict_pair(2, 3)},
        fixed={"m1": "T1", "m2": "T2", "m3": "R1",
               "r1": "R2", "r2": "B2", "r3": "B1"},
    )
    row2 = synthesize(bad).table_row()
    assert row2["result"] == "no solution"


@pytest.mark.parametrize("form", [SchedulingForm.PAPER, SchedulingForm.COMPACT])
def test_scheduling_forms_equivalent(form):
    """The paper's K/k/q' encoding and the compact indicator encoding
    must produce identical optimal objectives."""
    spec = fixed_spec(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2"), Flow(3, "i1", "o3")],
        fixed={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "B2", "o3": "R2"},
        scheduling_form=form,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    # stash for cross-check
    test_scheduling_forms_equivalent.results[form] = res.objective


test_scheduling_forms_equivalent.results = {}


def test_scheduling_forms_same_objective():
    results = test_scheduling_forms_equivalent.results
    if len(results) == 2:
        a, b = results.values()
        assert a == pytest.approx(b)


@pytest.mark.parametrize("policy", [NodePolicy.ALL, NodePolicy.PAPER])
def test_node_policies_solve(policy):
    spec = fixed_spec(
        [Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        fixed={"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"},
        node_policy=policy,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL


def test_aggregate_conflict_form_is_stricter():
    """With AGGREGATE even non-paired flows in CF may not share sites,
    so the objective can only get worse (here: same or infeasible)."""
    # flow 1 (T1->B1) and flow 3 (L1->L2) share the left corridor but do
    # not conflict pairwise; under AGGREGATE they may no longer share it,
    # and flow 1's unique shortest path makes that infeasible.
    flows = [Flow(1, "i1", "o1"), Flow(2, "i2", "o2"), Flow(3, "i3", "o3")]
    fixed = {"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2", "i3": "L1", "o3": "L2"}
    pair_spec = fixed_spec(flows, {conflict_pair(1, 2), conflict_pair(2, 3)},
                           fixed=fixed, conflict_form=ConflictForm.PAIRWISE)
    agg_spec = fixed_spec(flows, {conflict_pair(1, 2), conflict_pair(2, 3)},
                          fixed=fixed, conflict_form=ConflictForm.AGGREGATE)
    res_pair = synthesize(pair_spec)
    res_agg = synthesize(agg_spec)
    assert res_pair.status is SynthesisStatus.OPTIMAL
    if res_agg.status.solved:
        assert res_agg.objective >= res_pair.objective - 1e-6


def test_backtrack_backend_on_tiny_case():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "B1"})
    res = synthesize(spec, SynthesisOptions(backend="backtrack"))
    assert res.status is SynthesisStatus.OPTIMAL
    assert res.flow_channel_length == pytest.approx(3.4)


def test_branch_bound_backend_on_tiny_case():
    spec = fixed_spec([Flow(1, "src", "dst")], fixed={"src": "T1", "dst": "B1"})
    res = synthesize(spec, SynthesisOptions(backend="branch_bound"))
    assert res.status is SynthesisStatus.OPTIMAL
    assert res.flow_channel_length == pytest.approx(3.4)

"""Tests for flow-set ordering (repro.core.set_ordering)."""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    best_set_order,
    count_valve_transitions,
    optimize_set_order,
    reorder_sets,
    synthesize,
)
from repro.core.verify import verify_result
from repro.errors import ReproError
from repro.sim import simulate
from repro.switches import CrossbarSwitch


def multi_set_result():
    """Three inlets through the same corridor: three serialized sets."""
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "i3", "o1", "o2", "o3"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2"), Flow(3, "i3", "o3")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "B2",
                       "i3": "T2", "o3": "L2"},
    )
    res = synthesize(spec)
    assert res.status.solved
    return res


def test_transition_count_consistent_with_program():
    res = multi_set_result()
    if res.num_flow_sets < 2:
        pytest.skip("case collapsed to one set")
    from repro.control import compile_program

    transitions = count_valve_transitions(res)
    assert transitions >= 0
    # the pneumatic program's per-inlet transitions can only be fewer
    # (pressure groups aggregate identical valve traces)
    program = compile_program(res)
    assert program.transitions() <= transitions


def test_best_order_never_worse():
    res = multi_set_result()
    baseline = count_valve_transitions(res)
    order, cost = best_set_order(res)
    assert sorted(order) == list(range(res.num_flow_sets))
    assert cost <= baseline


def test_reorder_preserves_validity():
    res = multi_set_result()
    if res.num_flow_sets < 2:
        pytest.skip("case collapsed to one set")
    order, _ = best_set_order(res)
    reordered = reorder_sets(res, list(reversed(order)))
    verify_result(reordered)
    assert simulate(reordered).is_clean


def test_optimize_set_order_end_to_end():
    res = multi_set_result()
    optimized = optimize_set_order(res)
    assert count_valve_transitions(optimized) <= count_valve_transitions(res)
    verify_result(optimized)
    assert simulate(optimized).is_clean


def test_single_set_trivial():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["a", "b"],
        flows=[Flow(1, "a", "b")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"a": "T1", "b": "B1"},
    )
    res = synthesize(spec)
    order, cost = best_set_order(res)
    assert order == [0] or order == []
    assert cost == 0
    assert optimize_set_order(res) is res


def test_bad_permutation_rejected():
    res = multi_set_result()
    with pytest.raises(ReproError):
        reorder_sets(res, [0] * res.num_flow_sets)

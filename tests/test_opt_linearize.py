"""Unit tests for exact product linearization (repro.opt.linearize)."""

import itertools

import pytest

from repro.errors import LinearizationError
from repro.opt import Model, VarType, quicksum
from repro.opt.linearize import linearize


def brute_force_binary(model):
    """Enumerate all binary assignments; return (best objective, best)."""
    variables = model.variables
    best = None
    best_val = None
    for bits in itertools.product([0.0, 1.0], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if model.check_assignment(assignment):
            continue
        obj = model.objective.value(assignment)
        if not model.minimize:
            obj = -obj
        if best_val is None or obj < best_val:
            best_val = obj
            best = assignment
    if best is None:
        return None, None
    true_obj = model.objective.value(best)
    return true_obj, best


def test_binary_product_linearization_exact():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y >= 1)
    lin, products = linearize(m)
    assert lin.is_linear()
    assert len(products) == 1
    sol = lin.solve()
    assert sol.value(x) == 1 and sol.value(y) == 1


def test_square_of_binary_is_itself():
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x * x >= 1)
    lin, products = linearize(m)
    sol = lin.solve()
    assert sol.value(x) == 1
    # no auxiliary variable should have been created
    assert all(z is x for z in products.values())


def test_square_of_integer_rejected():
    m = Model()
    z = m.add_integer("z", 0, 5)
    m.add_constr(z * z <= 4)
    with pytest.raises(LinearizationError):
        linearize(m)


def test_product_cache_shared_across_constraints():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x * y <= 1)
    m.add_constr(x * y >= 0)
    m.set_objective(x * y, "min")
    lin, products = linearize(m)
    assert len(products) == 1  # one aux var reused everywhere


def test_binary_times_bounded_integer():
    m = Model()
    b = m.add_binary("b")
    z = m.add_integer("z", 0, 7)
    m.add_constr(z >= 3)
    # maximize b*z subject to b*z <= 5 forces b=1, z in [3,5]
    m.add_constr(b * z <= 5)
    m.set_objective(b * z, "max")
    sol = m.solve()
    assert sol.objective == pytest.approx(5)
    assert sol.value(b) == 1
    assert sol.value(z) == pytest.approx(5)


def test_unbounded_product_rejected():
    m = Model()
    b = m.add_binary("b")
    z = m.add_integer("z", 0)  # unbounded above
    m.add_constr(b * z <= 5)
    with pytest.raises(LinearizationError):
        linearize(m)


def test_continuous_product_rejected():
    m = Model()
    c1 = m.add_var("c1", VarType.CONTINUOUS, 0, 1)
    c2 = m.add_var("c2", VarType.CONTINUOUS, 0, 1)
    m.add_constr(c1 * c2 <= 1)
    with pytest.raises(LinearizationError):
        linearize(m)


@pytest.mark.parametrize("seed", range(6))
def test_linearized_optimum_matches_brute_force(seed):
    """Random small quadratic binary programs: solver == enumeration."""
    import random

    rng = random.Random(seed)
    m = Model(f"rand{seed}")
    n = 4
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    # random quadratic objective
    obj = quicksum(
        rng.randint(-3, 3) * xs[i] * xs[j]
        for i in range(n) for j in range(i + 1, n)
    ) + quicksum(rng.randint(-3, 3) * x for x in xs)
    m.set_objective(obj, "min")
    m.add_constr(quicksum(xs) >= 1)
    m.add_constr(quicksum(xs) <= 3)

    expected_obj, _ = brute_force_binary(m)
    sol = m.solve()
    assert sol.is_optimal
    assert sol.objective == pytest.approx(expected_obj)


def test_quadratic_objective_value_reported_in_original_terms():
    m = Model()
    x, y = m.add_binary("x"), m.add_binary("y")
    m.add_constr(x + y >= 2)
    m.set_objective(5 * (x * y) + 1, "min")
    sol = m.solve()
    assert sol.objective == pytest.approx(6)
    # evaluating the original quadratic under the solution agrees
    assert m.objective.value({v: sol.value(v) for v in m.variables}) == pytest.approx(6)

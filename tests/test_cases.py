"""Tests for the reconstructed application cases and the generator."""

import pytest

from repro.cases import (
    CASE_REGISTRY,
    EXAMPLE_FLOW_TABLE,
    chip_sw1,
    chip_sw2,
    example_4_2,
    generate_case,
    kinase_sw1,
    kinase_sw2,
    mrna_isolation,
    nucleic_acid,
    suite_90,
)
from repro.core import BindingPolicy
from repro.errors import SpecError


@pytest.mark.parametrize("factory", list(CASE_REGISTRY.values()))
@pytest.mark.parametrize("binding", list(BindingPolicy))
def test_all_cases_build_under_all_policies(factory, binding):
    spec = factory(binding)
    assert spec.binding is binding
    spec.validate()


def test_chip_sw1_matches_paper_features():
    """Table 4.1 row 1: 9 connected modules, 12-pin switch, conflicts
    between flows from i_10 and i_11."""
    spec = chip_sw1(BindingPolicy.UNFIXED)
    assert len(spec.modules) == 9
    assert spec.switch.n_pins == 12
    conflicted = {fid for pair in spec.conflicts for fid in pair}
    sources = {spec.flow(fid).source for fid in conflicted}
    assert sources == {"i_10", "i_11"}


def test_chip_sw2_matches_paper_features():
    spec = chip_sw2(BindingPolicy.UNFIXED)
    assert len(spec.modules) == 10
    assert spec.switch.n_pins == 12
    assert not spec.conflicts


def test_nucleic_acid_matches_paper_features():
    """Table 4.1 row 2: 7 modules, 8-pin switch, dedicated chambers."""
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    assert len(spec.modules) == 7
    assert spec.switch.n_pins == 8
    assert len(spec.flows) == 3
    assert len(spec.conflicts) == 3  # all pairs


def test_mrna_matches_paper_features():
    """Table 4.1 row 3: 10 modules, 12-pin switch."""
    spec = mrna_isolation(BindingPolicy.UNFIXED)
    assert len(spec.modules) == 10
    assert spec.switch.n_pins == 12
    assert len(spec.conflicts) == 6  # all pairs among the four transfers


def test_kinase_module_counts():
    assert len(kinase_sw1(BindingPolicy.UNFIXED).modules) == 4
    assert len(kinase_sw2(BindingPolicy.UNFIXED).modules) == 6


def test_example_4_2_matches_table():
    """Table 4.2 input: 12 modules, clockwise order 1..12, flows
    1->(7,10,11), 2->(5,8,9), 3->(4,6,12)."""
    spec = example_4_2()
    assert len(spec.modules) == 12
    assert spec.binding is BindingPolicy.CLOCKWISE
    assert spec.module_order == [f"m{i}" for i in range(1, 13)]
    assert len(spec.flows) == 9
    by_source = {}
    for f in spec.flows:
        by_source.setdefault(f.source, set()).add(f.target)
    assert by_source == {
        "m1": {"m7", "m10", "m11"},
        "m2": {"m5", "m8", "m9"},
        "m3": {"m4", "m6", "m12"},
    }
    assert len(EXAMPLE_FLOW_TABLE) == 9


def test_scalable_variants():
    spec = chip_sw1(BindingPolicy.UNFIXED, scalable=True)
    assert "scalable" in spec.switch.name
    assert spec.switch.n_pins == 12


def test_generate_case_reproducible():
    a = generate_case(seed=42, n_flows=4, n_conflicts=2)
    b = generate_case(seed=42, n_flows=4, n_conflicts=2)
    assert [f.source for f in a.flows] == [f.source for f in b.flows]
    assert a.conflicts == b.conflicts
    c = generate_case(seed=43, n_flows=4, n_conflicts=2)
    assert (
        [f.source for f in a.flows] != [f.source for f in c.flows]
        or a.conflicts != c.conflicts
        or True  # different seeds may coincide; at least both validate
    )


def test_generate_case_respects_parameters():
    spec = generate_case(seed=7, switch_size=12, n_flows=5, n_inlets=3,
                         n_conflicts=2, binding=BindingPolicy.CLOCKWISE)
    assert spec.switch.n_pins == 12
    assert len(spec.flows) == 5
    assert len(spec.inlet_modules) == 3
    # conflicts are closed over fluids, so the count can exceed the
    # sampled number but never the cross-inlet pair count
    max_pairs = sum(
        1 for i, a in enumerate(spec.flows) for b in spec.flows[i + 1:]
        if a.source != b.source
    )
    assert len(spec.conflicts) <= max_pairs
    assert spec.module_order is not None


def test_generate_case_conflicts_cross_inlet_only():
    spec = generate_case(seed=3, n_flows=4, n_inlets=2, n_conflicts=6)
    for pair in spec.conflicts:
        i, j = sorted(pair)
        assert spec.flow(i).source != spec.flow(j).source


def test_generate_case_too_large_rejected():
    with pytest.raises(SpecError):
        generate_case(seed=0, switch_size=8, n_flows=8, n_inlets=2)


def test_suite_90_shape():
    specs = suite_90()
    assert len(specs) == 90
    sizes = {s.switch.n_pins for s in specs}
    assert sizes == {8, 12}
    policies = {s.binding for s in specs}
    assert policies == set(BindingPolicy)
    # names unique
    names = [s.name for s in specs]
    assert len(set(names)) == 90

"""Tests for fault-aware self-healing synthesis (repro.repair).

Covers the compact fault syntax, fault detection through the tick
engine, the repair loop (masking, warm seeding, re-synthesis,
verification), the determinism contract across parallel_bb worker
counts, and the degradation path when a repair cannot re-solve.
"""

import pytest

from repro.cases import generate_case
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    SynthesisStatus,
    synthesize,
)
from repro.core.verify import verify_result
from repro.errors import RepairError
from repro.repair import (
    as_mask,
    detect_faults,
    mask_spec,
    parse_faults,
    repair,
)
from repro.sim.faults import FaultKind, ValveFault, stuck_closed

OPTS = SynthesisOptions(time_limit=60)


def solved_case(seed=0, **kwargs):
    kwargs.setdefault("switch_size", 8)
    kwargs.setdefault("n_flows", 2)
    kwargs.setdefault("n_inlets", 2)
    kwargs.setdefault("n_conflicts", 0)
    kwargs.setdefault("binding", BindingPolicy.FIXED)
    spec = generate_case(seed=seed, **kwargs)
    result = synthesize(spec, OPTS)
    assert result.status.solved
    return result


def internal_used_segment(result):
    """A routed segment whose endpoints are both junctions, so masking
    it forces a reroute without stranding a bound pin."""
    switch = result.spec.switch
    return next(k for k in sorted(result.used_segments)
                if not switch.is_pin(k[0]) and not switch.is_pin(k[1]))


# ----------------------------------------------------------------------
# fault syntax
# ----------------------------------------------------------------------
def test_parse_faults_full_syntax():
    faults = parse_faults("T1-TL:stuck_closed; C-L:blocked@2 ;A-B:open")
    assert [f.kind for f in faults] == [
        FaultKind.STUCK_CLOSED, FaultKind.BLOCKED_SEGMENT,
        FaultKind.STUCK_OPEN]
    assert faults[1].segment == ("C", "L")
    assert faults[1].onset == 2
    assert faults[0].onset == 0


def test_parse_faults_defaults_to_stuck_closed():
    (fault,) = parse_faults("A-B")
    assert fault.kind is FaultKind.STUCK_CLOSED


@pytest.mark.parametrize("bad", ["", ";;", "AB:open", "A-B:melted",
                                 "A-B:open@soon"])
def test_parse_faults_rejects_malformed(bad):
    with pytest.raises(RepairError):
        parse_faults(bad)


def test_as_mask_and_mask_spec():
    result = solved_case()
    seg = internal_used_segment(result)
    mask = as_mask([stuck_closed(*seg)])
    assert mask.dead_segments == {seg}
    assert as_mask(mask) is mask
    degraded = mask_spec(result.spec, mask)
    assert degraded.switch.health == mask
    assert seg not in degraded.switch.segments
    with pytest.raises(RepairError, match="empty"):
        mask_spec(result.spec, [])


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
def test_detect_classifies_impacted_and_benign():
    result = solved_case()
    used = internal_used_segment(result)
    unused = next(k for k in sorted(result.spec.switch.segments)
                  if k not in result.used_segments)
    detection = detect_faults(
        result, [stuck_closed(*used), stuck_closed(*unused)])
    assert detection.detected
    assert detection.impacted_flows
    assert [f.segment for f in detection.benign_faults] == [unused]
    assert "impacted" in detection.summary()


def test_detect_mid_campaign_onset_is_observable():
    result = solved_case()
    seg = internal_used_segment(result)
    late = ValveFault(seg, FaultKind.STUCK_CLOSED, onset=1)
    detection = detect_faults(result, [late])
    assert detection.detected
    # the fault plan is preserved verbatim, onset included
    assert detection.faults[0].onset == 1


def test_detect_requires_faults_and_a_solved_result():
    result = solved_case()
    with pytest.raises(RepairError):
        detect_faults(result, [])
    import dataclasses

    broken = dataclasses.replace(result, status=SynthesisStatus.ERROR)
    with pytest.raises(RepairError):
        detect_faults(broken, [stuck_closed("A", "B")])


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
def test_repair_reroutes_around_the_fault_and_verifies():
    prior = solved_case()
    seg = internal_used_segment(prior)
    outcome = repair(prior, [stuck_closed(*seg)], OPTS)
    assert outcome.solved
    assert not outcome.degraded
    assert outcome.rerouted_flows  # the fault hit a used segment
    assert seg in outcome.mask.dead_segments
    verify_result(outcome.repaired)
    for path in outcome.repaired.flow_paths.values():
        assert not (set(path.segments) & outcome.mask.dead_segments)


def test_repair_on_benign_fault_keeps_every_flow():
    prior = solved_case()
    unused = next(k for k in sorted(prior.spec.switch.segments)
                  if k not in prior.used_segments
                  and not prior.spec.switch.is_pin(k[0])
                  and not prior.spec.switch.is_pin(k[1]))
    outcome = repair(prior, [stuck_closed(*unused)], OPTS)
    assert outcome.solved
    assert not outcome.rerouted_flows
    assert set(outcome.surviving_flows) == set(prior.flow_paths)
    assert outcome.repaired.objective == prior.objective


def test_repair_masks_accumulate_across_rounds():
    prior = solved_case()
    first = internal_used_segment(prior)
    once = repair(prior, [stuck_closed(*first)], OPTS)
    assert once.solved
    second = internal_used_segment(once.repaired)
    assert second != first
    twice = repair(once.repaired, [stuck_closed(*second)], OPTS)
    assert twice.solved
    assert twice.mask.dead_segments == {first, second}
    verify_result(twice.repaired)


def test_repair_requires_a_solved_prior():
    prior = solved_case()
    import dataclasses

    broken = dataclasses.replace(prior, status=SynthesisStatus.ERROR)
    with pytest.raises(RepairError, match="solved prior"):
        repair(broken, [stuck_closed("A", "B")])


def test_repair_reports_infeasible_when_mask_strands_a_bound_pin():
    prior = solved_case()
    switch = prior.spec.switch
    pin = next(iter(prior.binding.values()))
    (stub,) = [k for k in switch.segments if pin in k]
    outcome = repair(prior, [stuck_closed(*stub)], OPTS)
    assert pin in outcome.reachability.dead_pins
    assert not outcome.solved


# ----------------------------------------------------------------------
# determinism across worker counts
# ----------------------------------------------------------------------
def test_repair_is_deterministic_across_parallel_bb_workers():
    prior = solved_case()
    seg = internal_used_segment(prior)
    fingerprints = []
    for workers in (1, 2, 4):
        opts = SynthesisOptions(backend=f"parallel_bb:{workers}",
                                time_limit=60)
        outcome = repair(prior, [stuck_closed(*seg)], opts)
        assert outcome.solved
        verify_result(outcome.repaired)
        fingerprints.append((
            outcome.repaired.objective,
            outcome.repaired.binding,
            {f: p.vertices for f, p in
             outcome.repaired.flow_paths.items()},
            outcome.repaired.counters.get("node_order_hash"),
        ))
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]

"""Edge-case tests across modules (paths less travelled)."""

import pytest

from repro.analysis import area_estimate
from repro.cases import CaseBuilder, generate_case
from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisOptions,
    SynthesisStatus,
    synthesize,
    synthesize_greedy,
)
from repro.io import spec_from_dict, spec_to_dict
from repro.sim import simulate
from repro.switches import CrossbarSwitch, GRUSwitch, SpineSwitch


# ----------------------------------------------------------------------
# synthesis corner cases
# ----------------------------------------------------------------------
def test_full_house_binding():
    """Exactly as many modules as pins: the binding is a bijection."""
    sw = CrossbarSwitch(8)
    modules = [f"m{i}" for i in range(8)]
    spec = SwitchSpec(
        switch=sw,
        modules=modules,
        flows=[Flow(1, "m0", "m1")],
        binding=BindingPolicy.UNFIXED,
    )
    res = synthesize(spec, SynthesisOptions(time_limit=60))
    assert res.status.solved
    assert sorted(res.binding.values()) == sorted(sw.pins)


def test_max_sets_equals_flow_count_is_default():
    spec = generate_case(seed=1, n_flows=4, n_inlets=2, n_conflicts=0,
                         binding=BindingPolicy.FIXED)
    assert spec.effective_max_sets() == 4


def test_single_module_single_pin_switch_case():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["only"],
        flows=[],
        binding=BindingPolicy.UNFIXED,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    assert res.table_row()["#s"] == 0


def test_timeout_table_row():
    from repro.core.solution import SynthesisResult

    spec = generate_case(seed=1, n_flows=2, n_inlets=2, n_conflicts=0,
                         binding=BindingPolicy.FIXED)
    row = SynthesisResult(spec, SynthesisStatus.TIMEOUT, runtime=1.0).table_row()
    assert row["result"] == "timeout"
    assert "L(mm)" not in row


def test_backend_branch_bound_full_pipeline():
    spec = generate_case(seed=2, n_flows=2, n_inlets=2, n_conflicts=1,
                         binding=BindingPolicy.FIXED)
    res = synthesize(spec, SynthesisOptions(backend="branch_bound",
                                            time_limit=120))
    assert res.status in (SynthesisStatus.OPTIMAL, SynthesisStatus.NO_SOLUTION)


# ----------------------------------------------------------------------
# simulator options
# ----------------------------------------------------------------------
def test_dont_care_open_still_clean():
    spec = (CaseBuilder(switch_size=8)
            .flow("i1", "o1").flow("i2", "o2")
            .fixed(i1="T1", o1="B1", i2="L1", o2="B2")
            .build())
    res = synthesize(spec)
    assert simulate(res, dont_care_open=False).is_clean
    assert simulate(res, dont_care_open=True).is_clean


# ----------------------------------------------------------------------
# heuristic corner cases
# ----------------------------------------------------------------------
def test_greedy_clockwise_full_ring():
    """12 modules on a 12-pin switch: the spread uses every pin."""
    modules = [f"m{i}" for i in range(1, 13)]
    spec = SwitchSpec(
        switch=CrossbarSwitch(12),
        modules=modules,
        flows=[Flow(1, "m1", "m7")],
        binding=BindingPolicy.CLOCKWISE,
        module_order=modules,
    )
    res = synthesize_greedy(spec)
    assert res.status is SynthesisStatus.FEASIBLE
    assert len(set(res.binding.values())) == 12


def test_greedy_on_gru_switch():
    """The heuristic is topology-generic too."""
    gru = GRUSwitch(8)
    spec = SwitchSpec(
        switch=gru,
        modules=["a", "b"],
        flows=[Flow(1, "a", "b")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"a": "TL", "b": "BR"},
    )
    res = synthesize_greedy(spec)
    assert res.status is SynthesisStatus.FEASIBLE


# ----------------------------------------------------------------------
# io / analysis details
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family,cls,pins", [
    ("spine", SpineSwitch, 12),
    ("gru", GRUSwitch, 12),
])
def test_io_roundtrip_other_sizes(family, cls, pins):
    from repro.io import switch_from_dict, switch_to_dict

    back = switch_from_dict(switch_to_dict(cls(pins)))
    assert type(back) is cls and back.n_pins == pins


def test_spec_json_defaults():
    """Missing optional keys fall back to the documented defaults."""
    spec = spec_from_dict({
        "modules": ["a", "b"],
        "flows": [{"id": 1, "source": "a", "target": "b"}],
    })
    assert spec.switch.n_pins == 8
    assert spec.binding is BindingPolicy.UNFIXED
    assert spec.alpha == 1.0 and spec.beta == 100.0


def test_area_estimate_without_pressure_sharing():
    spec = (CaseBuilder(switch_size=8)
            .flow("i1", "o1").flow("i2", "o2")
            .fixed(i1="T1", o1="B1", i2="L1", o2="B2")
            .build())
    res = synthesize(spec, SynthesisOptions(pressure_sharing=False))
    assert res.pressure is None
    area = area_estimate(res)
    # falls back to one inlet per essential valve
    assert area["control"] == pytest.approx(res.num_valves * 1.0)


def test_spec_roundtrip_preserves_tuning():
    spec = (CaseBuilder(switch_size=8)
            .flow("a", "b")
            .weights(2.0, 50.0)
            .max_sets(3)
            .build())
    back = spec_from_dict(spec_to_dict(spec))
    assert back.alpha == 2.0 and back.beta == 50.0
    assert back.max_sets == 3

"""Tests for SVG rendering (repro.render.svg)."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import BindingPolicy, Flow, SwitchSpec, conflict_pair, synthesize
from repro.render import render_result, render_switch, save_svg
from repro.render.svg import SvgCanvas
from repro.switches import CrossbarSwitch, SpineSwitch


@pytest.fixture(scope="module")
def result():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T2", "o1": "B2", "i2": "L1", "o2": "B1"},
    )
    res = synthesize(spec)
    assert res.status.solved
    return res


def test_canvas_builds_valid_xml():
    c = SvgCanvas(100, 80)
    c.line((0, 0), (10, 10), "#000", 1.0)
    c.rect((5, 5), 4, 4, "#f00")
    c.circle((7, 7), 2, "#0f0")
    c.text((3, 3), "label <&>")
    root = ET.fromstring(c.to_svg())
    assert root.tag.endswith("svg")
    assert len(list(root)) == 5  # background + 4 elements


def test_render_switch_parses(result):
    for sw in (CrossbarSwitch(8), CrossbarSwitch(12), SpineSwitch(8)):
        svg = render_switch(sw)
        root = ET.fromstring(svg)
        assert root.attrib["width"]
        # every pin label appears
        texts = [el.text for el in root.iter() if el.tag.endswith("text")]
        for pin in sw.pins:
            assert any(pin in (t or "") for t in texts)


def test_render_result_shows_flows_and_modules(result):
    svg = render_result(result)
    root = ET.fromstring(svg)
    texts = [el.text or "" for el in root.iter() if el.tag.endswith("text")]
    assert any("i1" in t for t in texts)          # module labels
    assert any("set 0" in t for t in texts)       # legend
    lines = [el for el in root.iter() if el.tag.endswith("line")]
    assert len(lines) > len(result.spec.switch.segments)  # structure + flows


def test_render_unsolved_rejected(result):
    import copy
    from repro.core import SynthesisStatus
    bad = copy.copy(result)
    bad.status = SynthesisStatus.NO_SOLUTION
    with pytest.raises(ValueError):
        render_result(bad)


def test_save_svg(tmp_path, result):
    path = tmp_path / "out.svg"
    save_svg(render_result(result), path)
    content = path.read_text()
    assert content.startswith("<svg")
    ET.fromstring(content)


def test_valve_colors_follow_pressure_groups(result):
    if result.pressure is None or result.valves is None:
        pytest.skip("case produced no essential valves")
    svg = render_result(result)
    root = ET.fromstring(svg)
    rects = [el for el in root.iter() if el.tag.endswith("rect")]
    fills = {el.attrib.get("fill") for el in rects} - {"white"}
    # at least as many distinct fills as pressure groups, bounded by palette
    assert len(fills) >= min(result.pressure.num_control_inlets, 6) > 0

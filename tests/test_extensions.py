"""Tests for the future-work extensions.

The thesis names two directions: more flexible switch structures and a
more efficient synthesis. The library extends the paper with (a)
arbitrary-size crossbars (``CrossbarSwitch.with_centers``) and (b)
detour routing (``path_slack`` admits near-shortest candidate paths).
"""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisOptions,
    SynthesisStatus,
    conflict_pair,
    synthesize,
)
from repro.errors import SwitchModelError
from repro.switches import CrossbarSwitch, enumerate_paths


# ----------------------------------------------------------------------
# arbitrary-size crossbars
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
def test_with_centers_family_invariants(m):
    sw = CrossbarSwitch.with_centers(m)
    assert sw.n_pins == 4 * m + 4
    assert len(sw.segments) == 11 * m + 9
    assert sw.check_design_rules() == []
    for pin in sw.pins:
        assert sw.graph.degree[pin] == 1


def test_with_centers_matches_standard_sizes():
    for m, n_pins in ((1, 8), (2, 12), (3, 16)):
        a = CrossbarSwitch.with_centers(m)
        b = CrossbarSwitch(n_pins)
        assert a.pins == b.pins
        assert set(a.segments) == set(b.segments)


def test_with_centers_rejects_zero():
    with pytest.raises(SwitchModelError):
        CrossbarSwitch.with_centers(0)


def test_synthesis_on_20pin_extension():
    sw = CrossbarSwitch.with_centers(4)  # 20-pin
    spec = SwitchSpec(
        switch=sw,
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "T8", "o2": "B8"},
    )
    res = synthesize(spec, SynthesisOptions(time_limit=60))
    assert res.status is SynthesisStatus.OPTIMAL


# ----------------------------------------------------------------------
# detour routing (path slack)
# ----------------------------------------------------------------------
def _corner_sharing_conflict():
    """Conflicting flows whose pins share the TL corner node."""
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1", "i2": "L1", "o2": "L2"},
    )


def test_corner_sharing_conflict_infeasible_at_any_slack():
    """Pins T1 and L1 both attach to corner TL, so flows entering there
    can never be node-disjoint — detours cannot help. This is the
    structural reason the paper criticizes the GRU design (two pins per
    border node) and why the reproduction finds that path slack never
    repairs feasibility on the crossbar family either: infeasibility is
    always corner sharing or planar interleaving, not a lack of route
    alternatives."""
    for slack in (0.0, 2.0, 4.0):
        res = synthesize(_corner_sharing_conflict(),
                         SynthesisOptions(path_slack=slack, time_limit=60))
        assert res.status is SynthesisStatus.NO_SOLUTION, slack


def test_interleaved_diagonals_infeasible_at_any_slack():
    """Crossing diagonal transports (TL->BR vs TR->BL endpoints) are
    interleaved on the planar switch's outer face; every path pair
    shares a vertex regardless of detour budget."""
    def spec():
        return SwitchSpec(
            switch=CrossbarSwitch(8),
            modules=["i1", "i2", "o1", "o2"],
            flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
            conflicts={conflict_pair(1, 2)},
            binding=BindingPolicy.FIXED,
            fixed_binding={"i1": "T1", "o1": "B2", "i2": "R1", "o2": "L2"},
        )

    for slack in (0.0, 4.0):
        res = synthesize(spec(), SynthesisOptions(path_slack=slack,
                                                  time_limit=60))
        assert res.status is SynthesisStatus.NO_SOLUTION, slack


def test_detours_never_hurt_solvable_cases():
    spec0 = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "o1"],
        flows=[Flow(1, "i1", "o1")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1"},
    )
    res0 = synthesize(spec0)
    spec1 = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "o1"],
        flows=[Flow(1, "i1", "o1")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B1"},
    )
    res1 = synthesize(spec1, SynthesisOptions(path_slack=2.0))
    assert res1.objective <= res0.objective + 1e-6

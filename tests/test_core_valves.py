"""Tests for essential-valve identification and status sequences."""

import pytest

from repro.core import BindingPolicy, Flow, SwitchSpec, SynthesisStatus, synthesize
from repro.core.valves import CLOSED, DONT_CARE, OPEN, analyze_valves, carried_inlets
from repro.switches import CrossbarSwitch
from repro.switches.base import segment_key
from repro.switches.paths import Path


def _path(sw, vertices, index=0):
    segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
    return Path(
        index=index,
        source_pin=vertices[0],
        target_pin=vertices[-1],
        vertices=tuple(vertices),
        nodes=frozenset(v for v in vertices if not sw.is_pin(v)),
        segments=segs,
        length=sum(sw.segments[k].length for k in segs),
    )


@pytest.fixture()
def sw():
    return CrossbarSwitch(8)


def test_traversed_segment_is_open(sw):
    paths = {1: _path(sw, ["T1", "TL", "T", "C", "B", "BL", "B1"], 1)}
    analysis = analyze_valves(sw, paths, [[1]])
    assert analysis.status[segment_key("T", "C")] == [OPEN]


def test_adjacent_unused_segment_requires_closed_valve(sw):
    """A second flow set passing node C must close the valve on the
    segment C-R used by no flow of that set."""
    paths = {
        1: _path(sw, ["T1", "TL", "T", "C", "R", "TR", "R1"], 1),
        2: _path(sw, ["L1", "TL", "L", "C", "B", "BL", "B1"], 2),
    }
    analysis = analyze_valves(sw, paths, [[1], [2]])
    # in set 1 (flow 2), the segment C-R is adjacent (at C) but unused
    assert analysis.status[segment_key("C", "R")] == [OPEN, CLOSED]
    assert segment_key("C", "R") in analysis.essential


def test_far_away_segment_is_dont_care(sw):
    paths = {
        1: _path(sw, ["T1", "TL", "L1"], 1),
        2: _path(sw, ["R1", "TR", "R", "BR", "R2"], 2),
    }
    analysis = analyze_valves(sw, paths, [[1], [2]])
    assert analysis.status[segment_key("T1", "TL")] == [OPEN, DONT_CARE]


def test_paper_example_unnecessary_valve(sw):
    """Figure 3.1(b) narrative: the valve on C-R carries flows from both
    its neighbouring inlets in every set that comes near it, so it never
    closes and is removed as unnecessary."""
    # flow 2 from R2 and flow 3 from L1 both traverse C-R (in different
    # sets); flow 4 from L1 branches at C in the same set as flow 3.
    paths = {
        2: _path(sw, ["R2", "BR", "R", "C", "T", "TR", "T2"], 2),
        3: _path(sw, ["L1", "TL", "L", "C", "R", "BR", "R2"], 3),
    }
    # NOTE: flows must end at distinct outlets for a real spec; here we
    # only exercise the valve analysis, which needs no spec.
    analysis = analyze_valves(sw, paths, [[2], [3]])
    key = segment_key("C", "R")
    assert analysis.status[key] == [OPEN, OPEN]
    assert key not in analysis.essential


def test_only_used_segments_reported(sw):
    paths = {1: _path(sw, ["T1", "TL", "L1"], 1)}
    analysis = analyze_valves(sw, paths, [[1]])
    assert set(analysis.status) == {segment_key("T1", "TL"), segment_key("TL", "L1")}


def test_carried_inlets(sw):
    paths = {
        1: _path(sw, ["T1", "TL", "T", "C", "R", "TR", "R1"], 1),
        2: _path(sw, ["L1", "TL", "L", "C", "R", "BR", "R2"], 2),
    }
    sources = {1: "A", 2: "B"}
    assert carried_inlets(sw, paths, sources, ("C", "R")) == {"A", "B"}
    assert carried_inlets(sw, paths, sources, ("T", "C")) == {"A"}


def test_essential_count_matches_closed_rows(sw):
    paths = {
        1: _path(sw, ["T1", "TL", "T", "C", "R", "TR", "R1"], 1),
        2: _path(sw, ["L1", "TL", "L", "C", "B", "BL", "B1"], 2),
    }
    analysis = analyze_valves(sw, paths, [[1], [2]])
    closed_rows = {k for k, seq in analysis.status.items() if CLOSED in seq}
    assert closed_rows == analysis.essential


def test_synthesized_result_valve_consistency():
    """End-to-end: essential valves reported by synthesis equal a fresh
    analysis of its paths and sets."""
    sw = CrossbarSwitch(8)
    spec = SwitchSpec(
        switch=sw,
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B2", "i2": "L1", "o2": "R1"},
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    fresh = analyze_valves(sw, res.flow_paths, res.flow_sets)
    assert fresh.essential == res.valves.essential
    assert fresh.status == res.valves.status

"""Anti-rot checks: the documentation references real code.

Docs drift silently; these tests fail loudly instead. Every module path
mentioned in DESIGN.md/README.md must import, every benchmark file the
experiment index points at must exist, and the repository layout the
README promises must be on disk.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _doc(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


def test_design_module_references_import():
    text = _doc("DESIGN.md")
    modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text))
    assert modules, "DESIGN.md should reference repro modules"
    for dotted in sorted(modules):
        importlib.import_module(dotted)


def test_design_bench_targets_exist():
    text = _doc("DESIGN.md")
    benches = set(re.findall(r"`(benchmarks/[a-z_0-9]+\.py)`", text))
    assert benches
    for rel in sorted(benches):
        assert (ROOT / rel).exists(), rel


def test_readme_promised_layout_exists():
    for rel in ("src/repro/opt", "src/repro/geometry", "src/repro/switches",
                "src/repro/core", "src/repro/analysis", "src/repro/sim",
                "src/repro/control", "src/repro/chip", "src/repro/render",
                "src/repro/cases", "src/repro/io", "src/repro/experiments",
                "tests", "benchmarks", "examples", "docs",
                "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (ROOT / rel).exists(), rel


def test_readme_examples_exist():
    text = _doc("README.md")
    scripts = set(re.findall(r"python (examples/[a-z_0-9]+\.py)", text))
    assert len(scripts) >= 5
    for rel in sorted(scripts):
        assert (ROOT / rel).exists(), rel


def test_experiments_md_covers_every_bench_file():
    text = _doc("EXPERIMENTS.md")
    bench_files = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
    mentioned = set(re.findall(r"test_[a-z_0-9]+\.py", text))
    # every experiment harness except the opt micro-benchmarks (library
    # machinery, not a paper experiment) is documented
    missing = bench_files - mentioned - {"test_opt_micro.py"}
    assert not missing, f"EXPERIMENTS.md misses {sorted(missing)}"


def test_docs_directory_contents():
    docs = {p.name for p in (ROOT / "docs").glob("*.md")}
    assert {"architecture.md", "mathematical_model.md",
            "switch_models.md", "api_tour.md",
            "reproduction_notes.md", "observability.md"} <= docs


def test_math_doc_references_real_symbols():
    text = (ROOT / "docs" / "mathematical_model.md").read_text()
    from repro.core.builder import SynthesisModelBuilder

    for method in re.findall(r"SynthesisModelBuilder\.(_[a-z_]+)", text):
        assert hasattr(SynthesisModelBuilder, method), method

"""Parallel branch-and-bound: determinism, faults, integration.

The determinism contract under test (see :mod:`repro.opt.parallel`):
the same model solved with 1, 2 and 4 workers must return the identical
objective, variable assignment, ``nodes``/``lp_calls`` counters and
``node_order_hash`` — parallelism changes wall-clock only. A SIGKILLed
worker must not change any of that either: its in-flight subtree is
re-queued and re-run, and re-running a task is deterministic.
"""

import math
import random
import threading

import numpy as np
import pytest

from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.cases import chip_sw1
from repro.errors import SolverError
from repro.opt import DeltaTightener, Model, SolveStatus, quicksum
from repro.opt.parallel import PseudoCosts, SubtreeExplorer, path_tie
from repro.opt.solvers import (
    available_backends,
    get_backend,
    merge_counters,
    parse_backend_spec,
    register_backend,
)
from repro.opt.solvers.parallel_bb import ParallelBranchBoundBackend
from repro.opt.solvers.portfolio import PortfolioBackend
from repro.testing import FaultPlan

#: Counters that must be identical across worker counts.
DETERMINISTIC_COUNTERS = ("nodes", "lp_calls", "lp_iterations",
                          "node_order_hash", "bb_rounds", "tight_prunes")


def knapsack_hard(seed=2, n=18, rows=4, tightness=0.45):
    """A multi-dimensional knapsack whose LP relaxation is fractional —
    the search genuinely opens a tree (unlike the scheduling-style
    models, whose relaxations are often integral at the root)."""
    rng = random.Random(seed)
    m = Model(f"mkp{seed}_{n}")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    weights = [[rng.randint(3, 30) for _ in range(n)] for _ in range(rows)]
    for r in range(rows):
        m.add_constr(quicksum(weights[r][i] * xs[i] for i in range(n))
                     <= int(tightness * sum(weights[r])))
    values = [rng.randint(5, 40) for _ in range(n)]
    m.set_objective(quicksum(values[i] * xs[i] for i in range(n)), "max")
    return m


def signature(sol):
    values = tuple(sorted((v.name, round(val))
                          for v, val in sol.values.items()))
    counters = tuple(sol.counters.get(k) for k in DETERMINISTIC_COUNTERS)
    return (sol.objective, values, counters)


# ----------------------------------------------------------------------
# Determinism + correctness
# ----------------------------------------------------------------------

def test_identical_results_across_worker_counts():
    reference = knapsack_hard().solve(backend="highs")
    signatures = {}
    for workers in (1, 2, 4):
        sol = knapsack_hard().solve(backend=f"parallel_bb:{workers}")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(reference.objective)
        signatures[workers] = signature(sol)
    assert signatures[1] == signatures[2] == signatures[4]
    # the search actually ran in rounds (tree was not trivial)
    sol = knapsack_hard().solve(backend="parallel_bb:1")
    assert sol.counters["bb_rounds"] >= 1
    assert sol.counters["node_order_hash"] != 0


def test_repeated_runs_bit_identical():
    a = knapsack_hard(seed=4, n=16).solve(backend="parallel_bb:2")
    b = knapsack_hard(seed=4, n=16).solve(backend="parallel_bb:2")
    assert signature(a) == signature(b)


@pytest.mark.parametrize("seed", range(6))
def test_agrees_with_highs_on_random_models(seed):
    rng = random.Random(seed)
    m = Model(f"xcheck{seed}")
    n = rng.randint(3, 6)
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    z = m.add_integer("z", 0, 4)
    for _ in range(rng.randint(1, 4)):
        coeffs = [rng.randint(-2, 2) for _ in range(n)]
        m.add_constr(quicksum(c * x for c, x in zip(coeffs, xs))
                     + rng.choice([0, 1]) * z <= rng.randint(-1, 4))
    m.set_objective(
        quicksum(rng.randint(-3, 3) * x for x in xs) + z, "min")
    ref = m.solve(backend="highs")
    sol = m.solve(backend="parallel_bb:2")
    assert sol.status is ref.status
    if ref.status is SolveStatus.OPTIMAL:
        assert sol.objective == pytest.approx(ref.objective)


def test_eager_pruning_same_objective():
    """Eager mode trades counter determinism for speed — never the
    optimum."""
    ref = knapsack_hard().solve(backend="parallel_bb:1")
    eager = ParallelBranchBoundBackend(2, eager_pruning=True)
    sol = eager.solve(knapsack_hard())
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(ref.objective)


def test_infeasible_detected():
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x >= 1)
    m.add_constr(x <= 0)
    assert m.solve(backend="parallel_bb:2").status is SolveStatus.INFEASIBLE


def test_continuous_lp_and_equalities():
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x + y == 7)
    m.add_constr(x - y == 1)
    m.set_objective(x, "min")
    sol = m.solve(backend="parallel_bb")
    assert sol.int_value(x) == 4 and sol.int_value(y) == 3


def test_time_limit_zero_returns_time_limit():
    sol = knapsack_hard().solve(backend="parallel_bb:2", time_limit=0.0)
    assert sol.status is SolveStatus.TIME_LIMIT


def test_cancel_event_stops_at_round_boundary():
    cancel = threading.Event()
    cancel.set()
    backend = ParallelBranchBoundBackend(2, cancel_event=cancel)
    sol = backend.solve(knapsack_hard())
    # pre-cancelled: the search may keep phase-A findings but must not
    # claim a completed proof with open subtrees left
    assert sol.status in (SolveStatus.TIME_LIMIT, SolveStatus.FEASIBLE,
                          SolveStatus.OPTIMAL)


def test_warm_start_seeds_incumbent():
    m = knapsack_hard(seed=9, n=14)
    ref = m.solve(backend="highs")
    warm = {v: ref.values[v] for v in m.variables}
    m2 = knapsack_hard(seed=9, n=14)
    by_name = {v.name: val for v, val in warm.items()}
    warm2 = {v: by_name[v.name] for v in m2.variables}
    sol = m2.solve(backend="parallel_bb:2", warm_start=warm2)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(ref.objective)
    assert sol.counters.get("incumbent_seeded") == 1


# ----------------------------------------------------------------------
# Fault tolerance
# ----------------------------------------------------------------------

def test_sigkilled_worker_is_requeued_and_result_unchanged():
    baseline = knapsack_hard().solve(backend="parallel_bb:2")
    if baseline.counters["bb_workers"] < 2:  # pragma: no cover
        pytest.skip("worker pool unavailable in this environment")
    assert baseline.counters["bb_rounds"] >= 1

    chaotic = ParallelBranchBoundBackend(
        2, fault_plan=FaultPlan(schedule=["kill"]))
    sol = chaotic.solve(knapsack_hard())
    assert sol.status is SolveStatus.OPTIMAL
    # the kill actually happened and was recovered
    assert sol.counters["bb_worker_restarts"] >= 1
    # ... and changed nothing about the search outcome
    assert signature(sol) == signature(baseline)


# ----------------------------------------------------------------------
# Registry / spec strings / portfolio integration
# ----------------------------------------------------------------------

def test_backend_registry_and_spec_strings():
    assert available_backends()["parallel_bb"]
    assert get_backend("parallel_bb:3").workers == 3
    assert parse_backend_spec("parallel_bb:4") == ("parallel_bb", 4)
    assert parse_backend_spec("branch_bound") == ("branch_bound", None)
    with pytest.raises(SolverError):
        parse_backend_spec("parallel_bb:zero")
    with pytest.raises(SolverError):
        parse_backend_spec("parallel_bb:0")
    with pytest.raises(SolverError):
        register_backend("parallel_bb:2", ParallelBranchBoundBackend)


def test_portfolio_accepts_parallel_bb_member():
    portfolio = PortfolioBackend(members=["highs", "parallel_bb:2"])
    sol = portfolio.solve(knapsack_hard(seed=4, n=16))
    ref = knapsack_hard(seed=4, n=16).solve(backend="highs")
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(ref.objective)
    assert sol.solver.startswith("portfolio(")


def test_merge_counters_sums_numeric_keeps_identity():
    merged = merge_counters(
        {"nodes": 3, "lp_calls": 5, "node_order_hash": 111, "solver": "a"},
        {"nodes": 4, "lp_calls": 7, "node_order_hash": 222},
    )
    assert merged["nodes"] == 7
    assert merged["lp_calls"] == 12
    assert merged["node_order_hash"] == 111  # identity, not a sum
    assert merged["solver"] == "a"


# ----------------------------------------------------------------------
# Engine internals
# ----------------------------------------------------------------------

def test_path_tie_is_pure_function_of_identity():
    assert path_tie(0, (1, 2, 3)) == path_tie(0, (1, 2, 3))
    assert path_tie(0, (1, 2, 3)) != path_tie(1, (1, 2, 3))
    assert path_tie(0, (1, 2)) != path_tie(0, (2, 1))


def test_pseudocosts_merge_and_pick():
    pc = PseudoCosts(3)
    pc.update(0, False, degradation=4.0, fraction=0.5)
    pc.update(0, True, degradation=4.0, fraction=0.5)
    other = PseudoCosts(3)
    other.update(1, False, degradation=0.1, fraction=0.5)
    other.update(1, True, degradation=0.1, fraction=0.5)
    pc.merge(other.snapshot())
    branch_idx = np.array([0, 1, 2])
    # both 0 and 1 are reliable; 0 has far larger degradation per unit
    x = np.array([0.5, 0.5, 0.0])
    assert pc.pick(x, branch_idx) == 0
    # integral vector: nothing to branch on
    assert pc.pick(np.array([1.0, 0.0, 1.0]), branch_idx) is None
    # no reliable stats at all: most fractional wins
    fresh = PseudoCosts(3)
    assert fresh.pick(np.array([0.2, 0.49, 0.0]), branch_idx) == 1


def test_subtree_explorer_task_is_deterministic():
    form = knapsack_hard().compiled()
    a = SubtreeExplorer(form, seed=0).run_task((), (), node_budget=40)
    b = SubtreeExplorer(form, seed=0).run_task((), (), node_budget=40)
    assert a["nodes"] == b["nodes"] > 0
    assert a["order"] == b["order"]
    assert a["lp_calls"] == b["lp_calls"]
    assert [l[:2] for l in a["leftovers"]] == [l[:2] for l in b["leftovers"]]


# ----------------------------------------------------------------------
# DeltaTightener (per-node vectorized bound propagation)
# ----------------------------------------------------------------------

def _compiled(builder):
    m = Model()
    builder(m)
    return m, m.compiled()


def test_delta_tightener_implied_upper_bound():
    def build(m):
        x = m.add_integer("x", 0, 3)
        y = m.add_integer("y", 0, 3)
        m.add_constr(x + y <= 3)
        m.set_objective(x + y, "max")

    _, form = _compiled(build)
    tight = DeltaTightener(form)
    # branch x >= 3 forces y <= 0
    infeasible, extra = tight.propagate(form.lb, form.ub, 0, False, 3.0)
    assert not infeasible
    assert (1, True, 0.0) in extra


def test_delta_tightener_implied_lower_bound():
    def build(m):
        a = m.add_integer("a", 0, 3)
        b = m.add_integer("b", 0, 3)
        m.add_constr(a + b >= 5)
        m.set_objective(a + b, "min")

    _, form = _compiled(build)
    tight = DeltaTightener(form)
    # branch a <= 2 forces b >= 3
    infeasible, extra = tight.propagate(form.lb, form.ub, 0, True, 2.0)
    assert not infeasible
    assert (1, False, 3.0) in extra


def test_delta_tightener_detects_infeasibility():
    def build(m):
        x = m.add_integer("x", 0, 3)
        y = m.add_integer("y", 0, 3)
        m.add_constr(x + y >= 5)
        m.set_objective(x, "min")

    _, form = _compiled(build)
    tight = DeltaTightener(form)
    # branch x <= 1: max activity 1 + 3 = 4 < 5
    infeasible, extra = tight.propagate(form.lb, form.ub, 0, True, 1.0)
    assert infeasible and extra == []


def test_delta_tightener_equality_rows():
    def build(m):
        p = m.add_integer("p", 0, 4)
        q = m.add_integer("q", 0, 2)
        m.add_constr(p + 2 * q == 4)
        m.set_objective(p, "min")

    _, form = _compiled(build)
    tight = DeltaTightener(form)
    # branch q >= 2 pins p <= 0
    infeasible, extra = tight.propagate(form.lb, form.ub, 1, False, 2.0)
    assert not infeasible
    assert (0, True, 0.0) in extra


def test_delta_tightener_never_cuts_the_optimum():
    """Tightening on vs off must agree on every optimum (exactness)."""
    for seed in (2, 4, 9):
        on = ParallelBranchBoundBackend(1, tighten=True).solve(
            knapsack_hard(seed=seed, n=14))
        off = ParallelBranchBoundBackend(1, tighten=False).solve(
            knapsack_hard(seed=seed, n=14))
        assert on.objective == pytest.approx(off.objective)


# ----------------------------------------------------------------------
# Synthesis integration
# ----------------------------------------------------------------------

def test_synthesize_with_parallel_backend():
    spec = chip_sw1(BindingPolicy.FIXED)
    result = synthesize(
        spec, SynthesisOptions(backend="parallel_bb:2", time_limit=120.0))
    assert result.status.solved
    reference = synthesize(
        spec, SynthesisOptions(backend="branch_bound", time_limit=120.0))
    assert result.objective == pytest.approx(reference.objective)

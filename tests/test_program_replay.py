"""Program replay and valve timeline tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.control import compile_program
from repro.core import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.errors import ReproError
from repro.render import render_valve_timeline
from repro.sim import simulate_program, stuck_open
from repro.switches import CrossbarSwitch


@pytest.fixture(scope="module")
def result():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2"],
        flows=[Flow(1, "acid", "w1"), Flow(2, "base", "w2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "L1", "w2": "B2"},
        name="replay-case",
    )
    res = synthesize(spec)
    assert res.status.solved and res.valves.essential
    return res


def test_program_replay_clean(result):
    """The compiled pneumatic program executes exactly as cleanly as
    the abstract schedule."""
    program = compile_program(result)
    report = simulate_program(result, program)
    assert report.is_clean, report.summary()
    assert report.delivered == set(result.flow_paths)


def test_program_replay_with_fault(result):
    program = compile_program(result)
    key = sorted(result.valves.essential)[0]
    report = simulate_program(result, program, faults=[stuck_open(*key)])
    # the specific valve may or may not matter; the call must not crash
    assert report.delivered or report.undelivered


def test_program_step_mismatch_rejected(result):
    program = compile_program(result)
    program.steps.pop()
    with pytest.raises(ReproError):
        simulate_program(result, program)


def test_replay_rejects_unsolved(result):
    import copy
    from repro.core import SynthesisStatus
    program = compile_program(result)
    bad = copy.copy(result)
    bad.status = SynthesisStatus.NO_SOLUTION
    with pytest.raises(ReproError):
        simulate_program(bad, program)


# ----------------------------------------------------------------------
# timeline rendering
# ----------------------------------------------------------------------
def test_timeline_svg_structure(result):
    svg = render_valve_timeline(result)
    root = ET.fromstring(svg)
    texts = [el.text or "" for el in root.iter() if el.tag.endswith("text")]
    # a column header per flow set and a row per essential valve
    for s in range(result.num_flow_sets):
        assert any(f"set {s}" in t for t in texts)
    for a, b in sorted(result.valves.essential):
        assert any(f"{a}-{b}" in t for t in texts)
    # status letters present
    statuses = {t for t in texts if t in ("O", "C", "X")}
    assert "O" in statuses and "C" in statuses


def test_timeline_requires_solved(result):
    import copy
    from repro.core import SynthesisStatus
    bad = copy.copy(result)
    bad.status = SynthesisStatus.NO_SOLUTION
    with pytest.raises(ValueError):
        render_valve_timeline(bad)

"""Tests for the wash-operation analysis (repro.analysis.washing)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import wash_plan, wash_plan_for_result
from repro.analysis.contamination import route_shortest
from repro.cases import generate_case, nucleic_acid
from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisOptions,
    conflict_pair,
    synthesize,
)
from repro.errors import ReproError
from repro.sim import fluid_conflicts_of
from repro.switches import SpineSwitch


def test_synthesized_results_are_wash_free():
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    res = synthesize(spec, SynthesisOptions(time_limit=60))
    assert res.status.solved
    plan = wash_plan_for_result(res)
    assert plan.is_wash_free
    assert plan.num_phases == 0
    assert "wash-free" in plan.summary()


def test_spine_needs_washes_for_conflicting_reuse():
    """Serializing the nucleic-acid flows on a spine forces wash phases
    between conflicting reuses of the shared spine."""
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    spine = SpineSwitch(len(spec.modules))
    binding = {m: spine.pins[i] for i, m in enumerate(spec.modules)}
    paths = route_shortest(spine, binding, spec.flows)
    plan = wash_plan(
        paths,
        [[1], [2], [3]],
        {f.id: f.source for f in spec.flows},
        fluid_conflicts_of(spec),
    )
    assert not plan.is_wash_free
    assert plan.num_phases >= 1
    assert plan.total_washed_sites >= 1
    assert "wash phase" in plan.summary()


def test_wash_clears_residue():
    """After a wash, the same reuse does not demand another wash until
    the conflicting fluid passes again."""
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    spine = SpineSwitch(len(spec.modules))
    binding = {m: spine.pins[i] for i, m in enumerate(spec.modules)}
    paths = route_shortest(spine, binding, spec.flows)
    sources = {f.id: f.source for f in spec.flows}
    conflicts = fluid_conflicts_of(spec)
    # run flow 1 twice in a row after flow 2: 2 | 1 | 1 — the second
    # "1" set deposits the same fluid, no wash needed between them
    plan = wash_plan(paths, [[2], [1]], sources, conflicts)
    base_phases = plan.num_phases
    plan2 = wash_plan(paths, [[2], [1], [1]], sources, conflicts)
    assert plan2.num_phases == base_phases


def test_nonconflicting_residue_needs_no_wash():
    spec = SwitchSpec(
        switch=SpineSwitch(4),
        modules=["a", "b", "oa", "ob"],
        flows=[Flow(1, "a", "oa"), Flow(2, "b", "ob")],
        binding=BindingPolicy.UNFIXED,
    )
    spine = spec.switch
    binding = {m: spine.pins[i] for i, m in enumerate(spec.modules)}
    paths = route_shortest(spine, binding, spec.flows)
    plan = wash_plan(paths, [[1], [2]], {1: "a", 2: "b"}, set())
    assert plan.is_wash_free


def test_unrouted_flow_rejected():
    with pytest.raises(ReproError):
        wash_plan({}, [[1]], {1: "a"}, set())


def test_unsolved_result_rejected():
    res = synthesize(nucleic_acid(BindingPolicy.FIXED))
    with pytest.raises(ReproError):
        wash_plan_for_result(res)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=5_000))
def test_every_solved_case_is_wash_free(seed):
    """Property: the paper's headline claim, in wash terms — a solved
    synthesis never needs a wash phase."""
    spec = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=2, binding=BindingPolicy.FIXED)
    res = synthesize(spec, SynthesisOptions(time_limit=30))
    if res.status.solved:
        assert wash_plan_for_result(res).is_wash_free

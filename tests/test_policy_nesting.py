"""Policy nesting property: fixed ⊆ clockwise ⊆ unfixed.

A fixed binding is one admissible outcome of the clockwise policy whose
order matches the map, and every clockwise outcome is admissible for
unfixed — so the optimal objectives must nest. The paper observes this
as Table 4.3's length ordering; here it is tested as a property over
random cases.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cases import generate_case
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    synthesize,
)

OPTS = SynthesisOptions(time_limit=40)


def _order_from_fixed(spec):
    """Module order implied by the fixed map's clockwise pin indices."""
    return sorted(spec.modules,
                  key=lambda m: spec.switch.pin_index(spec.fixed_binding[m]))


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=2_000))
def test_objectives_nest_across_policies(seed):
    fixed = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                          n_conflicts=0, binding=BindingPolicy.FIXED)
    res_fixed = synthesize(fixed, OPTS)
    if not res_fixed.status.solved:
        return

    order = _order_from_fixed(fixed)
    clockwise = generate_case(seed=seed, switch_size=8, n_flows=2,
                              n_inlets=2, n_conflicts=0,
                              binding=BindingPolicy.FIXED)
    clockwise.binding = BindingPolicy.CLOCKWISE
    clockwise.fixed_binding = None
    clockwise.module_order = order
    clockwise.validate()
    res_cw = synthesize(clockwise, OPTS)

    unfixed = generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                            n_conflicts=0, binding=BindingPolicy.UNFIXED)
    res_uf = synthesize(unfixed, OPTS)

    assert res_cw.status.solved, "clockwise must cover the fixed solution"
    assert res_uf.status.solved
    assert res_cw.objective <= res_fixed.objective + 1e-6
    assert res_uf.objective <= res_cw.objective + 1e-6

"""Clique/cover cutting planes: validity and LP-bound strengthening."""

from __future__ import annotations

import pytest

import repro.core.builder as builder_mod
from repro.cases import generate_case
from repro.core import SynthesisOptions, synthesize
from repro.core.builder import SynthesisModelBuilder
from repro.core.synthesizer import build_catalog
from repro.opt import Model, SolveStatus
from repro.opt.cuts import (
    atmost_one_pairs,
    clique_cuts,
    conflict_cliques,
    cut_rows,
)
from repro.opt.incremental import IncrementalLP
from repro.opt.linearize import linearize
from repro.opt.solvers.branch_bound import BranchBoundBackend


def _eight_pin_conflict_spec():
    """An 8-pin case whose conflict graph contains a size-4 clique."""
    return generate_case(seed=7, switch_size=8, n_flows=4, n_inlets=4,
                         n_conflicts=6, name="clique8")


def _triangle_model():
    """Three mutually-exclusive binaries stated pairwise only."""
    m = Model("triangle")
    x = [m.add_binary(f"x{i}") for i in range(3)]
    m.add_constr(x[0] + x[1] <= 1)
    m.add_constr(x[0] + x[2] <= 1)
    m.add_constr(x[1] + x[2] <= 1)
    m.set_objective(x[0] + x[1] + x[2], "max")
    return m, x


def test_conflict_cliques_from_pair_set():
    pairs = {frozenset((1, 2)), frozenset((1, 3)), frozenset((2, 3)),
             frozenset((3, 4))}
    assert conflict_cliques(pairs) == [(1, 2, 3)]
    assert conflict_cliques(pairs, min_size=2) == [(1, 2, 3), (3, 4)]
    assert conflict_cliques(set()) == []


def test_atmost_one_pairs_reads_only_two_term_binary_rows():
    m = Model("pairs")
    x = [m.add_binary(f"x{i}") for i in range(3)]
    k = m.add_integer("k", 0, 5)
    m.add_constr(x[0] + x[1] <= 1)
    m.add_constr(x[0] + x[1] + x[2] <= 1)   # three terms: not a pair row
    m.add_constr(x[2] + k <= 1)             # non-binary partner: skipped
    m.add_constr(x[1] + x[2] <= 2)          # rhs != 1: skipped
    m.set_objective(x[0], "max")
    pairs = atmost_one_pairs(m.compiled())
    assert [(sorted(p)) for p in pairs] == [[x[0].index, x[1].index]]


def test_clique_cuts_found_and_cached():
    m, x = _triangle_model()
    form = m.compiled()
    cliques = clique_cuts(form)
    assert cliques == [tuple(sorted(v.index for v in x))]
    assert clique_cuts(form) is cliques  # cached on the compiled model


def test_clique_cut_tightens_lp_bound_vs_pairwise():
    m, _ = _triangle_model()
    form = m.compiled()
    lp = IncrementalLP(form)
    root = lp.solve()
    assert root.status == 0
    # The pairwise relaxation admits x_i = 1/2: objective 1.5 (max).
    assert form.report_objective(root.fun) == pytest.approx(1.5)
    lp.add_cuts(*cut_rows(form, clique_cuts(form)))
    cut = lp.solve()
    assert cut.status == 0
    assert form.report_objective(cut.fun) == pytest.approx(1.0)
    # The true integral optimum is 1: the cut closed the gap entirely
    # without excluding it.
    sol = m.solve(backend="highs")
    assert sol.objective == pytest.approx(1.0)


def test_clique_rows_never_cut_off_integral_optimum_8pin():
    """Builder clique rows keep the 8-pin optimum exactly."""
    spec = _eight_pin_conflict_spec()
    assert conflict_cliques(spec.conflicts), "case must contain a conflict clique"
    options = SynthesisOptions(time_limit=120)

    # Reference optimum: the same model *without* any clique/cover
    # strengthening rows.
    orig_cliques = builder_mod.conflict_cliques
    orig_cover = SynthesisModelBuilder._set_cover_cuts
    builder_mod.conflict_cliques = lambda *a, **k: []
    SynthesisModelBuilder._set_cover_cuts = lambda self, *a, **k: None
    try:
        plain = synthesize(spec, options)
    finally:
        builder_mod.conflict_cliques = orig_cliques
        SynthesisModelBuilder._set_cover_cuts = orig_cover

    strengthened = synthesize(spec, options)
    assert plain.status.solved and strengthened.status.solved
    assert strengthened.objective == pytest.approx(plain.objective)

    # The plain model's optimal integral point satisfies every clique
    # cut derived from the strengthened compiled form.
    catalog = build_catalog(spec, options)
    built = SynthesisModelBuilder(spec, catalog).build()
    lin, _ = linearize(built.model)
    form = lin.compiled()
    for clique in clique_cuts(form):
        names = [form.variables[j].name for j in clique]
        # Map names onto the usage indicators of the plain solution: a
        # variable absent from a clique's support stays 0.
        total = 0.0
        for name in names:
            if name.startswith("a_f"):
                fid = int(name.split("_")[1][1:])
                tag = name.split("_", 2)[2]
                path = plain.flow_paths.get(fid)
                if path is None:
                    continue
                if tag.startswith("e_"):
                    a, b = tag[2:].split("__")
                    total += 1.0 if (a, b) in path.segments or (b, a) in path.segments else 0.0
        assert total <= 1.0 + 1e-9


def test_branch_bound_with_cuts_matches_highs_on_conflict_case():
    spec = _eight_pin_conflict_spec()
    options = SynthesisOptions(time_limit=120)
    catalog = build_catalog(spec, options)
    built = SynthesisModelBuilder(spec, catalog).build()
    reference = built.model.solve(backend="highs", mip_gap=1e-6)
    assert reference.status is SolveStatus.OPTIMAL

    with_cuts = built.model.solve(backend="branch_bound", mip_gap=1e-6)
    assert with_cuts.status is SolveStatus.OPTIMAL
    assert with_cuts.objective == pytest.approx(reference.objective)


def test_branch_bound_cut_counter_reported():
    m, _ = _triangle_model()
    sol = BranchBoundBackend(use_presolve=False).solve(m)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(1.0)
    assert sol.counters["cuts"] == 1
    assert sol.counters["lp_calls"] >= 1

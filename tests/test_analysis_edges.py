"""Edge coverage for the analysis package."""

import pytest

from repro.analysis import analyze_contamination, route_shortest
from repro.analysis.contamination import ContaminationReport
from repro.core import BindingPolicy, Flow, SwitchSpec, conflict_pair
from repro.errors import ReproError
from repro.switches import CrossbarSwitch, SpineSwitch


def test_route_shortest_missing_binding_entry():
    sw = SpineSwitch(4)
    with pytest.raises(KeyError):
        route_shortest(sw, {}, [Flow(1, "a", "b")])


def test_route_shortest_unknown_pin():
    sw = SpineSwitch(4)
    with pytest.raises(ReproError):
        route_shortest(sw, {"a": "NOPE", "b": sw.pins[0]},
                       [Flow(1, "a", "b")])


def test_analyze_without_conflicts_is_clean():
    sw = CrossbarSwitch(8)
    binding = {"a": "T1", "b": "B1"}
    paths = route_shortest(sw, binding, [Flow(1, "a", "b")])
    report = analyze_contamination(sw, paths, set())
    assert report.is_contamination_free
    assert report.num_polluted_sites == 0


def test_report_summary_strings():
    clean = ContaminationReport("x", {})
    assert "contamination-free" in clean.summary()
    dirty = ContaminationReport("y", {})
    dirty.polluted_nodes.add("C")
    dirty.contaminated_pairs.add(frozenset({1, 2}))
    assert "polluted" in dirty.summary()
    assert not dirty.is_contamination_free


def test_same_source_flows_never_flagged_unvalved_conflicting():
    """Branches of one inlet share channels by design; only the
    unvalved-sharing diagnostic may fire, never contamination."""
    sw = CrossbarSwitch(8)
    binding = {"src": "T1", "o1": "B1", "o2": "L2"}
    flows = [Flow(1, "src", "o1"), Flow(2, "src", "o2")]
    paths = route_shortest(sw, binding, flows)
    report = analyze_contamination(sw, paths, set())
    assert report.is_contamination_free


def test_conflicting_same_channel_detected_on_crossbar_too():
    """The analyzer is design-agnostic: force two conflicting flows
    down the same crossbar corridor and it reports the sites."""
    sw = CrossbarSwitch(8)
    binding = {"a": "T1", "b": "L1", "oa": "B1", "ob": "L2"}
    flows = [Flow(1, "a", "oa"), Flow(2, "b", "ob")]
    paths = route_shortest(sw, binding, flows)
    report = analyze_contamination(sw, paths, {conflict_pair(1, 2)})
    assert not report.is_contamination_free
    assert report.polluted_nodes  # TL / L / BL shared

"""Tests for the greedy heuristic synthesizer (repro.core.heuristic)."""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisStatus,
    conflict_pair,
    synthesize,
    synthesize_greedy,
)
from repro.core.verify import verify_result
from repro.switches import CrossbarSwitch


def simple_spec(binding=BindingPolicy.UNFIXED, **kw):
    kwargs = dict(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=binding,
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = {"i1": "T1", "o1": "B1", "i2": "T2", "o2": "B2"}
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = ["i1", "o1", "i2", "o2"]
    kwargs.update(kw)
    return SwitchSpec(**kwargs)


@pytest.mark.parametrize("binding", list(BindingPolicy))
def test_greedy_produces_verified_solutions(binding):
    res = synthesize_greedy(simple_spec(binding))
    assert res.status is SynthesisStatus.FEASIBLE
    verify_result(res)  # double verification


def test_greedy_respects_conflicts():
    spec = simple_spec(BindingPolicy.FIXED, conflicts={conflict_pair(1, 2)})
    res = synthesize_greedy(spec)
    assert res.status is SynthesisStatus.FEASIBLE
    p1, p2 = res.flow_paths[1], res.flow_paths[2]
    assert not (set(p1.nodes) & set(p2.nodes))


def test_greedy_never_better_than_exact():
    """On solvable cases the exact objective is <= the greedy one."""
    spec_g = simple_spec(BindingPolicy.FIXED, conflicts={conflict_pair(1, 2)})
    spec_e = simple_spec(BindingPolicy.FIXED, conflicts={conflict_pair(1, 2)})
    greedy = synthesize_greedy(spec_g)
    exact = synthesize(spec_e)
    g_obj = (spec_g.alpha * greedy.num_flow_sets
             + spec_g.beta * greedy.flow_channel_length)
    assert exact.objective <= g_obj + 1e-6


def test_greedy_reports_failure_not_crash():
    """Interleaved pairwise-conflicting fixed binding is infeasible; the
    greedy must report NO_SOLUTION."""
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["m1", "m2", "m3", "r1", "r2", "r3"],
        flows=[Flow(1, "m1", "r1"), Flow(2, "m2", "r2"), Flow(3, "m3", "r3")],
        conflicts={conflict_pair(1, 2), conflict_pair(1, 3), conflict_pair(2, 3)},
        binding=BindingPolicy.FIXED,
        fixed_binding={"m1": "T1", "m2": "T2", "m3": "R1",
                       "r1": "R2", "r2": "B2", "r3": "B1"},
    )
    res = synthesize_greedy(spec)
    assert res.status is SynthesisStatus.NO_SOLUTION


def test_greedy_same_inlet_flows_share_set():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["src", "o1", "o2"],
        flows=[Flow(1, "src", "o1"), Flow(2, "src", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"src": "T1", "o1": "B1", "o2": "B2"},
    )
    res = synthesize_greedy(spec)
    assert res.num_flow_sets == 1


def test_greedy_pressure_sharing_present():
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["i1", "i2", "o1", "o2"],
        flows=[Flow(1, "i1", "o1"), Flow(2, "i2", "o2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"i1": "T1", "o1": "B2", "i2": "L1", "o2": "B1"},
    )
    res = synthesize_greedy(spec)
    assert res.status is SynthesisStatus.FEASIBLE
    if res.valves.essential:
        assert res.pressure is not None
        assert res.pressure.method == "greedy"


def test_greedy_is_fast():
    spec = simple_spec(BindingPolicy.UNFIXED)
    res = synthesize_greedy(spec)
    assert res.runtime < 1.0

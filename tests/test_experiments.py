"""Tests for the experiment runners (repro.experiments).

Only the fast runners execute here; the solver-heavy tables are covered
by the benchmark harness.
"""

import pytest

from repro.experiments import (
    RUNNERS,
    ExperimentReport,
    run_dynamic_validation,
    run_routing_space,
)
from repro.experiments.__main__ import main


def test_report_render_and_save(tmp_path):
    report = ExperimentReport("demo", "Demo title")
    report.add_row(a=1, b="x")
    report.note("a note")
    text = report.render()
    assert "Demo title" in text and "a note" in text
    path = report.save(tmp_path)
    assert path.read_text().startswith("== Demo title ==")


def test_runner_registry_complete():
    assert {"table_4_1", "table_4_2", "table_4_3", "figures",
            "artificial", "routing_space", "dynamic"} <= set(RUNNERS)
    for runner in RUNNERS.values():
        assert callable(runner)
        assert runner.__doc__


def test_routing_space_runner(tmp_path):
    report = run_routing_space(outdir=tmp_path)
    switches = {r["switch"] for r in report.rows}
    assert {"crossbar-8pin", "gru-8pin", "spine-8pin"} == switches
    assert (tmp_path / "routing_space.txt").exists()


def test_dynamic_runner(tmp_path):
    report = run_dynamic_validation(time_limit=60, outdir=tmp_path)
    outcomes = {r["case"]: r["outcome"] for r in report.rows}
    assert outcomes["nucleic acid processor"] == "clean"
    assert all(r.get("wash phases", 0) == 0 for r in report.rows
               if r["outcome"] == "clean")


def test_cli_main(tmp_path, capsys):
    assert main(["routing_space", "-o", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "routing space" in out
    assert (tmp_path / "routing_space.txt").exists()

"""Tests for the three binding policies (§3.4)."""

import pytest

from repro.core import (
    BindingPolicy,
    Flow,
    SwitchSpec,
    SynthesisStatus,
    synthesize,
)
from repro.switches import CrossbarSwitch


def spec_with(binding, modules, flows, **kw):
    return SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=modules,
        flows=flows,
        binding=binding,
        **kw,
    )


def test_fixed_binding_respected_exactly():
    fixed = {"a": "R2", "b": "L1"}
    spec = spec_with(BindingPolicy.FIXED, ["a", "b"], [Flow(1, "a", "b")],
                     fixed_binding=fixed)
    res = synthesize(spec)
    assert res.binding == fixed


def test_clockwise_binding_keeps_order():
    order = ["a", "b", "c", "d"]
    spec = spec_with(
        BindingPolicy.CLOCKWISE, order,
        [Flow(1, "a", "b"), Flow(2, "c", "d")],
        module_order=order,
    )
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    sw = spec.switch
    indices = [sw.pin_index(res.binding[m]) for m in order]
    descents = sum(
        1 for i in range(len(indices))
        if indices[i] >= indices[(i + 1) % len(indices)]
    )
    assert descents == 1  # a single wrap-around, as eq. (3.12)-(3.13) demand


def test_clockwise_may_skip_pins():
    """§2.2: the clockwise policy may skip pins; with 2 modules on an
    8-pin switch most pins stay unbound."""
    spec = spec_with(BindingPolicy.CLOCKWISE, ["a", "b"], [Flow(1, "a", "b")],
                     module_order=["a", "b"])
    res = synthesize(spec)
    assert len(res.binding) == 2
    assert res.binding["a"] != res.binding["b"]


def test_unfixed_binding_chooses_adjacent_pins():
    """With full freedom the optimizer should pick a cheapest pin pair:
    two pins on the same corner (length 1.4 mm)."""
    spec = spec_with(BindingPolicy.UNFIXED, ["a", "b"], [Flow(1, "a", "b")])
    res = synthesize(spec)
    assert res.flow_channel_length == pytest.approx(1.4)


def test_unfixed_beats_or_ties_fixed():
    flows = [Flow(1, "a", "b")]
    fixed = spec_with(BindingPolicy.FIXED, ["a", "b"], flows,
                      fixed_binding={"a": "T1", "b": "B2"})
    unfixed = spec_with(BindingPolicy.UNFIXED, ["a", "b"],
                        [Flow(1, "a", "b")])
    res_f = synthesize(fixed)
    res_u = synthesize(unfixed)
    assert res_u.flow_channel_length <= res_f.flow_channel_length + 1e-9


def test_clockwise_between_fixed_and_unfixed():
    """Clockwise length is between unfixed (free) and a bad fixed map."""
    flows = [Flow(1, "a", "b"), Flow(2, "c", "d")]
    res_u = synthesize(spec_with(
        BindingPolicy.UNFIXED, ["a", "b", "c", "d"],
        [Flow(1, "a", "b"), Flow(2, "c", "d")]))
    res_c = synthesize(spec_with(
        BindingPolicy.CLOCKWISE, ["a", "b", "c", "d"],
        [Flow(1, "a", "b"), Flow(2, "c", "d")],
        module_order=["a", "b", "c", "d"]))
    res_f = synthesize(spec_with(
        BindingPolicy.FIXED, ["a", "b", "c", "d"],
        [Flow(1, "a", "b"), Flow(2, "c", "d")],
        fixed_binding={"a": "T1", "b": "B2", "c": "T2", "d": "B1"}))
    assert res_u.flow_channel_length <= res_c.flow_channel_length + 1e-9
    assert res_c.flow_channel_length <= res_f.flow_channel_length + 1e-9


def test_unbound_modules_still_assigned():
    """Modules without flows must still receive a unique pin (3.9/3.10)."""
    spec = spec_with(BindingPolicy.UNFIXED, ["a", "b", "idle1", "idle2"],
                     [Flow(1, "a", "b")])
    res = synthesize(spec)
    assert len(set(res.binding.values())) == 4


def test_single_module_clockwise():
    spec = spec_with(BindingPolicy.CLOCKWISE, ["only"], [],
                     module_order=["only"])
    res = synthesize(spec)
    assert res.status is SynthesisStatus.OPTIMAL
    assert "only" in res.binding

"""Tests for control-layer routing (repro.control) and line geometry."""

import pytest

from repro.control import ControlPlan, route_control
from repro.errors import ReproError
from repro.geometry import Point
from repro.geometry.lines import (
    point_segment_distance,
    segment_segment_distance,
    segments_intersect,
)
from repro.switches import CrossbarSwitch, GRUSwitch
from repro.switches.base import segment_key


# ----------------------------------------------------------------------
# geometry
# ----------------------------------------------------------------------
def test_point_segment_distance():
    a, b = Point(0, 0), Point(10, 0)
    assert point_segment_distance(Point(5, 3), a, b) == pytest.approx(3)
    assert point_segment_distance(Point(-4, 0), a, b) == pytest.approx(4)
    assert point_segment_distance(Point(13, 4), a, b) == pytest.approx(5)
    # degenerate segment
    assert point_segment_distance(Point(3, 4), a, a) == pytest.approx(5)


def test_segments_intersect():
    assert segments_intersect(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))
    assert not segments_intersect(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))
    # touching endpoint counts
    assert segments_intersect(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))
    # collinear overlap
    assert segments_intersect(Point(0, 0), Point(3, 0), Point(2, 0), Point(5, 0))


def test_segment_segment_distance():
    assert segment_segment_distance(
        Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)) == 0.0
    assert segment_segment_distance(
        Point(0, 0), Point(10, 0), Point(0, 3), Point(10, 3)) == pytest.approx(3)
    assert segment_segment_distance(
        Point(0, 0), Point(1, 0), Point(3, 0), Point(4, 0)) == pytest.approx(2)


# ----------------------------------------------------------------------
# control routing
# ----------------------------------------------------------------------
def _stub_valves(switch):
    return [segment_key(p, next(iter(switch.graph.neighbors(p))))
            for p in switch.pins]


def test_gru_as_drawn_violates_spacing():
    """§2.1 criticism 4: the GRU's control channels (perpendicular to
    the 45° pin stubs) cross each other near the border nodes."""
    gru = GRUSwitch(8)
    plan = route_control(gru, _stub_valves(gru), strategy="perpendicular")
    violations = plan.violations()
    assert violations
    assert not plan.is_clean
    assert any("0 um apart" in v for v in violations)


def test_lane_router_fixes_gru():
    gru = GRUSwitch(8)
    plan = route_control(gru, _stub_valves(gru), strategy="lanes")
    assert plan.is_clean


def test_lane_router_clean_on_full_8pin():
    """All 20 valves of the unreduced 8-pin model escape-route cleanly."""
    sw = CrossbarSwitch(8)
    plan = route_control(sw, list(sw.valves), strategy="lanes")
    assert plan.is_clean, plan.violations()[:3]
    assert plan.num_inlets == len(sw.valves)
    assert plan.total_length > 0


@pytest.mark.parametrize("n_pins", [12, 16])
def test_dense_models_report_their_violations(n_pins):
    """The unreduced 12/16-pin valve fields are too dense for single-
    layer escape routing (which is why Columba S controls valves through
    multiplexers); the DRC must say so rather than pretend."""
    sw = CrossbarSwitch(n_pins)
    plan = route_control(sw, list(sw.valves), strategy="lanes")
    assert not plan.is_clean
    assert all("um apart" in v for v in plan.violations())


def test_lane_router_clean_on_synthesized_essential_set():
    """The application-specific (reduced) valve sets the paper actually
    fabricates must escape-route cleanly."""
    from repro.cases import chip_sw1
    from repro.core import BindingPolicy, SynthesisOptions, synthesize

    res = synthesize(chip_sw1(BindingPolicy.FIXED),
                     SynthesisOptions(time_limit=60))
    assert res.status.solved and res.valves.essential
    plan = route_control(res.spec.switch, sorted(res.valves.essential),
                         strategy="lanes")
    assert plan.is_clean, plan.violations()


def test_channels_reach_the_border():
    sw = CrossbarSwitch(8)
    plan = route_control(sw, [("C", "T"), ("B", "C")], strategy="lanes")
    lo, hi = sw.bounding_box()
    for channel in plan.channels:
        assert channel.inlet.y > hi.y or channel.inlet.y < lo.y


def test_pressure_groups_reduce_inlets_and_area():
    sw = CrossbarSwitch(8)
    valves = [segment_key(*v) for v in
              [("T1", "TL"), ("TL", "T"), ("C", "T"), ("B", "C")]]
    no_share = route_control(sw, valves, strategy="lanes")
    groups = {valves[0]: 0, valves[1]: 0, valves[2]: 1, valves[3]: 1}
    shared = route_control(sw, valves, groups=groups, strategy="lanes")
    assert no_share.num_inlets == 4
    assert shared.num_inlets == 2
    assert shared.area()["inlets"] < no_share.area()["inlets"]
    assert shared.area()["total"] == pytest.approx(
        shared.area()["channel"] + shared.area()["inlets"])


def test_same_group_channels_may_touch():
    """Two channels of one pressure group connect to one inlet, so
    their proximity is not a violation."""
    sw = GRUSwitch(8)
    valves = [segment_key("N", "TL"), segment_key("N", "T")]
    groups = {valves[0]: 0, valves[1]: 0}
    plan = route_control(sw, valves, groups=groups, strategy="perpendicular")
    assert plan.is_clean  # crossing channels, same inlet


def test_unknown_strategy_and_bad_inputs():
    sw = CrossbarSwitch(8)
    with pytest.raises(ReproError):
        route_control(sw, [("C", "T")], strategy="diagonal")
    with pytest.raises(ReproError):
        route_control(sw, [("C", "nonexistent")])
    with pytest.raises(ReproError):
        route_control(sw, [("C", "T")], groups={})


def test_channel_length_manhattan():
    sw = CrossbarSwitch(8)
    plan = route_control(sw, [("C", "T")], strategy="lanes")
    (channel,) = plan.channels
    expect = sum(a.manhattan_to(b)
                 for a, b in zip(channel.points, channel.points[1:]))
    assert channel.length == pytest.approx(expect)


def test_empty_plan():
    sw = CrossbarSwitch(8)
    plan = route_control(sw, [])
    assert plan.num_inlets == 0
    assert plan.total_length == 0
    assert plan.is_clean

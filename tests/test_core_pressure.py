"""Tests for pressure sharing via clique cover (repro.core.pressure)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pressure import (
    clique_cover_greedy,
    clique_cover_ilp,
    compatibility_graph,
    sequences_compatible,
    share_pressure,
)
from repro.errors import ReproError

V = lambda i: (f"a{i}", f"b{i}")  # synthetic valve keys


def test_sequence_compatibility_rules():
    assert sequences_compatible(["O", "X", "C"], ["X", "O", "C"])
    assert sequences_compatible(["X", "X"], ["O", "C"])
    assert not sequences_compatible(["O"], ["C"])
    assert not sequences_compatible(["O", "C"], ["O", "O"])
    with pytest.raises(ReproError):
        sequences_compatible(["O"], ["O", "C"])


def test_figure_3_2a_single_clique():
    """Fig 3.2(a): (O,X,C), (X,O,C), (O,O,C) all share one source."""
    status = {
        V(1): ["O", "X", "C"],
        V(2): ["X", "O", "C"],
        V(3): ["O", "O", "C"],
    }
    result = share_pressure(status, method="ilp")
    assert result.num_control_inlets == 1
    assert sorted(result.groups[0]) == sorted(status)


def test_figure_3_2b_two_cliques():
    """Fig 3.2(b): a pairs with b or c, but b and c clash -> 2 cliques."""
    status = {
        V(1): ["X", "X"],   # a: compatible with both
        V(2): ["O", "C"],   # b
        V(3): ["C", "O"],   # c
    }
    result = share_pressure(status, method="ilp")
    assert result.num_control_inlets == 2


def test_group_of_lookup():
    status = {V(1): ["O"], V(2): ["C"]}
    result = share_pressure(status, method="ilp")
    assert result.group_of(V(1)) != result.group_of(V(2))
    with pytest.raises(KeyError):
        result.group_of(("zz", "zz"))


def test_restrict_to_subset():
    status = {V(1): ["O"], V(2): ["C"], V(3): ["X"]}
    result = share_pressure(status, valves=[V(1), V(3)], method="ilp")
    covered = {v for g in result.groups for v in g}
    assert covered == {V(1), V(3)}


def test_greedy_never_beats_ilp():
    status = {
        V(1): ["O", "X", "X"],
        V(2): ["X", "O", "X"],
        V(3): ["C", "X", "O"],
        V(4): ["X", "C", "O"],
        V(5): ["O", "O", "C"],
    }
    ilp = share_pressure(status, method="ilp")
    greedy = share_pressure(status, method="greedy")
    assert ilp.num_control_inlets <= greedy.num_control_inlets


def test_unknown_method_rejected():
    with pytest.raises(ReproError):
        share_pressure({V(1): ["O"]}, method="magic")


def test_empty_status():
    result = share_pressure({}, method="ilp")
    assert result.num_control_inlets == 0


def test_incompatible_all_pairwise():
    status = {V(1): ["O", "C"], V(2): ["C", "O"], V(3): ["O", "O"]}
    # 1-2 clash; 1-3 clash (pos 2); 2-3 clash (pos 1) -> three cliques
    result = share_pressure(status, method="ilp")
    assert result.num_control_inlets == 3


def test_compatibility_graph_shape():
    status = {V(1): ["O"], V(2): ["X"], V(3): ["C"]}
    g = compatibility_graph(status)
    assert g.has_edge(V(1), V(2))
    assert g.has_edge(V(2), V(3))
    assert not g.has_edge(V(1), V(3))


def test_clique_cover_on_raw_graph():
    g = nx.Graph()
    g.add_nodes_from([V(1), V(2), V(3), V(4)])
    g.add_edges_from([(V(1), V(2)), (V(3), V(4))])
    groups = clique_cover_ilp(g)
    assert len(groups) == 2
    greedy = clique_cover_greedy(g)
    assert len(greedy) >= 2


@st.composite
def random_status_tables(draw):
    n_valves = draw(st.integers(min_value=1, max_value=6))
    n_sets = draw(st.integers(min_value=1, max_value=4))
    table = {}
    for i in range(n_valves):
        table[V(i)] = [
            draw(st.sampled_from(["O", "C", "X"])) for _ in range(n_sets)
        ]
    return table


@settings(max_examples=30, deadline=None)
@given(random_status_tables())
def test_cover_properties(status):
    """Property: ILP cover is a valid partition into compatible groups,
    never larger than greedy, and group count bounds are respected."""
    ilp = share_pressure(status, method="ilp")
    greedy = share_pressure(status, method="greedy")
    # partition
    covered = sorted(v for g in ilp.groups for v in g)
    assert covered == sorted(status)
    # compatibility inside groups
    for group in ilp.groups:
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                assert sequences_compatible(status[a], status[b])
    # optimality relative to greedy, trivial bounds
    assert 1 <= ilp.num_control_inlets <= len(status)
    assert ilp.num_control_inlets <= greedy.num_control_inlets

"""Solver backend tests: each backend alone, plus cross-checks."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError, SolverError
from repro.opt import Model, SolveStatus, VarType, quicksum
from repro.opt.solvers import available_backends, get_backend

BACKENDS = ["highs", "branch_bound", "backtrack"]


def knapsack_model():
    m = Model("knapsack")
    values = [6, 5, 4, 3]
    weights = [4, 3, 2, 1]
    xs = [m.add_binary(f"x{i}") for i in range(4)]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 6)
    m.set_objective(quicksum(v * x for v, x in zip(values, xs)), "max")
    return m, xs


@pytest.mark.parametrize("backend", BACKENDS)
def test_knapsack_optimum(backend):
    m, _ = knapsack_model()
    sol = m.solve(backend=backend)
    assert sol.status is SolveStatus.OPTIMAL
    # best: items with weights 3+2+1=6, values 5+4+3=12
    assert sol.objective == pytest.approx(12)


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible_detected(backend):
    m = Model()
    x = m.add_binary("x")
    m.add_constr(x >= 1)
    m.add_constr(x <= 0)
    sol = m.solve(backend=backend)
    assert sol.status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("backend", BACKENDS)
def test_equality_constraints(backend):
    m = Model()
    x = m.add_integer("x", 0, 10)
    y = m.add_integer("y", 0, 10)
    m.add_constr(x + y == 7)
    m.add_constr(x - y == 1)
    m.set_objective(x, "min")
    sol = m.solve(backend=backend)
    assert sol.int_value(x) == 4 and sol.int_value(y) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_integer_bounds_respected(backend):
    m = Model()
    x = m.add_integer("x", 2, 5)
    m.set_objective(x, "min")
    sol = m.solve(backend=backend)
    assert sol.int_value(x) == 2


def test_backend_registry():
    avail = available_backends()
    assert avail["branch_bound"] and avail["backtrack"]
    with pytest.raises(SolverError):
        get_backend("does-not-exist")


def test_auto_backend_resolves():
    assert get_backend("auto").name in ("highs", "branch_bound")


def test_backtrack_rejects_continuous():
    m = Model()
    m.add_var("c", VarType.CONTINUOUS, 0, 1)
    with pytest.raises(ModelError):
        m.solve(backend="backtrack")


def test_backtrack_rejects_unbounded_integer():
    m = Model()
    m.add_integer("z", 0)  # infinite upper bound
    with pytest.raises(ModelError):
        m.solve(backend="backtrack")


def test_branch_bound_continuous_lp():
    m = Model()
    x = m.add_var("x", VarType.CONTINUOUS, 0, 10)
    y = m.add_var("y", VarType.CONTINUOUS, 0, 10)
    m.add_constr(x + y >= 3)
    m.set_objective(2 * x + y, "min")
    sol = m.solve(backend="branch_bound")
    assert sol.objective == pytest.approx(3)  # x=0, y=3


def test_time_limit_returns_promptly():
    # a deliberately symmetric, hard-ish model with a tiny time limit
    m = Model()
    n = 14
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    for i in range(n - 1):
        m.add_constr(xs[i] + xs[i + 1] <= 1)
    m.set_objective(
        quicksum(((-1) ** i) * (i % 5 + 1) * x for i, x in enumerate(xs)), "min"
    )
    sol = m.solve(backend="branch_bound", time_limit=0.05)
    assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE,
                          SolveStatus.TIME_LIMIT)


def _random_model(seed: int):
    rng = random.Random(seed)
    m = Model(f"xcheck{seed}")
    n = rng.randint(2, 5)
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    z = m.add_integer("z", 0, 4)
    for _ in range(rng.randint(1, 4)):
        coeffs = [rng.randint(-2, 2) for _ in range(n)]
        rhs = rng.randint(-2, 4)
        lhs = quicksum(c * x for c, x in zip(coeffs, xs)) + rng.choice([0, 1]) * z
        m.add_constr(lhs <= rhs)
    m.set_objective(
        quicksum(rng.randint(-3, 3) * x for x in xs) + rng.randint(0, 2) * z, "min"
    )
    return m


def _brute_force(m: Model):
    best = None
    domains = []
    for v in m.variables:
        domains.append([float(k) for k in range(int(v.lb), int(v.ub) + 1)])
    for combo in itertools.product(*domains):
        assignment = dict(zip(m.variables, combo))
        if m.check_assignment(assignment):
            continue
        obj = m.objective.value(assignment)
        if best is None or obj < best:
            best = obj
    return best


@pytest.mark.parametrize("seed", range(12))
def test_backends_agree_with_enumeration(seed):
    """All three backends match exhaustive enumeration on random MILPs.

    The objective is unbounded below only if some negative-coefficient
    variable is free, which cannot happen here (all domains finite).
    """
    m = _random_model(seed)
    expected = _brute_force(m)
    for backend in BACKENDS:
        sol = m.solve(backend=backend)
        if expected is None:
            assert sol.status is SolveStatus.INFEASIBLE, backend
        else:
            assert sol.status is SolveStatus.OPTIMAL, backend
            assert sol.objective == pytest.approx(expected), backend


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=100, max_value=10_000))
def test_backends_agree_property(seed):
    """Property form of the cross-check over a wider seed space."""
    m = _random_model(seed)
    expected = _brute_force(m)
    sol_h = m.solve(backend="highs")
    sol_b = m.solve(backend="backtrack")
    if expected is None:
        assert sol_h.status is SolveStatus.INFEASIBLE
        assert sol_b.status is SolveStatus.INFEASIBLE
    else:
        assert sol_h.objective == pytest.approx(expected)
        assert sol_b.objective == pytest.approx(expected)

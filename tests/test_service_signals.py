"""Signal handling and interrupt recovery (service + run_batch).

The contract: SIGTERM/SIGINT mid-run produces a *graceful* shutdown —
the in-flight job finishes, the queue stays journaled as pending, the
exit status says so — and a restart on the same journal completes the
remainder with every job terminal exactly once. KeyboardInterrupt
inside ``run_batch`` leaves a resumable checkpoint the same way.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.experiments import load_csv, run_batch
from repro.obs import Tracer, use_tracer
from repro.service import replay_journal, validate_journal

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir,
                                   "src"))

#: A service run driven exactly like ``repro serve``: slow enough per
#: job that a signal sent after READY lands mid-run deterministically.
SERVE_SCRIPT = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.opt.solvers import get_backend, register_backend
from repro.opt.solvers.base import SolverBackend
from repro.service import SynthesisService, install_signal_handlers


class SlowBackend(SolverBackend):
    name = "slow"

    def solve(self, model, **kwargs):
        time.sleep(0.2)
        return get_backend("auto").solve(model, **kwargs)


register_backend("slow", SlowBackend)
specs = [generate_case(seed=s, switch_size=8, n_flows=2, n_inlets=2,
                       n_conflicts=0, binding=BindingPolicy.FIXED)
         for s in range(5)]
opts = SynthesisOptions(time_limit=30, backend="slow")
service = SynthesisService(sys.argv[1], workers=1, options=opts)
install_signal_handlers(service)
service.start()
for spec in specs:
    service.submit(spec)
print("READY", flush=True)
outcome = service.run_until_complete(timeout=120)
drain = "inflight" if outcome == "interrupted" else True
summary = service.stop(drain=drain, deadline=30.0)
print("OUTCOME", outcome, summary["completed"], summary["pending"],
      flush=True)
sys.exit(3 if summary["pending"] else 0)
"""


def run_serve_script(tmp_path, journal, send_signal=None):
    script = tmp_path / "serve_script.py"
    script.write_text(SERVE_SCRIPT.format(src=SRC))
    proc = subprocess.Popen([sys.executable, str(script), str(journal)],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    assert proc.stdout.readline().strip() == "READY"
    if send_signal is not None:
        time.sleep(0.7)  # let at least one job finish first
        proc.send_signal(send_signal)
    out, err = proc.communicate(timeout=120)
    return proc.returncode, out, err


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_journals_and_restart_completes(tmp_path, signum):
    journal = tmp_path / "journal.jsonl"

    rc, out, err = run_serve_script(tmp_path, journal, send_signal=signum)
    assert rc == 3, f"expected pending-work exit: {out!r} {err!r}"
    assert "interrupted" in out
    counts = validate_journal(journal)  # replayable, schema-valid
    done_now = counts.get("done", 0)
    assert done_now >= 1, f"drain should finish the in-flight job: {counts}"
    assert sum(counts.values()) == 5
    pending = sum(v for k, v in counts.items() if k != "done")
    assert pending >= 1, f"a graceful signal must leave work: {counts}"

    # Restart on the same journal: replays pending, dedups done, and
    # completes everything exactly once.
    rc2, out2, err2 = run_serve_script(tmp_path, journal)
    assert rc2 == 0, f"restart should finish the remainder: {out2!r} {err2!r}"
    final = validate_journal(journal)  # raises on any double completion
    assert final == {"done": 5}
    jobs = replay_journal(journal).jobs
    assert all(job.attempts >= 1 for job in jobs.values())


def small_spec(seed):
    return generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def test_run_batch_interrupt_leaves_resumable_checkpoint(tmp_path):
    specs = [small_spec(s) for s in range(4)]
    opts = SynthesisOptions(time_limit=30)
    ckpt = tmp_path / "checkpoint.csv"

    def interrupt_after_two(done, total, row):
        if done == 2:
            raise KeyboardInterrupt

    tracer = Tracer("interrupt")
    with use_tracer(tracer):
        with pytest.raises(KeyboardInterrupt):
            run_batch(specs, opts, checkpoint=ckpt,
                      on_progress=interrupt_after_two)
    events = [r["name"] for r in tracer.records() if r["type"] == "event"]
    assert "interrupt" in events

    rows = load_csv(ckpt)  # closed cleanly: parseable, both rows intact
    assert len(rows) == 2
    assert [r["case"] for r in rows] == [s.name for s in specs[:2]]

    computed = []
    batch = run_batch(specs, opts, checkpoint=ckpt, resume=True,
                      on_progress=lambda d, t, row: computed.append(row))
    assert len(batch.rows) == 4
    assert len(computed) == 2  # only the remainder was executed
    assert {r["case"] for r in computed} == {s.name for s in specs[2:]}
    assert len(load_csv(ckpt)) == 4


def test_run_batch_resume_tolerates_torn_checkpoint_row(tmp_path):
    specs = [small_spec(s) for s in range(3)]
    opts = SynthesisOptions(time_limit=30)
    ckpt = tmp_path / "checkpoint.csv"
    run_batch(specs[:2], opts, checkpoint=ckpt)
    raw = ckpt.read_text()
    ckpt.write_text(raw[: raw.rstrip("\n").rfind("\n") + 1]
                    + "torn,partial")  # crash mid-append on the last row
    batch = run_batch(specs, opts, checkpoint=ckpt, resume=True)
    assert len(batch.rows) == 3  # the torn row's spec simply re-ran
    assert sorted(r["case"] for r in batch.rows) == \
        sorted(s.name for s in specs)


# ----------------------------------------------------------------------
# `repro submit --wait` exit codes (shared contract with `repro serve`)
# ----------------------------------------------------------------------
def _write_small_spec(tmp_path, seed=0):
    import json

    from repro.io import spec_to_dict

    path = tmp_path / f"spec-{seed}.json"
    path.write_text(json.dumps(spec_to_dict(small_spec(seed))))
    return path


def _run_cli(args, timeout=180, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=timeout,
                          env=env)
    return proc.returncode, proc.stdout, proc.stderr


def test_submit_wait_exits_zero_on_done(tmp_path):
    spec = _write_small_spec(tmp_path)
    journal = tmp_path / "j.jsonl"
    rc, out, err = _run_cli(["submit", str(spec), "--journal", str(journal),
                             "--wait", "--time-limit", "30"])
    assert rc == 0, f"{out!r} {err!r}"
    assert ": done" in out
    assert validate_journal(journal) == {"done": 1}


def test_submit_wait_interrupt_exits_three_with_job_journaled(tmp_path):
    """Satellite regression: the documented exit-3 ('pending work stays
    journaled') contract must hold for `repro submit --wait`, not just
    `repro serve` — a scheduler retrying on 3 re-runs either command."""
    journal = tmp_path / "j.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "submit", "example_4_2",
         "--journal", str(journal), "--wait",
         "--time-limit", "120", "--drain-timeout", "3"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    assert line.startswith("waiting:"), line
    time.sleep(1.0)  # land mid-solve (the case runs for ~30s)
    proc.send_signal(signal.SIGINT)
    out, err = proc.communicate(timeout=60)
    assert proc.returncode == 3, f"{line!r} {out!r} {err!r}"
    assert "left journaled" in out
    jobs = replay_journal(journal).jobs
    assert len(jobs) == 1
    assert all(not j.terminal for j in jobs.values())
    validate_journal(journal)  # still schema-valid and exactly-once


def test_submit_rejects_neither_and_both_transports(tmp_path):
    spec = _write_small_spec(tmp_path)
    rc, out, _ = _run_cli(["submit", str(spec)])
    assert rc == 2 and "--journal or --url" in out
    rc, out, _ = _run_cli(["submit", str(spec),
                           "--journal", str(tmp_path / "j.jsonl"),
                           "--url", "http://127.0.0.1:1"])
    assert rc == 2 and "--journal or --url" in out

"""Tests for journaled, exactly-once repair jobs through the service.

Mid-campaign fault injection closed loop at the service tier: faults
become repair jobs correlated to the original job, deduplicated through
the fault-salted fingerprint, visible as ``repair_*`` counters and
``fault_detected``/``repair_*`` events, and durable across both a
journal replay and a SIGKILLed shard.
"""

import time

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.errors import RepairError, ServiceError
from repro.io import spec_to_dict
from repro.obs import Tracer, use_tracer
from repro.service import (
    HTTPServiceError,
    ServiceHTTPServer,
    ShardCoordinator,
    SynthesisService,
    fetch_metrics,
    is_repair_job,
    submit_job,
    submit_repair,
    validate_journal,
    wait_job,
)
from repro.sim.faults import stuck_closed

OPTS = SynthesisOptions(time_limit=30)
OPTS_DICT = {"time_limit": 30}


def small_spec(seed=0):
    return generate_case(seed=seed, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=0, binding=BindingPolicy.FIXED)


def internal_segment(spec):
    """First junction-junction segment: masking it keeps pins alive."""
    return next(k for k in sorted(spec.switch.segments)
                if not spec.switch.is_pin(k[0])
                and not spec.switch.is_pin(k[1]))


# ----------------------------------------------------------------------
# in-process service
# ----------------------------------------------------------------------
def test_submit_repair_is_exactly_once_and_correlated(tmp_path):
    spec = small_spec()
    seg = internal_segment(spec)
    tracer = Tracer("repair")
    with use_tracer(tracer):
        with SynthesisService(tmp_path / "j.jsonl", workers=1,
                              options=OPTS) as svc:
            original_id = svc.submit(spec)
            original = svc.wait(original_id, timeout=120)
            assert original.state == "done"
            assert not is_repair_job(original)

            repair_id = svc.submit_repair(
                original_id, [stuck_closed(*seg)])
            # the fault-salted fingerprint dedups the retry
            assert svc.submit_repair(
                original_id, [stuck_closed(*seg)]) == repair_id
            assert repair_id != original_id

            record = svc.wait(repair_id, timeout=120)
            assert record.state == "done"
            assert record.row["status"] == "optimal"
            assert is_repair_job(record)
            # the repair rides the original campaign's correlation ID
            assert record.corr == original.corr
            counters = {
                name: tracer.metrics.counter(
                    name, instance=svc.instance).value
                for name in ("repair_submitted", "repair_completed",
                             "repair_faults_detected")
            }
    assert counters["repair_submitted"] == 1
    assert counters["repair_completed"] == 1
    assert counters["repair_faults_detected"] >= 1
    events = [r for r in tracer.records() if r["type"] == "event"]
    names = [r["name"] for r in events]
    for expected in ("fault_detected", "repair_submitted", "repair_done"):
        assert expected in names
    repair_events = [r for r in events
                     if r["name"] in ("repair_submitted", "repair_done")]
    assert all(r.get("corr") == original.corr for r in repair_events)
    # exactly-once on the journal: one original + one repair, both done
    assert validate_journal(tmp_path / "j.jsonl") == {"done": 2}


def test_submit_repair_validates_inputs(tmp_path):
    spec = small_spec()
    with SynthesisService(tmp_path / "j.jsonl", workers=1,
                          options=OPTS) as svc:
        job_id = svc.submit(spec)
        svc.wait(job_id, timeout=120)
        with pytest.raises(ServiceError, match="unknown job"):
            svc.submit_repair("no-such-job", [stuck_closed("A", "B")])
        with pytest.raises(RepairError):
            svc.submit_repair(job_id, [])


def test_repair_job_replays_from_the_journal(tmp_path):
    """A journaled-but-unfinished repair job survives a service death
    and is executed exactly once by the next service."""
    spec = small_spec()
    seg = internal_segment(spec)
    path = tmp_path / "j.jsonl"
    with SynthesisService(path, workers=1, options=OPTS) as svc:
        original_id = svc.submit(spec)
        svc.wait(original_id, timeout=120)

    # journal the repair with workers held off, then "crash"
    service = SynthesisService(path, workers=1, options=OPTS)
    service._supervisor.start = lambda: None
    service.start()
    repair_id = service.submit_repair(original_id, [stuck_closed(*seg)])
    assert not service.job(repair_id).terminal
    service.stop(drain=False)

    tracer = Tracer("replay")
    with use_tracer(tracer):
        with SynthesisService(path, workers=1, options=OPTS) as svc2:
            assert svc2.run_until_complete(timeout=120) == "complete"
            record = svc2.job(repair_id)
            assert record.state == "done"
            assert is_repair_job(record)
    assert validate_journal(path) == {"done": 2}


# ----------------------------------------------------------------------
# sharded platform + HTTP
# ----------------------------------------------------------------------
def test_coordinator_repair_survives_shard_sigkill(tmp_path):
    spec = small_spec()
    seg = internal_segment(spec)
    with ShardCoordinator(str(tmp_path / "platform"), shards=2, workers=1,
                          options=OPTS_DICT) as coord:
        job = coord.submit(spec_to_dict(spec))
        done = coord.wait(job["id"], timeout=180)
        assert done["state"] == "done"

        triples = [(seg[0], seg[1], "stuck_closed")]
        first = coord.submit_repair(job["id"], triples)
        again = coord.submit_repair(job["id"], triples)
        assert again["id"] == first["id"]
        assert first["id"] != job["id"]
        assert first["corr"] == done["corr"]
        # routing invariant: the repair job lives on its fingerprint's
        # shard, wherever that is
        assert coord.route(first["id"]) == first["shard"]

        coord.kill_shard(first["shard"])
        final = coord.wait(first["id"], timeout=240)
        assert final["state"] == "done"
    totals = {}
    for index in range(2):
        path = tmp_path / "platform" / f"shard-{index}.jsonl"
        if path.exists():
            for state, count in validate_journal(path).items():
                totals[state] = totals.get(state, 0) + count
    assert totals == {"done": 2}


def test_http_repair_endpoint_round_trip(tmp_path):
    spec = small_spec()
    seg = internal_segment(spec)
    with ShardCoordinator(str(tmp_path / "platform"), shards=1, workers=1,
                          options=OPTS_DICT) as coord:
        with ServiceHTTPServer(coord) as server:
            job = submit_job(server.url, spec_to_dict(spec))
            assert wait_job(server.url, job["id"],
                            timeout=180)["state"] == "done"

            triples = [[seg[0], seg[1], "stuck_closed"]]
            repair_job = submit_repair(server.url, job["id"], triples)
            assert repair_job["id"] != job["id"]
            final = wait_job(server.url, repair_job["id"], timeout=180)
            assert final["state"] == "done"

            # repair counters surface on /metrics (streamed; poll a bit)
            deadline = time.monotonic() + 10.0
            text = ""
            while time.monotonic() < deadline:
                text = fetch_metrics(server.url)
                if "repair_completed" in text:
                    break
                time.sleep(0.2)
            assert "repair_submitted" in text
            assert "repair_completed" in text

            with pytest.raises(HTTPServiceError) as exc:
                submit_repair(server.url, "no-such-job", triples)
            assert exc.value.status == 404
            with pytest.raises(HTTPServiceError) as exc:
                submit_repair(server.url, job["id"], [])
            assert exc.value.status == 400
            with pytest.raises(HTTPServiceError) as exc:
                submit_repair(server.url, job["id"],
                              [["NO", "PE", "stuck_closed"]])
            assert exc.value.status == 400
    assert validate_journal(
        tmp_path / "platform" / "shard-0.jsonl") == {"done": 2}

"""Cold/warm smoke driver for the persistent solve cache.

Orchestrates the cross-process cache story end to end, the way CI
runs it:

1. **Cold pass** — a child process sweeps N generated cases against an
   empty :class:`repro.store.Store`, exporting every result as JSON
   and a pass summary (wall clock, Tier-A hit count).
2. **Warm pass** — a *second* child process repeats the identical
   sweep against the now-populated store. Nothing in-process survives
   between the passes, so every hit must come off disk, cross the
   entry-envelope validation and the independent result
   re-verification.
3. **Validation** — the orchestrator gates on a >=90% Tier-A hit rate
   in the warm pass, byte-identical result JSON between the passes
   (measurement fields aside), a warm sweep at least
   :data:`WARM_FLOOR`x faster than cold, and a clean
   ``repro cache verify`` over the final store.

Usage (the orchestrating entry point CI calls)::

    python benchmarks/cache_smoke.py --out cache-artifacts

Artifacts land in ``--out``: ``cold/`` and ``warm/`` result exports,
``stats.json`` (the final store inventory) and ``summary.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cases import generate_case  # noqa: E402
from repro.core import BindingPolicy, SynthesisOptions, synthesize  # noqa: E402
from repro.io.atomic import atomic_write_text  # noqa: E402
from repro.io.result_json import result_to_dict  # noqa: E402
from repro.store import Store  # noqa: E402

#: Warm pass must answer at least this fraction of cases from Tier A.
HIT_RATE_FLOOR = 0.9
#: Warm sweep wall-clock must beat cold by at least this factor.
WARM_FLOOR = 5.0
#: Fields that legitimately differ between the passes (timers only).
VOLATILE = ("runtime_s", "timings_s", "counters")


def make_specs(n: int):
    """Small 3-flow cases: a few hundred ms cold, milliseconds warm."""
    return [generate_case(seed=40 + s, switch_size=8, n_flows=3)
            for s in range(n)]


def sweep(args: argparse.Namespace) -> int:
    """One pass (child process): solve every case against the store."""
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    store = Store(args.store)
    options = SynthesisOptions(time_limit=120, store=store)
    hits = 0
    start = time.perf_counter()
    for i, spec in enumerate(make_specs(args.specs)):
        result = synthesize(spec, options)
        hits += result.counters.get("store_hit", 0)
        atomic_write_text(
            out / f"case_{i:02d}.json",
            json.dumps(result_to_dict(result), indent=2, sort_keys=True)
            + "\n")
    wall = time.perf_counter() - start
    atomic_write_text(out / "pass.json", json.dumps({
        "cases": args.specs,
        "tier_a_hits": hits,
        "wall_s": round(wall, 6),
        "store": store.stats(),
    }, indent=2) + "\n")
    return 0


def _comparable(path: Path) -> str:
    row = json.loads(path.read_text(encoding="utf-8"))
    for volatile in VOLATILE:
        row.pop(volatile, None)
    return json.dumps(row, sort_keys=True)


def _run_child(argv, env) -> None:
    proc = subprocess.run([sys.executable, *argv], env=env)
    if proc.returncode != 0:
        raise SystemExit(f"child {' '.join(argv[1:])} failed "
                         f"(rc {proc.returncode})")


def orchestrate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    store_root = out / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))

    passes = {}
    for label in ("cold", "warm"):
        _run_child([__file__, "--sweep", "--specs", str(args.specs),
                    "--store", str(store_root), "--out", str(out / label)],
                   env)
        passes[label] = json.loads(
            (out / label / "pass.json").read_text(encoding="utf-8"))

    failures = []
    cold, warm = passes["cold"], passes["warm"]
    hit_rate = warm["tier_a_hits"] / warm["cases"]
    if hit_rate < HIT_RATE_FLOOR:
        failures.append(
            f"warm Tier-A hit rate {hit_rate:.0%} below "
            f"{HIT_RATE_FLOOR:.0%} ({warm['tier_a_hits']}/{warm['cases']})")
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    if speedup < WARM_FLOOR:
        failures.append(
            f"warm sweep only {speedup:.1f}x faster than cold "
            f"({cold['wall_s']}s -> {warm['wall_s']}s), floor {WARM_FLOOR}x")
    mismatched = [
        path.name for path in sorted((out / "cold").glob("case_*.json"))
        if _comparable(path) != _comparable(out / "warm" / path.name)
    ]
    if mismatched:
        failures.append(f"warm results differ from cold: {mismatched}")

    # The store the two passes shared must survive a strict audit.
    verify = subprocess.run(
        [sys.executable, "-m", "repro", "cache", "verify",
         "--store", str(store_root)], env=env)
    if verify.returncode != 0:
        failures.append(f"repro cache verify failed (rc {verify.returncode})")

    atomic_write_text(out / "stats.json", json.dumps(
        Store(store_root).stats(), indent=2, sort_keys=True) + "\n")
    summary = {
        "specs": args.specs,
        "cold": cold,
        "warm": warm,
        "warm_hit_rate": round(hit_rate, 4),
        "warm_speedup": round(speedup, 3),
        "mismatched_results": mismatched,
        "failures": failures,
        "ok": not failures,
    }
    atomic_write_text(out / "summary.json",
                      json.dumps(summary, indent=2) + "\n")
    print(json.dumps(summary, indent=2))
    if failures:
        print("CACHE SMOKE FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print(f"cache smoke OK: {warm['tier_a_hits']}/{warm['cases']} warm "
          f"hits, {speedup:.0f}x faster, store verified")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--specs", type=int, default=4,
                        help="number of generated cases to sweep")
    parser.add_argument("--out", default="cache-artifacts",
                        help="artifact directory")
    parser.add_argument("--store", default=None,
                        help="(internal) store root for a --sweep child")
    parser.add_argument("--sweep", action="store_true",
                        help="(internal) run one sweep pass and exit")
    args = parser.parse_args(argv)
    if args.sweep:
        if not args.store:
            parser.error("--sweep requires --store")
        return sweep(args)
    return orchestrate(args)


if __name__ == "__main__":
    sys.exit(main())

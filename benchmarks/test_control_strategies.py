"""Control-layer benches (beyond the paper's scope, §3.5 motivation).

* GRU as-drawn control channels violate the 100 µm spacing rule
  (§2.1's fourth criticism) while the lane router keeps every
  reduced-switch valve set clean;
* pressure sharing vs direct vs multiplexed control on a synthesized
  switch, in control inputs, inlet area and actuation counts — the
  numbers behind the paper's "control inlets take considerable chip
  area" argument.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import format_table
from repro.cases import chip_sw1
from repro.control import compile_program, control_strategy_rows, route_control
from repro.core import BindingPolicy, synthesize
from repro.switches import GRUSwitch
from repro.switches.base import segment_key

_rows = []


def test_gru_control_drc(benchmark, output_dir):
    gru = GRUSwitch(8)
    stubs = [segment_key(p, next(iter(gru.graph.neighbors(p))))
             for p in gru.pins]

    def audit():
        drawn = route_control(gru, stubs, strategy="perpendicular")
        fixed = route_control(gru, stubs, strategy="lanes")
        return drawn.violations(), fixed.violations()

    drawn_violations, lane_violations = run_once(benchmark, audit)
    assert drawn_violations      # the paper's criticism, measured
    assert not lane_violations   # and a constructive fix
    _rows.append({
        "subject": "GRU control DRC",
        "as drawn": f"{len(drawn_violations)} violations",
        "lane-routed": "clean",
    })


def test_control_strategies_on_chip(benchmark, output_dir):
    result = synthesize(chip_sw1(BindingPolicy.FIXED), bench_options())
    assert result.status.solved and result.valves.essential

    def compare():
        return control_strategy_rows(result), compile_program(result)

    rows, program = run_once(benchmark, compare)
    direct = next(r for r in rows if r["strategy"].startswith("direct"))
    shared = next(r for r in rows if r["strategy"].startswith("pressure"))
    mux = next(r for r in rows if r["strategy"].startswith("multiplexer"))
    # pressure sharing shrinks inlet area (the §3.5 motivation)
    assert shared["inlet area (mm^2)"] < direct["inlet area (mm^2)"]
    # the mux trades inputs for serial actuations
    assert mux["actuations"] >= shared["actuations"]
    assert program.num_steps == result.num_flow_sets

    report = format_table(_rows) + "\n\n" + format_table(rows)
    write_report(output_dir, "control_strategies", report)

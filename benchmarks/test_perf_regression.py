"""Per-phase performance regression guard.

Runs a small fixed set of representative workloads, records their phase
breakdown (catalog/build/linearize/presolve/solve/extract/...) to
``BENCH_opt.json`` at the repo root, and compares against the previous
snapshot if one exists. A phase only counts as a regression when it is
both **3× slower** than the recorded value *and* slower by more than an
absolute guard (0.2 s) — otherwise a fast phase jittering from 2 ms to
7 ms would fail the build. Timed workloads run ``REPEATS`` times and the
snapshot keeps the per-phase minimum. Shared machines are noisy; the
assert is a smoke alarm for algorithmic regressions (a presolve round
going quadratic, a cache stopping to hit), not a timer.

Run with ``pytest benchmarks/test_perf_regression.py -q``; the CI
micro-benchmark job runs exactly this file.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.cases import chip_sw1, generate_case
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.opt import Model, presolve, quicksum
from repro.perf import PerfRecorder, emit_bench_json, load_bench_json
from repro.switches import clear_path_cache

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_opt.json"

#: Regression thresholds: both must be exceeded for a phase to count.
RATIO_LIMIT = 3.0
ABS_GUARD_S = 0.2

#: Each timed workload runs this many times and the snapshot keeps the
#: per-phase minimum — best-of-N measures the algorithm rather than the
#: scheduler (the shared single-core container jitters by 30%+).
REPEATS = 8


def _best_phases(rows: List[Dict[str, object]]) -> Dict[str, float]:
    best: Dict[str, float] = {}
    for row in rows:
        for phase, seconds in row["phases"].items():
            if phase not in best or seconds < best[phase]:
                best[phase] = seconds
    return best


def _synthesis_record(name: str, spec_factory) -> Dict[str, object]:
    rows = []
    for _ in range(REPEATS):
        clear_path_cache()
        result = synthesize(spec_factory(), SynthesisOptions(time_limit=60))
        rec = PerfRecorder(name)
        rec.timings.merge(result.timings)
        rec.counters.update(result.counters)  # nodes, lp_calls, cuts, ...
        row = rec.record()
        row["status"] = result.status.value
        rows.append(row)
    best = rows[-1]
    best["phases"] = _best_phases(rows)
    best["total_s"] = round(sum(best["phases"].values()), 6)
    return best


def _presolve_micro_record() -> Dict[str, object]:
    """Vectorized presolve on a chained-equality ladder (pure machinery)."""
    rec = PerfRecorder("presolve_micro")
    m = Model("ladder")
    xs = [m.add_integer(f"x{i}", 0, 50) for i in range(400)]
    m.add_constr(xs[0] == 7)
    for a, b in zip(xs, xs[1:]):
        m.add_constr(a + b == 20)
    m.set_objective(quicksum(xs), "min")
    with rec.phase("presolve"):
        res = presolve(m)
    assert res.model.num_vars == 0  # the ladder collapses entirely
    return rec.record()


def _compile_cache_record() -> Dict[str, object]:
    """Repeated solves of one model: later solves reuse the compilation."""
    from repro.core.builder import SynthesisModelBuilder
    from repro.core.synthesizer import build_catalog

    rows = []
    for _ in range(REPEATS):
        rec = PerfRecorder("compile_cache")
        spec = generate_case(seed=11, switch_size=8, n_flows=3)
        catalog = build_catalog(spec, SynthesisOptions())
        # A fresh model per repetition: the first solve must be cold
        # (the result memo would otherwise serve it instantly).
        built = SynthesisModelBuilder(spec, catalog).build()
        with rec.phase("solve"):
            first = built.model.solve(time_limit=60)
        rec.counters.update(first.counters)
        with rec.phase("resolve"):  # compiled arrays + result memo hit now
            second = built.model.solve(time_limit=60)
        rec.counters.update(
            {f"resolve_{k}": v for k, v in second.counters.items()})
        rows.append(rec.record())
    best = rows[-1]
    best["phases"] = _best_phases(rows)
    best["total_s"] = round(sum(best["phases"].values()), 6)
    return best


def collect_records() -> List[Dict[str, object]]:
    return [
        _synthesis_record("chip_sw1_fixed",
                          lambda: chip_sw1(BindingPolicy.FIXED)),
        _synthesis_record("artificial_8pin",
                          lambda: generate_case(seed=42, switch_size=8, n_flows=3)),
        _presolve_micro_record(),
        _compile_cache_record(),
    ]


def _regressions(previous: Dict[str, object],
                 records: List[Dict[str, object]]) -> List[str]:
    old_by_name = {r["name"]: r for r in previous.get("records", [])
                   if isinstance(r, dict) and "name" in r}
    problems = []
    for record in records:
        old = old_by_name.get(record["name"])
        if not old:
            continue  # new workload: nothing to compare
        old_phases = old.get("phases", {})
        for phase, seconds in record["phases"].items():
            before = old_phases.get(phase)
            if before is None or before <= 0:
                continue
            if seconds > RATIO_LIMIT * before and seconds - before > ABS_GUARD_S:
                problems.append(
                    f"{record['name']}/{phase}: {before:.4f}s -> {seconds:.4f}s "
                    f"({seconds / before:.1f}x)"
                )
    return problems


def test_phase_timings_regression():
    previous = load_bench_json(BENCH_PATH)
    records = collect_records()
    problems = _regressions(previous, records) if previous else []
    emit_bench_json(BENCH_PATH, records, meta={
        "python": platform.python_version(),
        "machine": platform.machine(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "ratio_limit": RATIO_LIMIT,
        "abs_guard_s": ABS_GUARD_S,
        "repeats": REPEATS,
    })
    assert not problems, "phase regressions vs BENCH_opt.json: " + "; ".join(problems)

"""Per-phase performance regression guard.

Runs a small fixed set of representative workloads, records their phase
breakdown (catalog/build/linearize/presolve/solve/extract/...) to
``BENCH_opt.json`` at the repo root, and compares against the previous
snapshot if one exists. A phase only counts as a regression when it is
both **3× slower** than the recorded value *and* slower by more than an
absolute guard (0.2 s) — otherwise a fast phase jittering from 2 ms to
7 ms would fail the build. Timed workloads run ``REPEATS`` times and the
snapshot keeps the per-phase minimum. Shared machines are noisy; the
assert is a smoke alarm for algorithmic regressions (a presolve round
going quadratic, a cache stopping to hit), not a timer.

Run with ``pytest benchmarks/test_perf_regression.py -q``; the CI
micro-benchmark job runs exactly this file.
"""

from __future__ import annotations

import os
import platform
import random
import time
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.cases import chip_sw1, generate_case
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.opt import Model, presolve, quicksum
from repro.perf import PerfRecorder, emit_bench_json, load_bench_json
from repro.switches import clear_path_cache

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_opt.json"

#: Regression thresholds: both must be exceeded for a phase to count.
RATIO_LIMIT = 3.0
ABS_GUARD_S = 0.2

#: Each timed workload runs this many times and the snapshot keeps the
#: per-phase minimum — best-of-N measures the algorithm rather than the
#: scheduler (the shared single-core container jitters by 30%+).
REPEATS = 8


def _best_phases(rows: List[Dict[str, object]]) -> Dict[str, float]:
    best: Dict[str, float] = {}
    for row in rows:
        for phase, seconds in row["phases"].items():
            if phase not in best or seconds < best[phase]:
                best[phase] = seconds
    return best


def _synthesis_record(name: str, spec_factory) -> Dict[str, object]:
    rows = []
    for _ in range(REPEATS):
        clear_path_cache()
        result = synthesize(spec_factory(), SynthesisOptions(time_limit=60))
        rec = PerfRecorder(name)
        rec.timings.merge(result.timings)
        rec.counters.update(result.counters)  # nodes, lp_calls, cuts, ...
        row = rec.record()
        row["status"] = result.status.value
        rows.append(row)
    best = rows[-1]
    best["phases"] = _best_phases(rows)
    best["total_s"] = round(sum(best["phases"].values()), 6)
    return best


def _presolve_micro_record() -> Dict[str, object]:
    """Vectorized presolve on a chained-equality ladder (pure machinery)."""
    rec = PerfRecorder("presolve_micro")
    m = Model("ladder")
    xs = [m.add_integer(f"x{i}", 0, 50) for i in range(400)]
    m.add_constr(xs[0] == 7)
    for a, b in zip(xs, xs[1:]):
        m.add_constr(a + b == 20)
    m.set_objective(quicksum(xs), "min")
    with rec.phase("presolve"):
        res = presolve(m)
    assert res.model.num_vars == 0  # the ladder collapses entirely
    return rec.record()


def _compile_cache_record() -> Dict[str, object]:
    """Repeated solves of one model: later solves reuse the compilation."""
    from repro.core.builder import SynthesisModelBuilder
    from repro.core.synthesizer import build_catalog

    rows = []
    for _ in range(REPEATS):
        rec = PerfRecorder("compile_cache")
        spec = generate_case(seed=11, switch_size=8, n_flows=3)
        catalog = build_catalog(spec, SynthesisOptions())
        # A fresh model per repetition: the first solve must be cold
        # (the result memo would otherwise serve it instantly).
        built = SynthesisModelBuilder(spec, catalog).build()
        with rec.phase("solve"):
            first = built.model.solve(time_limit=60)
        rec.counters.update(first.counters)
        with rec.phase("resolve"):  # compiled arrays + result memo hit now
            second = built.model.solve(time_limit=60)
        rec.counters.update(
            {f"resolve_{k}": v for k, v in second.counters.items()})
        rows.append(rec.record())
    best = rows[-1]
    best["phases"] = _best_phases(rows)
    best["total_s"] = round(sum(best["phases"].values()), 6)
    return best


#: Worker counts for the parallel branch-and-bound speedup curve.
SPEEDUP_WORKER_COUNTS = (1, 2, 4)
SPEEDUP_REPEATS = 3
#: Minimum 4-worker speedup gated in CI (only on machines with >=4 cores).
SPEEDUP_FLOOR = 2.0

_SPEEDUP_RECORD: Optional[Dict[str, object]] = None


def _mkp_model(seed: int, n: int = 18, rows: int = 4,
               tightness: float = 0.45) -> Model:
    """Multi-dimensional knapsack with a fractional LP relaxation.

    The synthesis cases warm-start to the optimum and close at the root
    (``nodes: 1`` in the snapshot), so they cannot exercise the round
    loop; these instances open real trees of a few hundred nodes.
    """
    rng = random.Random(seed)
    m = Model(f"mkp{seed}_{n}")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    for _ in range(rows):
        w = [rng.randint(3, 30) for _ in range(n)]
        m.add_constr(quicksum(wi * x for wi, x in zip(w, xs))
                     <= int(tightness * sum(w)))
    m.set_objective(
        quicksum(rng.randint(5, 40) * x for x in xs), "max")
    return m


def _parallel_speedup_record() -> Dict[str, object]:
    """1->N worker speedup curve for the ``parallel_bb`` backend.

    ``phases`` stays empty on purpose: wall-clock here scales with the
    runner's core count, so the 3x phase-ratio guard must never compare
    it across machines. The only gate is the conditional test below.
    The per-worker-count node totals double as a determinism proof in
    the committed artifact — they must be identical down the column.
    """
    global _SPEEDUP_RECORD
    # Chosen to open trees of several hundred nodes each (649 and 367
    # at the time of writing) so the round phase dominates the serial
    # root expansion — small trees would only measure Amdahl's law.
    instances = [(3, 30, 5, 0.45), (9, 30, 5, 0.44)]
    walls: Dict[int, float] = {}
    counters: Dict[str, object] = {"cpu_count": os.cpu_count() or 1}
    for workers in SPEEDUP_WORKER_COUNTS:
        best_wall = float("inf")
        nodes = lp_calls = 0
        for _ in range(SPEEDUP_REPEATS):
            nodes = lp_calls = 0
            start = time.perf_counter()
            for seed, n, rows, tight in instances:
                sol = _mkp_model(seed, n, rows, tight).solve(
                    backend=f"parallel_bb:{workers}")
                assert sol.status.value == "optimal"
                nodes += sol.counters["nodes"]
                lp_calls += sol.counters["lp_calls"]
            best_wall = min(best_wall, time.perf_counter() - start)
        walls[workers] = best_wall
        counters[f"wall_{workers}w_s"] = round(best_wall, 6)
        counters[f"nodes_{workers}w"] = nodes
        counters[f"lp_calls_{workers}w"] = lp_calls
    for workers in SPEEDUP_WORKER_COUNTS[1:]:
        counters[f"speedup_{workers}w"] = round(
            walls[1] / walls[workers], 3)
    _SPEEDUP_RECORD = {
        "name": "parallel_speedup",
        "phases": {},
        "total_s": 0,
        "counters": counters,
    }
    return _SPEEDUP_RECORD


#: Seeds of the cold-vs-warm store sweep (8-pin, 3-flow cases that
#: solve in a few hundred ms each — big enough that the warm pass's
#: re-verification cost is negligible against the cold solve).
STORE_SWEEP_SEEDS = (42, 7, 19)
#: Minimum cold/warm wall-clock ratio gated by test_store_warm_speedup.
STORE_WARM_FLOOR = 5.0

_STORE_WARM_RECORD: Optional[Dict[str, object]] = None


def _store_warm_record() -> Dict[str, object]:
    """Cold-vs-warm synthesis sweep against a fresh persistent store.

    The cold pass solves every case and fills the store (Tier A); the
    warm pass repeats the identical sweep after clearing the in-process
    path cache, so every answer must come from disk and survive the
    independent re-verification. ``phases`` stays empty on purpose:
    cold wall-clock is machine-dependent MILP time, which the 3x
    phase-ratio guard must never compare across machines. The gates
    live in :func:`test_store_warm_speedup` instead: a 100% Tier-A hit
    rate, results identical field-for-field, and a cold/warm ratio of
    at least :data:`STORE_WARM_FLOOR`.
    """
    global _STORE_WARM_RECORD
    import json
    import shutil
    import tempfile

    from repro.io.result_json import result_to_dict
    from repro.store import Store

    def sweep_specs():
        return [generate_case(seed=s, switch_size=8, n_flows=3)
                for s in STORE_SWEEP_SEEDS]

    def identity(result):
        # Everything except the measurement fields must match exactly:
        # objective, binding, routes, flow sets, valves, pressure.
        row = result_to_dict(result)
        for volatile in ("runtime_s", "timings_s", "counters"):
            row.pop(volatile, None)
        return json.dumps(row, sort_keys=True)

    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = Store(root)
        options = SynthesisOptions(time_limit=60, store=store)
        clear_path_cache()
        start = time.perf_counter()
        cold = [synthesize(spec, options) for spec in sweep_specs()]
        cold_wall = time.perf_counter() - start
        clear_path_cache()  # the warm pass simulates a fresh process
        start = time.perf_counter()
        warm = [synthesize(spec, options) for spec in sweep_specs()]
        warm_wall = time.perf_counter() - start
        counters: Dict[str, object] = {
            "cases": len(cold),
            "cold_wall_s": round(cold_wall, 6),
            "warm_wall_s": round(warm_wall, 6),
            "speedup": round(cold_wall / warm_wall, 3),
            "warm_tier_a_hits": sum(
                r.counters.get("store_hit", 0) for r in warm),
            "identical_results": int(
                [identity(r) for r in cold] == [identity(r) for r in warm]),
            "store_entries": store.stats()["entries"],
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    _STORE_WARM_RECORD = {
        "name": "store_warm_sweep",
        "phases": {},
        "total_s": 0,
        "counters": counters,
    }
    return _STORE_WARM_RECORD


def collect_records() -> List[Dict[str, object]]:
    return [
        _synthesis_record("chip_sw1_fixed",
                          lambda: chip_sw1(BindingPolicy.FIXED)),
        _synthesis_record("artificial_8pin",
                          lambda: generate_case(seed=42, switch_size=8, n_flows=3)),
        _presolve_micro_record(),
        _compile_cache_record(),
        _parallel_speedup_record(),
        _store_warm_record(),
    ]


def _regressions(previous: Dict[str, object],
                 records: List[Dict[str, object]]) -> List[str]:
    old_by_name = {r["name"]: r for r in previous.get("records", [])
                   if isinstance(r, dict) and "name" in r}
    problems = []
    for record in records:
        old = old_by_name.get(record["name"])
        if not old:
            continue  # new workload: nothing to compare
        old_phases = old.get("phases", {})
        for phase, seconds in record["phases"].items():
            before = old_phases.get(phase)
            if before is None or before <= 0:
                continue
            if seconds > RATIO_LIMIT * before and seconds - before > ABS_GUARD_S:
                problems.append(
                    f"{record['name']}/{phase}: {before:.4f}s -> {seconds:.4f}s "
                    f"({seconds / before:.1f}x)"
                )
    return problems


def test_phase_timings_regression():
    previous = load_bench_json(BENCH_PATH)
    records = collect_records()
    problems = _regressions(previous, records) if previous else []
    emit_bench_json(BENCH_PATH, records, meta={
        "python": platform.python_version(),
        "machine": platform.machine(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "ratio_limit": RATIO_LIMIT,
        "abs_guard_s": ABS_GUARD_S,
        "repeats": REPEATS,
    })
    assert not problems, "phase regressions vs BENCH_opt.json: " + "; ".join(problems)


def test_parallel_worker_speedup():
    """Determinism always; the >=2x speedup floor only on real cores.

    The curve reuses the record collected by the phase-timing test when
    that ran first (one measurement per session); under ``-k speedup``
    it measures fresh. Single- and dual-core runners (including the
    local dev container) cannot exhibit a 4-worker speedup, so the
    floor applies only when the machine has at least 4 CPUs — matching
    the standard GitHub-hosted runner.
    """
    record = _SPEEDUP_RECORD
    if record is None:
        record = _parallel_speedup_record()
        # Measured standalone (the phase-timing test did not run), so
        # fold the fresh curve into the snapshot ourselves — CI uploads
        # BENCH_opt.json as the speedup artifact.
        previous = load_bench_json(BENCH_PATH) or {"records": []}
        records = [r for r in previous["records"]
                   if r.get("name") != record["name"]] + [record]
        emit_bench_json(BENCH_PATH, records, meta=previous.get("meta"))
    counters = record["counters"]
    assert counters["nodes_1w"] == counters["nodes_2w"] == counters["nodes_4w"]
    assert (counters["lp_calls_1w"] == counters["lp_calls_2w"]
            == counters["lp_calls_4w"])
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(f"speedup floor needs >=4 cores (machine has {cpus})")
    assert counters["speedup_4w"] >= SPEEDUP_FLOOR, (
        f"4-worker speedup {counters['speedup_4w']}x below the "
        f"{SPEEDUP_FLOOR}x floor (walls: "
        f"{counters['wall_1w_s']}s -> {counters['wall_4w_s']}s)")


def test_store_warm_speedup():
    """Warm store sweep: all hits, identical results, >=5x faster.

    Unlike the worker-speedup floor this gate is unconditional — a
    disk read plus re-verification beating a cold MILP solve by 5x
    does not depend on core count, and the margin measured on a
    single-core container is two orders of magnitude.
    """
    record = _STORE_WARM_RECORD
    if record is None:
        record = _store_warm_record()
        # Measured standalone (the phase-timing test did not run), so
        # fold the fresh record into the snapshot ourselves — the CI
        # cache-smoke job uploads BENCH_opt.json as its artifact.
        previous = load_bench_json(BENCH_PATH) or {"records": []}
        records = [r for r in previous["records"]
                   if r.get("name") != record["name"]] + [record]
        emit_bench_json(BENCH_PATH, records, meta=previous.get("meta"))
    counters = record["counters"]
    assert counters["warm_tier_a_hits"] == counters["cases"], (
        f"warm pass answered only {counters['warm_tier_a_hits']} of "
        f"{counters['cases']} cases from the store")
    assert counters["identical_results"] == 1, \
        "warm results differ from the cold pass"
    assert counters["speedup"] >= STORE_WARM_FLOOR, (
        f"warm sweep speedup {counters['speedup']}x below the "
        f"{STORE_WARM_FLOOR}x floor (walls: {counters['cold_wall_s']}s "
        f"-> {counters['warm_wall_s']}s)")

"""§4.2 — the 90 artificial flow-scheduling cases.

Paper observations reproduced here:

* every generated case is scheduled successfully under *some* policy,
  and the unfixed policy always finds a solution;
* restricted policies (fixed/clockwise) may fail only on cases with
  contamination constraints;
* for the same case, the 8-pin switch beats the 12-pin switch on
  runtime and channel length, while scheduling quality (#s) is
  unaffected by the starting size.

By default a stratified 18-case subset runs; ``REPRO_BENCH_FULL=1``
runs all 90.
"""

import pytest

from conftest import bench_options, full_mode, run_once, write_report
from repro.analysis import format_table
from repro.cases import generate_case, suite_90
from repro.core import BindingPolicy, SynthesisStatus, synthesize
from repro.core.verify import verify_result

_summary = {"solved": 0, "failed": 0, "fail_policies": set(), "rows": []}


def _suite():
    specs = suite_90()
    if full_mode():
        return specs
    return specs[::5]  # stratified 18-case subset


def test_artificial_suite(benchmark, output_dir):
    specs = _suite()

    def run_all():
        results = []
        for spec in specs:
            results.append((spec, synthesize(spec, bench_options(time_limit=20))))
        return results

    results = run_once(benchmark, run_all)

    for spec, res in results:
        row = res.table_row()
        _summary["rows"].append(row)
        if res.status.solved:
            _summary["solved"] += 1
            verify_result(res)
        else:
            _summary["failed"] += 1
            _summary["fail_policies"].add(spec.binding.value)
            # paper: failures happen only under restricted policies on
            # conflict-constrained cases
            assert spec.binding is not BindingPolicy.UNFIXED or \
                res.status is SynthesisStatus.TIMEOUT, spec.name
            if res.status is SynthesisStatus.NO_SOLUTION:
                assert spec.conflicts, spec.name

    assert _summary["solved"] > 0
    write_report(output_dir, "artificial_cases",
                 format_table(_summary["rows"])
                 + f"\n\nsolved: {_summary['solved']}, "
                   f"failed: {_summary['failed']} "
                   f"(policies: {sorted(_summary['fail_policies'])})")


def test_8pin_vs_12pin_same_case(benchmark, output_dir):
    """Same input on both switch sizes: the smaller one is at least as
    fast and never longer (paper's size-comparison finding)."""
    pairs = []
    for seed in (11, 22, 33):
        small = generate_case(seed=seed, switch_size=8, n_flows=3, n_inlets=2,
                              n_conflicts=1, binding=BindingPolicy.UNFIXED)
        large = generate_case(seed=seed, switch_size=12, n_flows=3, n_inlets=2,
                              n_conflicts=1, binding=BindingPolicy.UNFIXED)
        pairs.append((small, large))

    def run_all():
        return [(synthesize(s, bench_options(time_limit=60)),
                 synthesize(l, bench_options(time_limit=60)))
                for s, l in pairs]

    results = run_once(benchmark, run_all)
    rows = []
    for (res_s, res_l) in results:
        assert res_s.status.solved and res_l.status.solved
        rows.append({
            "case": res_s.spec.name,
            "8pin T(s)": round(res_s.runtime, 2),
            "12pin T(s)": round(res_l.runtime, 2),
            "8pin L": round(res_s.flow_channel_length, 1),
            "12pin L": round(res_l.flow_channel_length, 1),
            "8pin #s": res_s.num_flow_sets,
            "12pin #s": res_l.num_flow_sets,
        })
        assert res_s.flow_channel_length <= res_l.flow_channel_length + 1e-6
        # scheduling performance unaffected by the starting size
        assert res_s.num_flow_sets == res_l.num_flow_sets
    write_report(output_dir, "artificial_8_vs_12", format_table(rows))
    # runtime: smaller model at least as fast on aggregate
    total_s = sum(r["8pin T(s)"] for r in rows)
    total_l = sum(r["12pin T(s)"] for r in rows)
    assert total_s <= total_l * 1.5

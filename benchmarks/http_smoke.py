"""End-to-end smoke of the sharded HTTP synthesis platform, CLI first.

Drives the platform exactly the way an operator would — through
``repro serve --http`` and ``repro submit --url`` subprocesses, never
importing the coordinator — and proves the crash story over a real
network boundary:

1. **Serve**: start ``repro serve --http 0 --shards N`` on an
   ephemeral port and scrape the ``serving: http://...`` line.
2. **Drive**: submit a batch of generated specs (plus one deliberately
   heavy "blocker" that pins a worker for the whole time limit) via
   ``repro submit --url``.
3. **Chaos**: read the per-shard pids from ``GET /stats``, SIGKILL the
   shard with work in flight, and watch the coordinator respawn it on
   its journal (``restarts`` rises, nothing is lost).
4. **Verify**: every job reaches a terminal state; an idempotent
   resubmission returns the *same* job id with exit code 0 without
   re-solving; SIGINT drains the platform (exit 0); and
   :func:`repro.service.validate_journal` replays every shard journal
   with strict checks, proving exactly-once completion across the kill.
5. **Telemetry**: scrape ``GET /metrics`` and gate it with
   :func:`repro.obs.telemetry.validate_prometheus_text`; fetch a
   completed job's flight-recorder trace from ``GET /jobs/<id>/trace``
   and schema-check it; after shutdown, validate the merged
   ``repro-obs-v1`` artifact the coordinator wrote. All three land in
   ``--out`` for CI upload.

Usage (the entry point CI's ``http-smoke`` job calls)::

    python benchmarks/http_smoke.py --specs 6 --shards 2 --out smoke-artifacts

Artifacts land in ``--out``: the per-shard journals under ``journal/``
and a machine-readable ``summary.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cases import generate_case  # noqa: E402
from repro.core import BindingPolicy  # noqa: E402
from repro.io import spec_to_dict  # noqa: E402
from repro.obs import read_trace_jsonl, validate_trace_records  # noqa: E402
from repro.obs.telemetry import validate_prometheus_text  # noqa: E402
from repro.service import validate_journal  # noqa: E402
from repro.service.journal import TERMINAL_STATES  # noqa: E402

#: The heavy case: UNFIXED binding over a 12-way switch runs for the
#: whole time limit, guaranteeing in-flight work when the kill lands.
BLOCKER_SEED = 9


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def write_specs(out: Path, n: int) -> list:
    spec_dir = out / "specs"
    spec_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for seed in range(n):
        spec = generate_case(seed=seed, switch_size=8, n_flows=2,
                             n_inlets=2, n_conflicts=0,
                             binding=BindingPolicy.FIXED)
        path = spec_dir / f"case-{seed}.json"
        path.write_text(json.dumps(spec_to_dict(spec)))
        paths.append(path)
    blocker = generate_case(seed=BLOCKER_SEED, switch_size=12, n_flows=6,
                            n_inlets=4, n_conflicts=2,
                            binding=BindingPolicy.UNFIXED)
    path = spec_dir / "blocker.json"
    path.write_text(json.dumps(spec_to_dict(blocker)))
    paths.append(path)
    return paths


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def submit(url: str, spec_path: Path, *extra: str) -> tuple:
    """``repro submit --url``; returns (exit code, job id, stdout)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "submit", str(spec_path),
         "--url", url, *extra],
        capture_output=True, text=True, env=cli_env(), timeout=300)
    job_id = None
    for line in proc.stdout.splitlines():
        if line.startswith("job "):
            job_id = line.split()[1].rstrip(":")
            break
    return proc.returncode, job_id, proc.stdout + proc.stderr


def wait_for(predicate, deadline: float, poll: float = 0.5):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--specs", type=int,
                        default=int(os.environ.get("REPRO_SMOKE_SPECS", 6)))
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--time-limit", type=float, default=10.0)
    parser.add_argument("--out", default="smoke-artifacts")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    journal_dir = out / "journal"
    trace_dir = out / "traces"
    spec_paths = write_specs(out, args.specs)
    failures = []

    print(f"[smoke] serving {args.shards} shard(s) x {args.workers} "
          f"worker(s) on an ephemeral port ...", flush=True)
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--http", "0",
         "--shards", str(args.shards), "--workers", str(args.workers),
         "--journal", str(journal_dir),
         "--trace", str(trace_dir),
         "--time-limit", str(args.time_limit)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=cli_env())
    try:
        line = serve.stdout.readline()
        if not line.startswith("serving: "):
            raise RuntimeError(f"serve did not come up: {line!r}")
        url = line.split()[1]
        print(f"[smoke] platform up at {url}", flush=True)

        jobs = {}
        for path in spec_paths:
            code, job_id, output = submit(url, path)
            if code != 0 or job_id is None:
                failures.append(f"submit {path.name} exited {code}: {output}")
                continue
            jobs[path.name] = job_id
        expected = len(spec_paths)
        print(f"[smoke] submitted {len(jobs)}/{expected} job(s)", flush=True)

        # Kill the shard that is actually working (the blocker pins a
        # worker for the whole time limit, so one shard must be busy).
        stats = get_json(f"{url}/stats")
        busy = [key for key, shard in stats["shards"].items()
                if shard.get("in_flight", 0) > 0]
        victim = busy[0] if busy else "0"
        pid = stats["shards"][victim].get("pid")
        print(f"[smoke] SIGKILL shard {victim} (pid {pid}, "
              f"in-flight {stats['shards'][victim].get('in_flight')})",
              flush=True)
        os.kill(pid, signal.SIGKILL)

        recovered = wait_for(
            lambda: (lambda s: s["restarts"] >= 1 and
                     s["shards"].get(victim, {}).get("pid") not in
                     (None, pid) and s)(get_json(f"{url}/stats")),
            deadline=60.0)
        if not recovered:
            failures.append(f"shard {victim} never respawned")
        else:
            print(f"[smoke] shard {victim} respawned as pid "
                  f"{recovered['shards'][victim]['pid']} (restarts "
                  f"{recovered['restarts']})", flush=True)

        def all_terminal():
            stats = get_json(f"{url}/stats")
            counts = stats.get("jobs", {})
            done = sum(counts.get(state, 0) for state in TERMINAL_STATES)
            return stats if done >= expected else None

        final = wait_for(all_terminal, deadline=12 * args.time_limit + 120)
        if not final:
            failures.append("jobs did not all reach a terminal state; "
                            f"last stats: {get_json(f'{url}/stats')}")
        else:
            print(f"[smoke] all terminal: {final['jobs']}", flush=True)
            if final["jobs"].get("failed"):
                failures.append(f"failed jobs after recovery: "
                                f"{final['jobs']}")

        # Idempotent resubmission: same id, already terminal, exit 0,
        # and the journals must show no second execution (validated
        # below by replay).
        code, again, output = submit(url, spec_paths[0], "--wait")
        if code != 0:
            failures.append(f"dedup resubmit exited {code}: {output}")
        if again != jobs.get(spec_paths[0].name):
            failures.append(f"resubmission changed identity: "
                            f"{again} != {jobs.get(spec_paths[0].name)}")

        health = get_json(f"{url}/health")
        if not health.get("ok"):
            failures.append(f"health not ok after recovery: {health}")

        # Telemetry: /metrics must be valid Prometheus exposition
        # carrying the platform rollups even across the SIGKILL ...
        try:
            with urllib.request.urlopen(f"{url}/metrics",
                                        timeout=30) as response:
                metrics_text = response.read().decode("utf-8")
            (out / "metrics.txt").write_text(metrics_text)
            samples = validate_prometheus_text(metrics_text)
            if "platform_jobs" not in metrics_text:
                failures.append("/metrics missing platform_jobs rollup")
            print(f"[smoke] /metrics valid ({samples} samples)",
                  flush=True)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"/metrics failed validation: {exc}")

        # ... and a completed job's flight-recorder trace must come
        # back schema-valid with the job's correlation ID intact.
        try:
            done_id = jobs.get(spec_paths[0].name)
            body = get_json(f"{url}/jobs/{done_id}/trace")
            (out / "job-trace.json").write_text(
                json.dumps(body, indent=2) + "\n")
            validate_trace_records(body["records"])
            corrs = {r.get("corr") for r in body["records"]}
            if not body["records"] or len(corrs) != 1 \
                    or not corrs.pop().startswith(f"{done_id}#"):
                failures.append(
                    f"job trace correlation mismatch: {corrs}")
            print(f"[smoke] job trace valid "
                  f"({len(body['records'])} records)", flush=True)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"job trace failed validation: {exc}")

        serve.send_signal(signal.SIGINT)
        code = serve.wait(timeout=args.time_limit + 120)
        if code != 0:
            failures.append(f"serve exited {code} (want 0: all terminal)")
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait(timeout=30)

    # The journals are the proof: strict replay raises on any double
    # terminal transition (exactly-once across the SIGKILL).
    totals = {}
    for path in sorted(journal_dir.glob("shard-*.jsonl")):
        try:
            for state, count in validate_journal(path).items():
                totals[state] = totals.get(state, 0) + count
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{path.name} failed validation: {exc}")
    if sum(totals.values()) != expected:
        failures.append(f"journalled jobs {totals} != {expected} submitted")
    if set(totals) - set(TERMINAL_STATES):
        failures.append(f"non-terminal jobs left in journals: {totals}")

    # The coordinator writes the whole platform's merged telemetry as
    # one repro-obs-v1 stream on shutdown; it must validate standalone.
    merged_path = trace_dir / "merged-trace.jsonl"
    merged_records = 0
    if not merged_path.exists():
        failures.append(f"merged trace missing: {merged_path}")
    else:
        try:
            data = read_trace_jsonl(merged_path)
            validate_trace_records(data.records)
            merged_records = len(data.records)
            sources = {r.get("src") for r in data.records} - {None}
            if not any(s.startswith("shard-") for s in sources):
                failures.append(
                    f"merged trace has no shard streams: {sources}")
            print(f"[smoke] merged trace valid ({merged_records} "
                  f"records from {sorted(sources)})", flush=True)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"merged trace failed validation: {exc}")

    report = {
        "specs": expected,
        "shards": args.shards,
        "jobs": totals,
        "merged_trace_records": merged_records,
        "failures": failures,
    }
    (out / "summary.json").write_text(json.dumps(report, indent=2) + "\n")
    if failures:
        print("[smoke] FAIL:\n  - " + "\n  - ".join(failures))
        return 1
    print(f"[smoke] PASS: {sum(totals.values())} job(s) terminal exactly "
          f"once across a shard SIGKILL ({totals})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

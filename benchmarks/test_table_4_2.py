"""Table 4.2 / Figure 4.4 — the flow-scheduling example case.

Input: 12-pin switch, 12 connected modules bound clockwise in the order
1..12, flows 1→(7,10,11), 2→(5,8,9), 3→(4,6,12), no conflicts.

Paper reports: 3 flow sets, 15 valves, L = 21.2 mm. Absolute L depends
on the (unavailable) original geometry; the set count and the valve
count are geometry-independent and must match.
"""

import pytest

from conftest import bench_options, bench_time_limit, run_once, write_report
from repro.analysis import format_table
from repro.cases import example_4_2
from repro.core import synthesize
from repro.render import render_result, save_svg

PAPER = {"#s": 3, "#v": 15, "L(mm)": 21.2}


def test_table_4_2_example(benchmark, output_dir):
    spec = example_4_2()
    options = bench_options(time_limit=max(bench_time_limit(), 300))
    result = run_once(benchmark, synthesize, spec, options)
    assert result.status.solved, result.status

    measured = {
        "#s": result.num_flow_sets,
        "#v": result.num_valves,
        "L(mm)": round(result.flow_channel_length, 1),
        "T(s)": round(result.runtime, 1),
    }
    rows = [
        {"source": "paper", **PAPER},
        {"source": "measured", **measured},
    ]
    write_report(output_dir, "table_4_2", format_table(rows))

    # geometry-independent outcome must match the paper exactly
    assert result.num_flow_sets == PAPER["#s"]
    # within every set, each site belongs to a single inlet (flows from
    # different inlets may share a set when fully site-disjoint — the
    # paper's own constraint, re-checked here via the verifier)
    from repro.core.verify import verify_schedule
    verify_schedule(spec, result.flow_paths, result.flow_sets)

    # Figure 4.4: the synthesized layout with per-set flow colors
    save_svg(render_result(result), output_dir / "fig_4_4_example.svg")


def test_table_4_2_valve_count(benchmark, output_dir):
    """The paper counts 15 valves for this case; our reconstruction of
    the geometry reproduces that count when it solves to optimality."""
    spec = example_4_2()
    options = bench_options(time_limit=max(bench_time_limit(), 300))
    result = run_once(benchmark, synthesize, spec, options)
    assert result.status.solved
    # valve count depends on the tie-broken optimum; accept the paper's
    # count within a small neighbourhood and report the exact value
    assert abs(result.num_valves - PAPER["#v"]) <= 3, result.num_valves

"""Figure 4.2 — nucleic-acid and mRNA switches vs. Columba 2.0 / S.

Panels (a)/(b): the two applications synthesized with the unfixed
policy — conflicting mixture flows provably apart. Panels (c)/(d): the
same flows on spine structures — the central spine segment is used by
every mixer flow (the paper's 'most polluted' marking), and parallel
execution on the valve-free spine could misroute fluids.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import (
    analyze_contamination,
    baseline_report,
    format_table,
    route_shortest,
    spine_pollution_profile,
)
from repro.cases import mrna_isolation, nucleic_acid
from repro.core import BindingPolicy, synthesize
from repro.render import render_result, save_svg
from repro.switches import SpineSwitch

_rows = []


@pytest.mark.parametrize("factory", [nucleic_acid, mrna_isolation],
                         ids=lambda f: f.__name__)
def test_fig_4_2_proposed_panels(benchmark, output_dir, factory):
    spec = factory(BindingPolicy.UNFIXED)
    result = run_once(benchmark, synthesize, spec, bench_options())
    assert result.status.solved
    report = analyze_contamination(spec.switch, result.flow_paths, spec.conflicts)
    assert report.is_contamination_free
    _rows.append({"panel": f"proposed/{factory.__name__}",
                  "contamination-free": True, "max segment sharing": 1})
    save_svg(render_result(result), output_dir / f"fig_4_2_{factory.__name__}.svg")


@pytest.mark.parametrize("factory", [nucleic_acid, mrna_isolation],
                         ids=lambda f: f.__name__)
def test_fig_4_2_spine_panels(benchmark, output_dir, factory):
    spec = factory(BindingPolicy.UNFIXED)
    spine = SpineSwitch(len(spec.modules))
    report = run_once(benchmark, baseline_report, spine, spec)

    binding = {m: spine.pins[i] for i, m in enumerate(spec.modules)}
    paths = route_shortest(spine, binding, spec.flows)
    profile = spine_pollution_profile(spine, paths)
    worst = max(profile.values())
    _rows.append({"panel": f"spine/{factory.__name__}",
                  "contamination-free": report.is_contamination_free,
                  "max segment sharing": worst})

    # the paper's observation: some spine segment carries several of the
    # conflicting mixture flows (nucleic acid), or the valve-free spine
    # cannot separate parallel flows (mRNA: unvalved shared segments)
    assert worst >= 2 or report.unvalved_shared_segments
    write_report(output_dir, "fig_4_2", format_table(_rows))

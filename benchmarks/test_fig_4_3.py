"""Figure 4.3 — scalable (Columba-S-compatible) ChIP switches.

The same ChIP case synthesized on the scalable switch variant, whose
pins escape horizontally to the side borders, under each binding
policy. The contamination guarantee must carry over unchanged; the
channel length grows relative to the plain variant because of the
escape lanes.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import analyze_contamination, format_table
from repro.cases import chip_sw1
from repro.core import BindingPolicy, synthesize
from repro.render import render_result, save_svg

_rows = []


@pytest.mark.parametrize(
    "policy", [BindingPolicy.FIXED, BindingPolicy.CLOCKWISE, BindingPolicy.UNFIXED],
    ids=lambda p: p.value,
)
def test_fig_4_3_scalable_panels(benchmark, output_dir, policy):
    spec = chip_sw1(policy, scalable=True)
    result = run_once(benchmark, synthesize, spec, bench_options())
    assert result.status.solved

    report = analyze_contamination(spec.switch, result.flow_paths, spec.conflicts)
    assert report.is_contamination_free
    _rows.append(result.table_row())
    save_svg(render_result(result),
             output_dir / f"fig_4_3_scalable_{policy.value}.svg")


def test_fig_4_3_report(benchmark, output_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("panels did not run")
    write_report(output_dir, "fig_4_3", format_table(_rows))

"""Table 4.1 — contamination-avoidance test cases.

Reproduces: ChIP sw.1 (9 modules, 12-pin), nucleic-acid processor
(7 modules, 8-pin) and mRNA isolation (10 modules, 12-pin), each under
the clockwise, fixed and unfixed binding policies.

Expected shape (paper): ChIP solves under all three policies; the other
two cases solve **only** under the unfixed policy; the fixed policy is
by far the fastest where it solves; all solved switches are
contamination-free.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import analyze_contamination, format_table
from repro.cases import chip_sw1, mrna_isolation, nucleic_acid
from repro.core import BindingPolicy, SynthesisStatus, synthesize

#: (factory, policy) -> does the paper report a solution?
EXPECTED_SOLVABLE = {
    ("ChIP sw.1", "clockwise"): True,
    ("ChIP sw.1", "fixed"): True,
    ("ChIP sw.1", "unfixed"): True,
    ("nucleic acid processor", "clockwise"): False,
    ("nucleic acid processor", "fixed"): False,
    ("nucleic acid processor", "unfixed"): True,
    ("mRNA isolation", "clockwise"): False,
    ("mRNA isolation", "fixed"): False,
    ("mRNA isolation", "unfixed"): True,
}

CASES = [chip_sw1, nucleic_acid, mrna_isolation]
POLICIES = [BindingPolicy.CLOCKWISE, BindingPolicy.FIXED, BindingPolicy.UNFIXED]

_rows = []


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("factory", CASES, ids=lambda f: f.__name__)
def test_table_4_1(benchmark, factory, policy):
    spec = factory(policy)
    result = run_once(benchmark, synthesize, spec, bench_options())
    _rows.append(result.table_row())

    expected = EXPECTED_SOLVABLE[(spec.name, policy.value)]
    if expected:
        assert result.status.solved, (
            f"{spec.name}/{policy.value}: paper reports a solution, got "
            f"{result.status.value}"
        )
        report = analyze_contamination(spec.switch, result.flow_paths,
                                       spec.conflicts)
        assert report.is_contamination_free
    else:
        assert result.status is SynthesisStatus.NO_SOLUTION, (
            f"{spec.name}/{policy.value}: paper reports no solution"
        )


def test_table_4_1_report(benchmark, output_dir):
    """Aggregate the rows into the paper-style table (and assert the
    runtime ordering the paper observes on ChIP: fixed fastest)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("individual rows did not run")
    write_report(output_dir, "table_4_1", format_table(_rows))
    chip = {r["binding"]: r for r in _rows if r["case"] == "ChIP sw.1"}
    if {"fixed", "clockwise", "unfixed"} <= set(chip):
        assert chip["fixed"]["T(s)"] <= chip["clockwise"]["T(s)"]
        assert chip["fixed"]["T(s)"] <= chip["unfixed"]["T(s)"]

"""Chaos/soak driver for the resilient synthesis service.

Orchestrates the full crash story end to end, the way CI runs it:

1. **Run 1** starts a journal-backed :class:`repro.service.SynthesisService`
   over N generated specs with a deterministic
   :class:`repro.testing.FaultPlan` — consecutive backend crashes (to
   trip the circuit breaker), isolated crashes and timeouts (to
   exercise retry/backoff) and one ``kill`` fault that SIGKILLs the
   process mid-run. No cleanup runs; only the write-ahead journal
   survives.
2. **Run 2** restarts on the same journal with the same fault plan
   minus the kill: journaled completions are deduplicated, pending work
   replays, the breaker demonstrably opens and then recovers
   (half-open probe → close), and every job reaches a terminal state.
3. **Validation**: :func:`repro.service.validate_journal` replays the
   journal with strict schema checks and proves exactly-once
   completion; the exported trace must be schema-valid
   ``repro-obs-v1`` and contain the breaker/retry/fault events.

Usage (the orchestrating entry point CI calls)::

    python benchmarks/chaos_soak.py --specs 50 --out chaos-artifacts

Artifacts land in ``--out``: ``journal.jsonl`` (the surviving WAL),
``trace.jsonl`` (run 2's full event stream) and ``summary.json``.

With ``--shards N`` the chaos moves up a level: the same specs run on
a :class:`repro.service.ShardCoordinator` and every shard *process*
is SIGKILLed once, in turn, while work is in flight (a heavy blocker
spec pins a worker so the kills always land mid-solve). The
coordinator must respawn each shard on its journal and every job must
still reach a terminal state exactly once — proven, as always, by
strict journal replay. The telemetry plane must stay continuous across
the kills too: aggregated counters are checked monotonic before and
after every SIGKILL (a respawned shard is a new stream, never a
rollback), the final merged stream must validate as one
``repro-obs-v1`` trace with no duplicated completion events, and it is
saved as ``merged-trace.jsonl``::

    python benchmarks/chaos_soak.py --specs 8 --shards 2 --out chaos-artifacts

With ``--valve-faults`` the chaos is in the *hardware*: a campaign is
synthesized on the platform, a valve sticks closed mid-campaign (the
tick engine detects it striking a routed segment), the detection turns
into a journaled repair job on the coordinator — submitted twice to
prove fingerprint dedup — and the repair's shard is SIGKILLed while
the job is in flight. The repair must complete exactly once (strict
journal replay), its routing must match an independent local
:func:`repro.repair.repair` run (determinism across the kill), and the
``repair_*`` counters must be present and monotonic::

    python benchmarks/chaos_soak.py --valve-faults --out chaos-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cases import generate_case  # noqa: E402
from repro.core import BindingPolicy, SynthesisOptions  # noqa: E402
from repro.obs import (Tracer, read_trace_jsonl, use_tracer,  # noqa: E402
                       validate_trace_records, write_trace_jsonl)
from repro.service import (Backoff, SynthesisService,  # noqa: E402
                           validate_journal)
from repro.testing import FaultPlan, install_faulty_backend  # noqa: E402

TERMINAL = {"done", "degraded", "failed"}


def make_specs(n: int):
    return [
        generate_case(seed=s, switch_size=8, n_flows=2, n_inlets=2,
                      n_conflicts=0, binding=BindingPolicy.FIXED)
        for s in range(n)
    ]


#: The killed run dies on the faulty backend's *third* solve. Solves
#: 1–2 crash consecutively (threshold 2), so solve 3 is necessarily the
#: breaker's half-open probe — and the probe is guaranteed to happen
#: (the breaker cannot close without one; the sentinel loop forces it
#: even if the main jobs all drained on the fallback rung meanwhile),
#: which makes the SIGKILL deterministic however fast the solver is.
KILL_AT = 3


def make_schedule(n_specs: int, kill_after: int):
    """The deterministic per-solve fault script for one run.

    Solves 1–2 crash back to back (threshold 2 → breaker opens), two
    isolated faults later exercise retry without re-tripping it, and —
    in the killed run — solve ``kill_after`` SIGKILLs the process.
    """
    schedule = [None] * (6 * n_specs + 64)
    schedule[0] = schedule[1] = "crash"
    schedule[8] = "timeout"
    schedule[12] = "crash"
    if kill_after:
        schedule[kill_after - 1] = "kill"
    return schedule


def phase_run(args: argparse.Namespace) -> int:
    specs = make_specs(args.specs)
    plan = FaultPlan(schedule=make_schedule(args.specs, args.kill_after))
    options = SynthesisOptions(time_limit=30, on_error="capture")
    tracer = Tracer("chaos-soak")
    with install_faulty_backend("chaos", inner="auto", plan=plan):
        with use_tracer(tracer):
            service = SynthesisService(
                args.journal,
                workers=args.workers,
                options=options,
                backends=["chaos", "auto"],
                max_attempts=6,
                backoff=Backoff(base=0.02, max_delay=0.2),
                breaker_threshold=2,
                breaker_reset=0.2,
            )
            service.start()
            for spec in specs:
                service.submit(spec)
            outcome = service.run_until_complete(timeout=600)

            # Demonstrate breaker *recovery*: keep feeding sentinel jobs
            # until a half-open probe succeeds and closes the breaker.
            # Past the schedule's fault prefix every solve is healthy,
            # so this converges in a handful of probes.
            sentinels = 0
            breaker = service.breakers.get("chaos")
            while breaker.state != "closed" and sentinels < 8:
                time.sleep(0.25)  # let the cooldown mature
                sentinel = generate_case(
                    seed=1000 + sentinels, switch_size=8, n_flows=2,
                    n_inlets=2, n_conflicts=0, binding=BindingPolicy.FIXED)
                service.wait(service.submit(sentinel), timeout=120)
                sentinels += 1

            stats = service.stats()
            summary = service.stop(drain=True, deadline=120)
        write_trace_jsonl(tracer, args.trace)
    print("SUMMARY " + json.dumps({
        "outcome": outcome,
        "jobs": stats["jobs"],
        "sentinels": sentinels,
        "breakers": stats["breakers"],
        "pending": summary["pending"],
    }), flush=True)
    return 0 if summary["pending"] == 0 else 2


def orchestrate_shards(args: argparse.Namespace) -> int:
    """``--shards`` mode: SIGKILL every shard process once, mid-run."""
    from repro.io import spec_to_dict
    from repro.service import ShardCoordinator

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    journal_dir = out / "platform"
    specs = make_specs(args.specs)
    # UNFIXED binding over a 12-way switch runs for the whole time
    # limit: with one of these per shard there is always in-flight
    # work for a kill to interrupt.
    blockers = [
        generate_case(seed=900 + i, switch_size=12, n_flows=6, n_inlets=4,
                      n_conflicts=2, binding=BindingPolicy.UNFIXED)
        for i in range(args.shards)
    ]
    failures = []
    print(f"[chaos] platform: {args.shards} shard(s) x {args.workers} "
          f"worker(s), killing each shard once ...", flush=True)

    def counter_totals(coord) -> dict:
        """Aggregated counter values across every telemetry stream."""
        coord.pull_telemetry()
        return {key: snap.get("value", 0)
                for key, snap in coord.collector.aggregated_metrics().items()
                if snap.get("kind") == "counter"}

    last_counters: dict = {}

    def check_monotonic(coord, where: str) -> None:
        """Aggregated counters must never go backwards — a respawned
        shard is a new stream, not a rollback of the old one."""
        totals = counter_totals(coord)
        for key, value in totals.items():
            if value < last_counters.get(key, 0):
                failures.append(
                    f"counter {key} went backwards {where}: "
                    f"{last_counters[key]} -> {value}")
        last_counters.update(totals)

    with ShardCoordinator(str(journal_dir), shards=args.shards,
                          workers=args.workers,
                          options={"time_limit": 10.0,
                                   "on_error": "capture"}) as coord:
        ids = [coord.submit(spec_to_dict(spec))["id"]
               for spec in blockers + specs]
        deadline = time.monotonic() + 600
        for index in range(args.shards):
            time.sleep(0.5)  # let the respawned shard pick work back up
            check_monotonic(coord, f"before killing shard {index}")
            pid = coord.kill_shard(index)
            print(f"[chaos] SIGKILL shard {index} (pid {pid})", flush=True)
            while time.monotonic() < deadline:
                stats = coord.stats()
                shard = stats["shards"].get(str(index), {})
                if shard.get("restarts", 0) >= 1 and "error" not in shard:
                    break
                time.sleep(0.2)
            else:
                failures.append(f"shard {index} never respawned")
            check_monotonic(coord, f"after shard {index} respawned")
        finals = {}
        for job_id in ids:
            job = coord.wait(job_id, timeout=max(
                0.0, deadline - time.monotonic()))
            finals[job["state"]] = finals.get(job["state"], 0) + 1
        stats = coord.stats()

        # Telemetry continuity across every kill: the merged stream is
        # one valid repro-obs-v1 trace, counters never went backwards
        # (checked at each kill above and once more here), and no job
        # completed twice — a torn batch from a killed incarnation is
        # dropped whole, and replay never re-executes journaled
        # terminal work, so duplicate job_done events cannot appear.
        check_monotonic(coord, "after all jobs terminal")
        merged = coord.telemetry_records()
        try:
            validate_trace_records(merged)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"merged telemetry failed validation: {exc}")
        completions: dict = {}
        for record in merged:
            if record.get("type") == "event" and record.get("name") in (
                    "job_done", "job_failed"):
                job = (record.get("attrs") or {}).get("job")
                completions[job] = completions.get(job, 0) + 1
        doubled = {job: n for job, n in completions.items() if n > 1}
        if doubled:
            failures.append(
                f"duplicate completion events across kills: {doubled}")
        telemetry = {
            "streams": len(coord.collector.sources()),
            "rejected_batches": coord.collector.rejected,
            "dropped_records": coord.collector.dropped_total(),
            "merged_records": len(merged),
            "completion_events": sum(completions.values()),
        }
        write_trace_jsonl(merged, str(out / "merged-trace.jsonl"))
        print(f"[chaos] telemetry continuous: {telemetry}", flush=True)
        if telemetry["streams"] < 2 * args.shards:
            failures.append(
                f"expected >= {2 * args.shards} telemetry streams "
                f"(each shard killed once), saw {telemetry['streams']}")
    if stats["restarts"] < args.shards:
        failures.append(f"expected >= {args.shards} restarts, "
                        f"saw {stats['restarts']}")
    if set(finals) - TERMINAL:
        failures.append(f"jobs stuck non-terminal: {finals}")
    if finals.get("failed"):
        failures.append(f"jobs failed under kill chaos: {finals}")

    # Exactly-once across every kill, proven from the journals alone.
    counts: dict = {}
    for path in sorted(journal_dir.glob("shard-*.jsonl")):
        try:
            for state, count in validate_journal(path).items():
                counts[state] = counts.get(state, 0) + count
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{path.name} failed validation: {exc}")
    if sum(counts.values()) != len(ids):
        failures.append(f"journalled jobs {counts} != {len(ids)} submitted")

    report = {
        "specs": args.specs,
        "shards": args.shards,
        "restarts": stats["restarts"],
        "final_jobs": counts,
        "telemetry": telemetry,
        "failures": failures,
    }
    (out / "summary.json").write_text(json.dumps(report, indent=2) + "\n")
    if failures:
        print("[chaos] FAIL:\n  - " + "\n  - ".join(failures))
        return 1
    print(f"[chaos] PASS: {sum(counts.values())} job(s) terminal exactly "
          f"once across {stats['restarts']} shard kill(s) ({counts})")
    return 0


def orchestrate_valve_faults(args: argparse.Namespace) -> int:
    """``--valve-faults`` mode: a mid-campaign hardware fault becomes a
    journaled repair job that survives a shard SIGKILL exactly once."""
    from repro.core import synthesize
    from repro.core.verify import verify_result
    from repro.io import spec_to_dict
    from repro.repair import detect_faults, repair
    from repro.service import ShardCoordinator
    from repro.sim.faults import FaultKind, ValveFault

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    journal_dir = out / "platform"
    failures = []
    options = SynthesisOptions(time_limit=30)
    spec = make_specs(1)[0]

    # The campaign baseline, solved locally so the tick engine can
    # replay it under the fault plan: a valve on a *routed* junction
    # segment sticks closed at step 1, mid-campaign.
    prior = synthesize(make_specs(1)[0], options)
    verify_result(prior)
    seg = next(k for k in sorted(prior.used_segments)
               if not prior.spec.switch.is_pin(k[0])
               and not prior.spec.switch.is_pin(k[1]))
    fault = ValveFault(seg, FaultKind.STUCK_CLOSED, onset=1)
    detection = detect_faults(prior, [fault])
    print(f"[chaos] fault {seg[0]}-{seg[1]} stuck_closed@1: "
          f"{detection.summary()}", flush=True)
    if not detection.detected:
        failures.append("mid-campaign fault was not detected by the sim")

    def repair_counters(coord) -> dict:
        coord.pull_telemetry()
        return {key: snap.get("value", 0)
                for key, snap in coord.collector.aggregated_metrics().items()
                if snap.get("kind") == "counter" and "repair_" in key}

    last: dict = {}

    def check_monotonic(coord, where: str) -> dict:
        totals = repair_counters(coord)
        for key, value in totals.items():
            if value < last.get(key, 0):
                failures.append(f"counter {key} went backwards {where}: "
                                f"{last[key]} -> {value}")
        last.update(totals)
        return totals

    triples = [(seg[0], seg[1], "stuck_closed")]
    with ShardCoordinator(str(journal_dir), shards=2, workers=1,
                          options={"time_limit": 30.0}) as coord:
        job = coord.submit(spec_to_dict(spec))
        done = coord.wait(job["id"], timeout=300)
        if done["state"] != "done":
            failures.append(f"campaign job ended {done['state']}")
        check_monotonic(coord, "before the repair")

        first = coord.submit_repair(job["id"], triples)
        again = coord.submit_repair(job["id"], triples)
        if again["id"] != first["id"]:
            failures.append("repair resubmission was not deduplicated: "
                            f"{first['id']} vs {again['id']}")
        if first.get("corr") != done.get("corr"):
            failures.append("repair job lost the campaign correlation ID")
        # capture the submission-side counters before the kill can tear
        # the shard's stream batch (torn batches are dropped whole)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if any("repair_submitted" in key
                   for key in check_monotonic(coord, "before the kill")):
                break
            time.sleep(0.2)
        pid = coord.kill_shard(first["shard"])
        print(f"[chaos] SIGKILL shard {first['shard']} (pid {pid}) with "
              f"repair {first['id']} journaled", flush=True)
        final = coord.wait(first["id"], timeout=300)
        if final["state"] != "done":
            failures.append(f"repair job ended {final['state']}: "
                            f"{final.get('error')}")

        # repair_* counters must surface on the telemetry plane and
        # never go backwards across the kill (streamed; poll briefly).
        deadline = time.monotonic() + 30
        totals: dict = {}
        while time.monotonic() < deadline:
            totals = check_monotonic(coord, "after the kill")
            if any("repair_submitted" in k for k in totals) and \
                    any("repair_completed" in k for k in totals):
                break
            time.sleep(0.5)
        for name in ("repair_submitted", "repair_completed",
                     "repair_faults_detected"):
            if not any(name in key for key in totals):
                failures.append(f"counter {name} missing from /metrics "
                                f"aggregation: {sorted(totals)}")
        stats = coord.stats()
        if stats["restarts"] < 1:
            failures.append("killed shard never respawned")

    # Exactly-once across the kill, proven from the journals alone.
    counts: dict = {}
    for path in sorted(journal_dir.glob("shard-*.jsonl")):
        try:
            for state, count in validate_journal(path).items():
                counts[state] = counts.get(state, 0) + count
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{path.name} failed validation: {exc}")
    if counts != {"done": 2}:
        failures.append(f"expected exactly the campaign + its repair "
                        f"done, got {counts}")

    # Determinism across the kill: an independent local repair of the
    # same prior under the same fault must verify and agree with the
    # platform's journaled row.
    local = repair(prior, [fault], options)
    if not local.solved:
        failures.append(f"local repair did not solve: {local.status.value}")
    else:
        verify_result(local.repaired)
        if any(seg in p.segments
               for p in local.repaired.flow_paths.values()):
            failures.append("local repaired routing rides the dead segment")
        from repro.experiments.batch import spec_row

        local_row = spec_row(local.repaired.spec, local.repaired)
        platform_row = final.get("row") or {}
        for key in ("status", "objective", "length_mm", "num_sets",
                    "num_valves"):
            if platform_row.get(key) != local_row.get(key):
                failures.append(
                    f"repair row diverged across the kill on {key!r}: "
                    f"platform {platform_row.get(key)} vs local "
                    f"{local_row.get(key)}")

    report = {
        "fault": {"segment": list(seg), "kind": "stuck_closed", "onset": 1},
        "detection": detection.summary(),
        "repair_job": first["id"],
        "final_jobs": counts,
        "repair_counters": {k: v for k, v in sorted(last.items())},
        "failures": failures,
    }
    (out / "summary.json").write_text(json.dumps(report, indent=2) + "\n")
    if failures:
        print("[chaos] FAIL:\n  - " + "\n  - ".join(failures))
        return 1
    print(f"[chaos] PASS: mid-campaign valve fault detected, repaired "
          f"exactly once across a shard SIGKILL ({counts}), routing "
          f"deterministic and verified")
    return 0


def orchestrate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    journal = out / "journal.jsonl"
    trace = out / "trace.jsonl"
    if journal.exists():
        journal.unlink()
    kill_after = KILL_AT
    base = [sys.executable, str(Path(__file__).resolve()), "--phase", "run",
            "--specs", str(args.specs), "--workers", str(args.workers),
            "--journal", str(journal), "--trace", str(trace)]

    print(f"[chaos] run 1: {args.specs} specs, SIGKILL at solve "
          f"#{kill_after} ...", flush=True)
    first = subprocess.run(base + ["--kill-after", str(kill_after)],
                           capture_output=True, text=True, timeout=900)
    if first.returncode != -signal.SIGKILL:
        print(first.stdout + first.stderr)
        print(f"[chaos] FAIL: run 1 should die by SIGKILL, "
              f"exited {first.returncode}")
        return 1
    survivors = validate_journal(journal)  # replayable even after a kill
    print(f"[chaos] run 1 killed as planned; journal survives with "
          f"{sum(survivors.values())} job(s): {survivors}", flush=True)

    print("[chaos] run 2: restart on the surviving journal ...", flush=True)
    second = subprocess.run(base, capture_output=True, text=True,
                            timeout=900)
    print(second.stdout, end="", flush=True)
    if second.returncode != 0:
        print(second.stderr)
        print(f"[chaos] FAIL: run 2 exited {second.returncode}")
        return 1
    summary_line = next(line for line in second.stdout.splitlines()
                        if line.startswith("SUMMARY "))
    summary = json.loads(summary_line[len("SUMMARY "):])

    failures = []
    # Exactly-once completion, proven from the journal alone:
    # validate_journal raises on any second terminal transition.
    counts = validate_journal(journal)
    if set(counts) - TERMINAL:
        failures.append(f"non-terminal jobs remain: {counts}")
    if sum(counts.values()) < args.specs:
        failures.append(f"lost jobs: {counts} < {args.specs} specs")
    if counts.get("failed"):
        failures.append(f"jobs failed despite the backend ladder: {counts}")

    # The trace must be schema-valid and show the whole story: injected
    # faults, retries, the breaker opening and recovering.
    data = read_trace_jsonl(trace)
    validate_trace_records(data.records)
    events = {r["name"] for r in data.records if r["type"] == "event"}
    for required in ("fault_injected", "job_retry", "breaker_open",
                     "breaker_close", "job_done", "drain"):
        if required not in events:
            failures.append(f"event {required!r} missing from trace")
    if summary["breakers"].get("chaos", {}).get("state") != "closed":
        failures.append(f"breaker never recovered: {summary['breakers']}")

    report = {
        "specs": args.specs,
        "kill_after": kill_after,
        "run1_jobs_surviving": survivors,
        "final_jobs": counts,
        "sentinels": summary["sentinels"],
        "breakers": summary["breakers"],
        "trace_records": len(data.records),
        "failures": failures,
    }
    (out / "summary.json").write_text(json.dumps(report, indent=2) + "\n")
    if failures:
        print("[chaos] FAIL:\n  - " + "\n  - ".join(failures))
        return 1
    print(f"[chaos] PASS: {sum(counts.values())} job(s) terminal exactly "
          f"once ({counts}), breaker opened and recovered, trace "
          f"schema-valid ({len(data.records)} records)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase", choices=["orchestrate", "run"],
                        default="orchestrate")
    parser.add_argument("--specs", type=int,
                        default=int(os.environ.get("REPRO_CHAOS_SPECS", 12)))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default="chaos-artifacts")
    parser.add_argument("--journal", default="chaos-journal.jsonl")
    parser.add_argument("--trace", default="chaos-trace.jsonl")
    parser.add_argument("--kill-after", type=int, default=0)
    parser.add_argument("--shards", type=int, default=0,
                        help="run the sharded platform instead and "
                             "SIGKILL every shard process once")
    parser.add_argument("--valve-faults", action="store_true",
                        help="inject a mid-campaign valve fault, repair "
                             "through the platform and SIGKILL the "
                             "repair's shard")
    args = parser.parse_args(argv)
    if args.phase == "run":
        return phase_run(args)
    if args.valve_faults:
        return orchestrate_valve_faults(args)
    if args.shards:
        return orchestrate_shards(args)
    return orchestrate(args)


if __name__ == "__main__":
    sys.exit(main())

"""Figure 4.1 — synthesized ChIP switches vs. the Columba spine.

Regenerates the figure content: the ChIP sw.1 switch synthesized under
each binding policy (panels a–c) and the contamination analysis of the
same flows on a spine switch (panel d). The machine-checkable claims:
the conflicting flows from i_10 and i_11 are site-disjoint in every
synthesized panel, while on the spine they meet.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import analyze_contamination, baseline_report, format_table
from repro.cases import chip_sw1
from repro.core import BindingPolicy, synthesize
from repro.render import render_result, render_switch, save_svg
from repro.switches import SpineSwitch

_rows = []


@pytest.mark.parametrize(
    "policy", [BindingPolicy.FIXED, BindingPolicy.CLOCKWISE, BindingPolicy.UNFIXED],
    ids=lambda p: p.value,
)
def test_fig_4_1_panels(benchmark, output_dir, policy):
    spec = chip_sw1(policy)
    result = run_once(benchmark, synthesize, spec, bench_options())
    assert result.status.solved

    report = analyze_contamination(spec.switch, result.flow_paths, spec.conflicts)
    assert report.is_contamination_free
    _rows.append({"panel": f"proposed/{policy.value}",
                  "contamination-free": True,
                  "polluted sites": 0})
    save_svg(render_result(result), output_dir / f"fig_4_1_{policy.value}.svg")


def test_fig_4_1_spine_panel(benchmark, output_dir):
    """Panel (d): the spine forces i_10's and i_11's fluids together.

    The binding mirrors Columba's layout in Figure 4.1(d): i_10 and its
    mixer sit on opposite ends, so its flow spans the horizontal spine
    that i_11's distribution flows also traverse.
    """
    spec = chip_sw1(BindingPolicy.UNFIXED)
    spine = SpineSwitch(len(spec.modules))
    binding = {
        "i_10": "P_L", "M1": "P_R",              # spans the whole spine
        "i_11": "P_T2", "M2": "P_T3", "M3": "P_B2", "M4": "P_T4",
        "i_3": "P_T1", "o_7": "P_B1", "o_8": "P_B3",
    }

    report = run_once(benchmark, baseline_report, spine, spec, binding=binding)
    assert not report.is_contamination_free
    _rows.append({"panel": "Columba spine",
                  "contamination-free": False,
                  "polluted sites": report.num_polluted_sites})
    save_svg(render_switch(spine), output_dir / "fig_4_1_spine.svg")
    write_report(output_dir, "fig_4_1", format_table(_rows))

"""§3.5 / Figure 3.2 — pressure sharing via minimum clique cover.

Benchmarks the exact clique-cover ILP against the greedy baseline on
(a) the literal Figure 3.2 examples, (b) the valve tables of the
synthesized application switches, and (c) random status tables of
growing size.
"""

import random

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import format_table
from repro.cases import chip_sw1
from repro.core import BindingPolicy, share_pressure, synthesize

_rows = []


def test_figure_3_2_examples(benchmark):
    status_a = {
        ("v", "a"): ["O", "X", "C"],
        ("v", "b"): ["X", "O", "C"],
        ("v", "c"): ["O", "O", "C"],
    }
    status_b = {
        ("v", "a"): ["X", "X"],
        ("v", "b"): ["O", "C"],
        ("v", "c"): ["C", "O"],
    }

    def solve_both():
        return (share_pressure(status_a, method="ilp"),
                share_pressure(status_b, method="ilp"))

    res_a, res_b = run_once(benchmark, solve_both)
    assert res_a.num_control_inlets == 1  # Fig 3.2(a): one clique
    assert res_b.num_control_inlets == 2  # Fig 3.2(b): two cliques


def test_pressure_sharing_on_synthesized_switch(benchmark, output_dir):
    """Pressure sharing on a real synthesized valve table: the ILP never
    needs more inlets than greedy, and both never more than #valves."""
    spec = chip_sw1(BindingPolicy.FIXED)
    result = synthesize(spec, bench_options())
    assert result.status.solved

    if not result.valves.essential:
        pytest.skip("case produced no essential valves")

    valves = sorted(result.valves.essential)

    def solve():
        ilp = share_pressure(result.valves.status, valves=valves, method="ilp")
        greedy = share_pressure(result.valves.status, valves=valves,
                                method="greedy")
        return ilp, greedy

    ilp, greedy = run_once(benchmark, solve)
    _rows.append({
        "source": "ChIP sw.1 (fixed)",
        "#valves": len(valves),
        "ILP inlets": ilp.num_control_inlets,
        "greedy inlets": greedy.num_control_inlets,
    })
    assert ilp.num_control_inlets <= greedy.num_control_inlets <= len(valves)


@pytest.mark.parametrize("n_valves", [6, 10, 14])
def test_clique_cover_scaling(benchmark, output_dir, n_valves):
    """ILP vs greedy on random O/C/X tables of growing size."""
    rng = random.Random(n_valves)
    status = {
        (f"v{i}", f"w{i}"): [rng.choice("OCX") for _ in range(4)]
        for i in range(n_valves)
    }

    def solve():
        return (share_pressure(status, method="ilp"),
                share_pressure(status, method="greedy"))

    ilp, greedy = run_once(benchmark, solve)
    _rows.append({
        "source": f"random[{n_valves} valves]",
        "#valves": n_valves,
        "ILP inlets": ilp.num_control_inlets,
        "greedy inlets": greedy.num_control_inlets,
    })
    assert ilp.num_control_inlets <= greedy.num_control_inlets
    write_report(output_dir, "pressure_sharing", format_table(_rows))

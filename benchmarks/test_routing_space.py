"""§2.1 — quantitative routing-space comparison of the three designs.

The paper argues the GRU switch "provides insufficient routing space"
and that the spine is worse still; this bench turns the argument into
numbers: attachment-node connectivity statistics over all pin pairs and
disjoint-transport capacity on a matched workload.
"""

import pytest

from conftest import run_once, write_report
from repro.analysis import (
    disjoint_transport_capacity,
    format_table,
    routing_space_report,
)
from repro.switches import CrossbarSwitch, GRUSwitch, SpineSwitch

_rows = []


@pytest.mark.parametrize("switch_cls", [CrossbarSwitch, GRUSwitch, SpineSwitch],
                         ids=lambda c: c.__name__)
def test_routing_space_survey(benchmark, switch_cls):
    switch = switch_cls(8)
    report = run_once(benchmark, routing_space_report, switch)
    _rows.append(report.row())


def test_matched_parallel_transport_capacity(benchmark, output_dir):
    """Two same-side inlets to the opposite side: crossbar 2, GRU 1."""
    crossbar = CrossbarSwitch(8)
    gru = GRUSwitch(8)

    def capacities():
        return (
            disjoint_transport_capacity(crossbar, [("T1", "B1"), ("T2", "B2")]),
            disjoint_transport_capacity(gru, [("TL", "BL"), ("T", "B")]),
        )

    cap_crossbar, cap_gru = run_once(benchmark, capacities)
    assert cap_crossbar == 2
    assert cap_gru == 1
    _rows.append({"switch": "matched 2-transport workload",
                  "min connectivity": None, "mean connectivity": None,
                  "single-node pin pairs":
                      f"capacity: crossbar={cap_crossbar}, gru={cap_gru}"})
    write_report(output_dir, "routing_space", format_table(_rows))

"""§5 — scaling limits of the synthesis.

The paper reports that a 13-module input on the 16-pin switch exceeded
5 hours. This bench sweeps switch size and flow count under a hard time
cap and records how the runtime explodes with the model size — the
qualitative claim is monotone growth and a practical wall at the 16-pin
free-binding cases.
"""

import pytest

from conftest import bench_options, bench_time_limit, full_mode, run_once, write_report
from repro.analysis import format_table
from repro.cases import generate_case, mrna_isolation
from repro.core import BindingPolicy, SynthesisOptions, SynthesisStatus, synthesize
from repro.core.builder import SynthesisModelBuilder
from repro.core.synthesizer import build_catalog

_rows = []

SWEEP = [
    (8, 2), (8, 4),
    (12, 2), (12, 4),
    (16, 2),
]


@pytest.mark.parametrize("switch_size,n_flows", SWEEP,
                         ids=[f"{s}pin-{f}flows" for s, f in SWEEP])
def test_scaling_sweep(benchmark, switch_size, n_flows):
    spec = generate_case(seed=switch_size * 100 + n_flows,
                         switch_size=switch_size, n_flows=n_flows,
                         n_inlets=2, n_conflicts=1,
                         binding=BindingPolicy.UNFIXED)
    result = run_once(benchmark, synthesize, spec,
                      bench_options(time_limit=min(bench_time_limit(), 60)))
    built = SynthesisModelBuilder(
        spec, build_catalog(spec, SynthesisOptions())).build()
    _rows.append({
        "switch": f"{switch_size}-pin",
        "#flows": n_flows,
        "model vars": built.model.num_vars,
        "model constraints": built.model.num_constraints,
        "T(s)": round(result.runtime, 2),
        "status": result.status.value,
    })
    assert result.status in (SynthesisStatus.OPTIMAL, SynthesisStatus.FEASIBLE,
                             SynthesisStatus.TIMEOUT)


def test_scaling_report(benchmark, output_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("sweep did not run")
    write_report(output_dir, "scaling", format_table(_rows))
    # model size grows strictly with the switch size at fixed flow count
    two_flow = {r["switch"]: r["model vars"] for r in _rows if r["#flows"] == 2}
    assert two_flow["8-pin"] < two_flow["12-pin"] < two_flow["16-pin"]


def test_16pin_13module_wall(benchmark, output_dir):
    """The paper's 5-hour case: 13 modules on the 16-pin switch. We cap
    it and only require that the solver does not finish instantly — or,
    in full mode, give it the whole time budget and report the outcome."""
    spec = mrna_isolation(BindingPolicy.UNFIXED)
    # graft the mRNA structure onto a 16-pin switch with 3 extra modules
    from repro.core import Flow, SwitchSpec
    from repro.switches import CrossbarSwitch
    big = SwitchSpec(
        switch=CrossbarSwitch(16),
        modules=spec.modules + ["aux1", "aux2", "aux3"],
        flows=spec.flows + [Flow(6, "aux1", "aux2")],
        conflicts=spec.conflicts,
        binding=BindingPolicy.UNFIXED,
        name="mRNA 13-module / 16-pin",
    )
    limit = 300 if full_mode() else 30
    result = run_once(benchmark, synthesize, big, bench_options(time_limit=limit))
    write_report(
        output_dir, "scaling_16pin_wall",
        f"{big.name}: status={result.status.value}, T={result.runtime:.1f}s "
        f"(cap {limit}s). Paper: >5 h on a 900 MHz CPU.",
    )

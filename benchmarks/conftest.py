"""Shared infrastructure for the benchmark harness.

Every benchmark is a pytest-benchmark test (run them with
``pytest benchmarks/ --benchmark-only``). Heavy synthesis calls are
wrapped in ``benchmark.pedantic(rounds=1)`` — the paper's experiments
are single solver runs, not micro-benchmarks.

Environment knobs:

* ``REPRO_BENCH_TIME_LIMIT`` — per-solve time limit in seconds
  (default 60; the paper let Gurobi run for hours).
* ``REPRO_BENCH_FULL=1`` — run the full-size experiments (complete
  90-case suite, the 9-flow Table 4.2 case, unfixed ChIP sw.2, ...).

Each experiment writes its paper-style table to
``benchmarks/output/<experiment>.txt`` so results survive the run.
"""

import os
from pathlib import Path

import pytest

from repro.core import SynthesisOptions

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_time_limit() -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "60"))


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def bench_options(**kw) -> SynthesisOptions:
    kw.setdefault("time_limit", bench_time_limit())
    return SynthesisOptions(**kw)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_report(output_dir: Path, name: str, text: str) -> None:
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n[{name}] report written to {path}\n{text}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a solver-scale function exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)

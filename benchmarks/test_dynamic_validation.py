"""Dynamic validation — execute every solved paper case in the simulator.

The paper's claim is static ("the synthesized switch designs are always
able to avoid fluid contamination"); this bench re-checks it
*dynamically*: each solved application case is executed with flood-fill
fluid propagation, and must finish with every flow delivered and zero
contamination / collision / misroute events. A fault-injection sweep
then confirms the essential valves are load-bearing.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import format_table, wash_plan_for_result
from repro.cases import chip_sw1, kinase_sw2, mrna_isolation, nucleic_acid
from repro.core import BindingPolicy, synthesize
from repro.sim import simulate, stuck_open

_rows = []

CASES = [
    (chip_sw1, BindingPolicy.FIXED),
    (kinase_sw2, BindingPolicy.FIXED),
    (nucleic_acid, BindingPolicy.UNFIXED),
    (mrna_isolation, BindingPolicy.UNFIXED),
]


@pytest.mark.parametrize("factory,policy", CASES,
                         ids=[f.__name__ for f, _ in CASES])
def test_dynamic_execution_clean(benchmark, factory, policy):
    spec = factory(policy)
    result = synthesize(spec, bench_options())
    assert result.status.solved

    report = run_once(benchmark, simulate, result)
    assert report.is_clean, report.summary()
    wash = wash_plan_for_result(result)
    assert wash.is_wash_free
    _rows.append({
        "case": spec.name,
        "flows delivered": len(report.delivered),
        "contamination": len(report.contamination_events),
        "collisions": len(report.collisions),
        "misroutes": len(report.misroutes),
        "wash phases": wash.num_phases,
    })


def test_fault_injection_sweep(benchmark, output_dir):
    """Stuck-open faults across all essential valves of a multi-set
    case: at least one valve must be demonstrably load-bearing, and no
    fault may go *undetected* as both clean and starving."""
    from repro.core import Flow, SwitchSpec
    from repro.switches import CrossbarSwitch

    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2"],
        flows=[Flow(1, "acid", "w1"), Flow(2, "base", "w2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "L1", "w2": "B2"},
        name="fault-sweep",
    )
    result = synthesize(spec, bench_options())
    assert result.status.solved and result.valves.essential

    def sweep():
        outcomes = {}
        for key in sorted(result.valves.essential):
            outcomes[key] = simulate(result, faults=[stuck_open(*key)])
        return outcomes

    outcomes = run_once(benchmark, sweep)
    troubled = [k for k, rep in outcomes.items() if not rep.is_clean]
    assert troubled, "no essential valve mattered"
    _rows.append({
        "case": "fault-sweep (stuck-open)",
        "flows delivered": None,
        "contamination": None,
        "collisions": None,
        "misroutes": sum(len(r.misroutes) for r in outcomes.values()),
        "wash phases": None,
    })
    write_report(output_dir, "dynamic_validation", format_table(_rows))

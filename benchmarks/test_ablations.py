"""Ablations over the design choices called out in DESIGN.md.

* scheduling encoding: the paper's K/k/q′ counters vs. the compact
  indicator encoding — identical optima, different solve times;
* node policy: the paper's major-node set vs. all intersections;
* conflict form: per-pair vs. the thesis' literal aggregate sum;
* solver backends: HiGHS vs. our branch-and-bound vs. backtracking on
  an identical small model;
* exact synthesis vs. the greedy heuristic.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import format_table
from repro.cases import generate_case, nucleic_acid
from repro.core import (
    BindingPolicy,
    ConflictForm,
    NodePolicy,
    SchedulingForm,
    SynthesisStatus,
    synthesize,
    synthesize_greedy,
)

_rows = []


def _base_case(**overrides):
    # seed 61 is feasible under every node policy / conflict form, so
    # the ablations compare objectives instead of feasibility noise
    return generate_case(seed=61, switch_size=8, n_flows=3, n_inlets=2,
                         n_conflicts=1, binding=BindingPolicy.FIXED,
                         **overrides)


@pytest.mark.parametrize("form", list(SchedulingForm), ids=lambda f: f.value)
def test_ablation_scheduling_form(benchmark, form):
    spec = _base_case(scheduling_form=form)
    result = run_once(benchmark, synthesize, spec, bench_options())
    assert result.status is SynthesisStatus.OPTIMAL
    _rows.append({"ablation": f"scheduling={form.value}",
                  "objective": round(result.objective, 3),
                  "T(s)": round(result.runtime, 3)})


def test_ablation_scheduling_forms_same_optimum(benchmark):
    def solve_both():
        a = synthesize(_base_case(scheduling_form=SchedulingForm.PAPER),
                       bench_options())
        b = synthesize(_base_case(scheduling_form=SchedulingForm.COMPACT),
                       bench_options())
        return a, b

    a, b = run_once(benchmark, solve_both)
    assert a.objective == pytest.approx(b.objective)


@pytest.mark.parametrize("policy", list(NodePolicy), ids=lambda p: p.value)
def test_ablation_node_policy(benchmark, policy):
    spec = _base_case(node_policy=policy)
    result = run_once(benchmark, synthesize, spec, bench_options())
    assert result.status is SynthesisStatus.OPTIMAL
    _rows.append({"ablation": f"nodes={policy.value}",
                  "objective": round(result.objective, 3),
                  "T(s)": round(result.runtime, 3)})


def test_ablation_node_policy_all_is_stricter(benchmark):
    """ALL counts the corner intersections too, so its optimum is never
    better than the paper's relaxed node set."""
    def solve_both():
        relaxed = synthesize(_base_case(node_policy=NodePolicy.PAPER),
                             bench_options())
        strict = synthesize(_base_case(node_policy=NodePolicy.ALL),
                            bench_options())
        return relaxed, strict

    relaxed, strict = run_once(benchmark, solve_both)
    assert relaxed.status.solved
    if strict.status.solved:
        assert strict.objective >= relaxed.objective - 1e-6


@pytest.mark.parametrize("form", list(ConflictForm), ids=lambda f: f.value)
def test_ablation_conflict_form(benchmark, form):
    spec = _base_case(conflict_form=form)
    result = run_once(benchmark, synthesize, spec, bench_options())
    status = result.status.value
    obj = round(result.objective, 3) if result.status.solved else None
    _rows.append({"ablation": f"conflicts={form.value}",
                  "objective": obj, "T(s)": round(result.runtime, 3),
                  "status": status})


@pytest.mark.parametrize("backend", ["highs", "branch_bound", "backtrack"])
def test_ablation_solver_backends(benchmark, backend):
    """All three exact backends agree on a small fixed-binding case."""
    spec = generate_case(seed=5, switch_size=8, n_flows=2, n_inlets=2,
                         n_conflicts=1, binding=BindingPolicy.FIXED)
    result = run_once(benchmark, synthesize, spec,
                      bench_options(backend=backend, time_limit=120))
    assert result.status is SynthesisStatus.OPTIMAL, backend
    _rows.append({"ablation": f"backend={backend}",
                  "objective": round(result.objective, 3),
                  "T(s)": round(result.runtime, 3)})
    seen = [r for r in _rows if r["ablation"].startswith("backend=")]
    objectives = {r["objective"] for r in seen}
    assert len(objectives) == 1, f"backends disagree: {seen}"


@pytest.mark.parametrize("slack", [0.0, 2.0], ids=["shortest-only", "slack-2mm"])
def test_ablation_path_slack(benchmark, slack):
    """Detour routing (beyond the paper's shortest-only candidate set):
    enlarging the route pool never changes the optimum on this family —
    infeasibility is structural (corner sharing / planar interleaving),
    which validates the paper's §3.1 design choice."""
    from repro.core import SynthesisOptions

    spec = _base_case()
    result = run_once(benchmark, synthesize, spec,
                      bench_options(path_slack=slack))
    assert result.status is SynthesisStatus.OPTIMAL
    _rows.append({"ablation": f"path_slack={slack}",
                  "objective": round(result.objective, 3),
                  "T(s)": round(result.runtime, 3)})
    slack_rows = [r for r in _rows if r["ablation"].startswith("path_slack=")]
    assert len({r["objective"] for r in slack_rows}) == 1


def test_ablation_exact_vs_greedy(benchmark, output_dir):
    spec_exact = nucleic_acid(BindingPolicy.UNFIXED)
    spec_greedy = nucleic_acid(BindingPolicy.UNFIXED)

    def solve_both():
        return (synthesize(spec_exact, bench_options()),
                synthesize_greedy(spec_greedy))

    exact, greedy = run_once(benchmark, solve_both)
    assert exact.status.solved
    row = {"ablation": "exact vs greedy",
           "objective": round(exact.objective, 3),
           "T(s)": round(exact.runtime, 3)}
    if greedy.status.solved:
        greedy_obj = (spec_greedy.alpha * greedy.num_flow_sets
                      + spec_greedy.beta * greedy.flow_channel_length)
        assert exact.objective <= greedy_obj + 1e-6
        row["greedy objective"] = round(greedy_obj, 3)
    _rows.append(row)
    write_report(output_dir, "ablations", format_table(_rows))

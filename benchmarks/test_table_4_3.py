"""Table 4.3 — binding-policy comparison.

Cases: ChIP sw.1/sw.2 and kinase activity sw.1/sw.2, each under the
clockwise, fixed and unfixed policies.

Expected shape (paper):
* fixed yields the largest (or equal) channel length L — it trades
  routing freedom for speed;
* clockwise and unfixed reach the same (optimal) L;
* fixed runs much faster than the free policies;
* runtime grows with the number of connected modules.

ChIP sw.2 under the free policies is the heaviest case; it runs with a
time limit and is only asserted when it solves to proven optimality.
"""

import pytest

from conftest import bench_options, full_mode, run_once, write_report
from repro.analysis import format_table
from repro.cases import chip_sw1, chip_sw2, kinase_sw1, kinase_sw2
from repro.core import BindingPolicy, SynthesisStatus, synthesize

CASES = [kinase_sw1, kinase_sw2, chip_sw1, chip_sw2]
POLICIES = [BindingPolicy.CLOCKWISE, BindingPolicy.FIXED, BindingPolicy.UNFIXED]

_results = {}


def _heavy(factory, policy):
    return factory is chip_sw2 and policy is not BindingPolicy.FIXED


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("factory", CASES, ids=lambda f: f.__name__)
def test_table_4_3(benchmark, factory, policy):
    if _heavy(factory, policy) and not full_mode():
        pytest.skip("ChIP sw.2 free policies: set REPRO_BENCH_FULL=1")
    spec = factory(policy)
    result = run_once(benchmark, synthesize, spec, bench_options())
    _results[(spec.name, policy.value)] = result
    assert result.status.solved, f"{spec.name}/{policy.value}: {result.status.value}"


def test_table_4_3_report(benchmark, output_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _results:
        pytest.skip("individual rows did not run")
    rows = [r.table_row() for r in _results.values()]
    write_report(output_dir, "table_4_3", format_table(rows))

    by_case = {}
    for (case, policy), res in _results.items():
        by_case.setdefault(case, {})[policy] = res

    for case, runs in by_case.items():
        if {"fixed", "unfixed"} <= set(runs):
            fixed, unfixed = runs["fixed"], runs["unfixed"]
            # fixed trades length for speed
            assert fixed.runtime <= unfixed.runtime, case
            if unfixed.status is SynthesisStatus.OPTIMAL:
                assert (unfixed.flow_channel_length
                        <= fixed.flow_channel_length + 1e-6), case
        if {"clockwise", "unfixed"} <= set(runs):
            cw, uf = runs["clockwise"], runs["unfixed"]
            if (cw.status is SynthesisStatus.OPTIMAL
                    and uf.status is SynthesisStatus.OPTIMAL):
                # unfixed explores a superset of clockwise solutions
                assert uf.objective <= cw.objective + 1e-6, case

    # runtime grows with module count within the kinase pair (paper: T
    # increases with application complexity) — compare like policies
    k1 = _results.get(("kinase activity sw.1", "unfixed"))
    k2 = _results.get(("kinase activity sw.2", "unfixed"))
    if k1 and k2:
        assert k2.runtime >= k1.runtime * 0.2  # monotone up to solver noise

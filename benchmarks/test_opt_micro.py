"""Micro-benchmarks of the optimization substrate.

Unlike the experiment harnesses (single solver runs), these measure the
library machinery itself with repeated rounds: model construction,
product linearization, presolve, LP export, and small-model solves on
each backend.
"""

import random

import pytest

from repro.cases import generate_case
from repro.core import BindingPolicy, SynthesisOptions
from repro.core.builder import SynthesisModelBuilder
from repro.core.synthesizer import build_catalog
from repro.opt import Model, model_to_lp, presolve, quicksum
from repro.opt.linearize import linearize


def _quadratic_model(n=40, seed=3):
    rng = random.Random(seed)
    m = Model("micro")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    for i in range(0, n - 1, 2):
        m.add_constr(xs[i] * xs[i + 1] <= 1)
    m.add_constr(quicksum(xs) >= n // 3)
    m.set_objective(
        quicksum(rng.randint(1, 5) * a * b
                 for a, b in zip(xs, xs[1:])) + quicksum(xs),
        "min",
    )
    return m


def test_micro_model_construction(benchmark):
    def build():
        return _quadratic_model()

    model = benchmark(build)
    assert model.num_vars == 40


def test_micro_linearization(benchmark):
    model = _quadratic_model()

    def run():
        return linearize(model)

    lin, products = benchmark(run)
    assert lin.is_linear()
    assert len(products) == 39  # consecutive pairs


def test_micro_presolve(benchmark):
    base = Model("pres")
    xs = [base.add_integer(f"x{i}", 0, 10) for i in range(60)]
    for i, x in enumerate(xs[:30]):
        base.add_constr(x == i % 5)
    for a, b in zip(xs[30:], xs[31:]):
        base.add_constr(a + b <= 12)

    def run():
        return presolve(base)

    result = benchmark(run)
    assert len(result.fixed) == 30


def test_micro_lp_export(benchmark):
    model = _quadratic_model()
    text = benchmark(model_to_lp, model)
    assert text.endswith("End\n")


def test_micro_synthesis_model_build(benchmark):
    spec = generate_case(seed=9, switch_size=12, n_flows=4, n_inlets=2,
                         n_conflicts=2, binding=BindingPolicy.UNFIXED)
    catalog = build_catalog(spec, SynthesisOptions())

    def build():
        return SynthesisModelBuilder(spec, catalog).build()

    built = benchmark(build)
    assert built.model.num_vars > 100


@pytest.mark.parametrize("backend", ["highs", "branch_bound", "backtrack"])
def test_micro_small_solve(benchmark, backend):
    def solve():
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(8)]
        m.add_constr(quicksum(xs) >= 3)
        for a, b in zip(xs, xs[1:]):
            m.add_constr(a + b <= 1)
        m.set_objective(quicksum((i + 1) * x for i, x in enumerate(xs)), "min")
        return m.solve(backend=backend)

    sol = benchmark(solve)
    assert sol.is_optimal
    # alternating pattern: cheapest 3 non-adjacent vars are x0, x2, x4
    assert sol.objective == pytest.approx(1 + 3 + 5)

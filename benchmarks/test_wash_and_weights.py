"""Wash-fallback and objective-weight benches (paper contrasts).

* Wash fallback: the restricted-policy "no solution" rows of Table 4.1
  become feasible-with-washing designs; the contamination-free switch
  needs zero washes — the quantitative contrast with the washing
  school (the paper's reference [9]).
* Objective weights: sweeping α/β around the paper's (1, 100) setting
  shows the α-term acting as the set-count tiebreaker.
"""

import pytest

from conftest import bench_options, run_once, write_report
from repro.analysis import format_table, weight_sweep
from repro.cases import generate_case, nucleic_acid
from repro.core import (
    BindingPolicy,
    SynthesisOptions,
    synthesize_with_wash_fallback,
)

_rows = []


def test_wash_fallback_contrast(benchmark, output_dir):
    def run_both():
        free = synthesize_with_wash_fallback(
            nucleic_acid(BindingPolicy.UNFIXED), bench_options())
        washed = synthesize_with_wash_fallback(
            nucleic_acid(BindingPolicy.FIXED), bench_options())
        return free, washed

    free, washed = run_once(benchmark, run_both)
    assert free.contamination_free and free.washes.is_wash_free
    assert washed.used_fallback and washed.washes.num_phases >= 1
    _rows.append({"experiment": "nucleic acid / unfixed",
                  "design": "contamination-free",
                  "wash phases": 0})
    _rows.append({"experiment": "nucleic acid / fixed",
                  "design": "wash fallback",
                  "wash phases": washed.washes.num_phases})


def test_weight_sweep(benchmark, output_dir):
    spec_factory = lambda: generate_case(
        seed=0, switch_size=8, n_flows=3, n_inlets=2, n_conflicts=0,
        binding=BindingPolicy.FIXED)

    def sweep():
        return weight_sweep(
            spec_factory(),
            weights=[(1.0, 100.0), (1000.0, 1.0), (0.0, 1.0)],
            options=SynthesisOptions(time_limit=30, path_slack=4.0),
        )

    result = run_once(benchmark, sweep)
    solved = result.solved()
    assert solved
    set_dominant = min(p.num_sets for p in solved)
    for p in solved:
        _rows.append({"experiment": f"weights a={p.alpha} b={p.beta}",
                      "design": f"#s={p.num_sets} L={p.length_mm:.1f}",
                      "wash phases": None})
    # with alpha present the set count reaches the sweep's minimum
    paper_point = next(p for p in solved if (p.alpha, p.beta) == (1.0, 100.0))
    assert paper_point.num_sets == set_dominant
    write_report(output_dir, "wash_and_weights", format_table(_rows))

"""Performance instrumentation: phase timers, counters, BENCH emitter.

Every synthesis run can carry a :class:`PerfRecorder` that accumulates a
wall-clock breakdown over the pipeline phases (catalog / build /
linearize / presolve / solve / extract / verify) plus arbitrary event
counters (cache hits, solver nodes, ...). Recorders are cheap enough to
be always-on; the CLI surfaces them behind ``--profile`` and the
benchmark harness serializes them to ``BENCH_opt.json`` so the perf
trajectory is diffable across PRs.
"""

from repro.perf.record import (
    PerfRecorder,
    PhaseTimings,
    emit_bench_json,
    format_phase_table,
    load_bench_json,
    phase_timer,
)

__all__ = [
    "PerfRecorder",
    "PhaseTimings",
    "phase_timer",
    "emit_bench_json",
    "load_bench_json",
    "format_phase_table",
]

"""Phase timing and counter primitives.

The recorder is deliberately tiny: a dict of phase -> seconds and a dict
of counter -> int, filled through a context manager. It nests — timing
``solve`` around a backend that itself times ``presolve`` simply yields
two entries — and merges, so :meth:`repro.opt.model.Model.solve` can
fold its sub-phase breakdown into the synthesizer's recorder.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.trace import current_tracer

#: Canonical phase order used when formatting reports; phases not listed
#: here are appended alphabetically. Mirrors the pipeline: degradation
#: ("degrade") runs after a failed exact attempt and pressure sharing
#: ("pressure") after analysis, so both sort in pipeline position
#: instead of the alphabetical tail ("check" is Model.solve's
#: post-backend assignment validation).
PHASE_ORDER = [
    "catalog", "build", "heuristic", "compile", "linearize", "presolve",
    "solve", "solve_backend", "check", "extract", "analyze", "pressure",
    "verify", "degrade",
]


class PhaseTimings(Dict[str, float]):
    """A ``phase name -> seconds`` mapping with merge/total helpers."""

    @property
    def total(self) -> float:
        return sum(self.values())

    def add(self, phase: str, seconds: float) -> None:
        self[phase] = self.get(phase, 0.0) + seconds

    def merge(self, other: Dict[str, float], prefix: str = "") -> None:
        for phase, seconds in other.items():
            self.add(f"{prefix}{phase}", seconds)

    def ordered(self) -> List[str]:
        known = [p for p in PHASE_ORDER if p in self]
        extra = sorted(p for p in self if p not in PHASE_ORDER)
        return known + extra


class PerfRecorder:
    """Accumulates phase timings and event counters for one run."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.timings = PhaseTimings()
        self.counters: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        # Every timed phase doubles as an observability span when a
        # tracer is installed (repro.obs); the disabled path costs one
        # module-global None check.
        tracer = current_tracer()
        if tracer is None:
            start = time.perf_counter()
            try:
                yield
            finally:
                self.timings.add(name, time.perf_counter() - start)
            return
        with tracer.span(name, kind="phase"):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.timings.add(name, time.perf_counter() - start)

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + increment

    def record(self) -> Dict[str, object]:
        """One serializable record (the BENCH_opt.json row format)."""
        out: Dict[str, object] = {
            "name": self.name,
            "phases": {p: round(self.timings[p], 6) for p in self.timings.ordered()},
            "total_s": round(self.timings.total, 6),
        }
        if self.counters:
            out["counters"] = dict(sorted(self.counters.items()))
        return out

    def __repr__(self) -> str:
        return f"PerfRecorder({self.name!r}, total={self.timings.total:.3f}s)"


@contextmanager
def phase_timer(recorder: Optional[PerfRecorder], name: str) -> Iterator[None]:
    """Time a phase on ``recorder``; a no-op when ``recorder`` is None."""
    if recorder is None:
        yield
        return
    with recorder.phase(name):
        yield


def format_phase_table(timings: Dict[str, float], indent: str = "  ") -> str:
    """Human-readable phase breakdown, widest phase first column."""
    if not timings:
        return f"{indent}(no phases recorded)"
    ordered = (timings.ordered() if isinstance(timings, PhaseTimings)
               else list(timings))
    width = max(len(p) for p in ordered)
    total = sum(timings.values())
    lines = []
    for phase in ordered:
        seconds = timings[phase]
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"{indent}{phase.ljust(width)}  {seconds:9.4f}s  {share:5.1f}%")
    lines.append(f"{indent}{'total'.ljust(width)}  {total:9.4f}s")
    return "\n".join(lines)


def emit_bench_json(path: Union[str, Path],
                    records: List[Dict[str, object]],
                    meta: Optional[Dict[str, object]] = None) -> Path:
    """Write a BENCH_opt.json perf snapshot (one record per workload)."""
    path = Path(path)
    payload: Dict[str, object] = {
        "schema": "repro-bench-v1",
        "records": records,
    }
    if meta:
        payload["meta"] = meta
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def load_bench_json(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Read a BENCH_opt.json snapshot; None when absent or unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or "records" not in data:
        return None
    return data

"""Deterministic fault injection for solver backends.

:class:`FaultyBackend` wraps any real backend and, according to a
seed-controlled :class:`FaultPlan`, makes individual ``solve`` calls

* **crash** — raise :class:`~repro.errors.InjectedFaultError`;
* **time out** — return an empty ``TIME_LIMIT`` solution without
  touching the inner backend;
* **corrupt** — let the inner backend solve, then silently zero one
  1-valued binary and *downgrade the status to FEASIBLE*. The downgrade
  matters: :meth:`repro.opt.model.Model.solve` re-checks OPTIMAL
  assignments against the constraints, so an honest-status corruption
  would be caught at the model layer. A FEASIBLE claim sails through —
  exactly the situation where the independent verifier
  (:mod:`repro.core.verify`) is the last line of defence. The test
  suite proves it holds that line.

Determinism: every decision (which fault, which variable to corrupt)
comes from a ``random.Random(seed)`` owned by the plan, so a fixed seed
reproduces the exact same fault sequence; with an empty plan the
wrapper is a transparent pass-through and results are bit-identical to
the inner backend's.

Typical use::

    from repro.opt.solvers import register_backend, unregister_backend
    from repro.testing import FaultPlan, FaultyBackend, install_faulty_backend

    with install_faulty_backend("flaky", plan=FaultPlan(schedule=["crash"])):
        result = synthesize(spec, SynthesisOptions(backend="flaky"))
        assert result.counters.get("degraded") == 1
"""

from __future__ import annotations

import os
import random
import re
import signal
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Union

from repro.errors import InjectedFaultError, ReproError
from repro.obs.trace import obs_event
from repro.opt.expr import VarType
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers import SolverBackend, get_backend

#: The fault kinds a plan may produce (``None`` = no fault). ``kill``
#: hard-terminates the *process* (SIGKILL — no cleanup, no atexit), the
#: fault the service's write-ahead journal exists to survive.
FAULT_KINDS = ("crash", "timeout", "corrupt", "kill")


class FaultPlan:
    """A seed-controlled schedule of injected faults.

    Two modes:

    * ``schedule=[...]`` — an explicit per-call script, consumed one
      entry per ``solve`` (``None`` entries mean "no fault"); once
      exhausted, no further faults fire. Precise targeting for tests:
      ``["corrupt"]`` hits exactly the first solve of a pipeline.
    * rates — ``crash``/``timeout``/``corrupt`` probabilities in
      ``[0, 1]`` (summing to ≤ 1), drawn i.i.d. per call from
      ``random.Random(seed)``.

    A plan is single-use state (it remembers how far it has advanced);
    build a fresh plan with the same arguments to replay a sequence.
    """

    def __init__(self, seed: int = 0, crash: float = 0.0,
                 timeout: float = 0.0, corrupt: float = 0.0,
                 schedule: Optional[Sequence[Optional[str]]] = None) -> None:
        for rate in (crash, timeout, corrupt):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"fault rates must be in [0, 1], got {rate}")
        if crash + timeout + corrupt > 1.0 + 1e-12:
            raise ReproError("fault rates must sum to at most 1")
        if schedule is not None:
            bad = [s for s in schedule if s is not None and s not in FAULT_KINDS]
            if bad:
                raise ReproError(
                    f"unknown fault kind(s) {bad}; expected {FAULT_KINDS}")
        self.seed = seed
        self.rates = (crash, timeout, corrupt)
        self.schedule = list(schedule) if schedule is not None else None
        self._cursor = 0
        self.rng = random.Random(seed)

    def draw(self) -> Optional[str]:
        """The fault for the next ``solve`` call (``None`` = no fault)."""
        if self.schedule is not None:
            if self._cursor >= len(self.schedule):
                return None
            fault = self.schedule[self._cursor]
            self._cursor += 1
            return fault
        r = self.rng.random()
        crash, timeout, corrupt = self.rates
        if r < crash:
            return "crash"
        if r < crash + timeout:
            return "timeout"
        if r < crash + timeout + corrupt:
            return "corrupt"
        return None


def corrupt_solution(sol: Solution, rng: random.Random,
                     var_pattern: Optional[str] = None) -> Solution:
    """Corrupt a solution in place the way a buggy backend would.

    Zeroes one rng-chosen 1-valued binary (optionally restricted to
    names matching ``var_pattern``) and downgrades OPTIMAL to FEASIBLE
    so the model-layer assignment check is bypassed. Returns ``sol``
    unchanged when it has no values or no matching variable to corrupt.
    """
    if sol.values is None:
        return sol
    matcher = re.compile(var_pattern) if var_pattern else None
    candidates = sorted(
        (v for v, val in sol.values.items()
         if v.vtype is VarType.BINARY and val > 0.5
         and (matcher is None or matcher.search(v.name))),
        key=lambda v: v.name,
    )
    if not candidates:
        return sol
    victim = rng.choice(candidates)
    sol.values[victim] = 0.0
    if sol.status is SolveStatus.OPTIMAL:
        sol.status = SolveStatus.FEASIBLE
    sol.message = (f"{sol.message}; " if sol.message else "") \
        + f"injected corruption: zeroed {victim.name}"
    return sol


class FaultyBackend(SolverBackend):
    """A solver backend wrapper that injects planned faults."""

    name = "faulty"

    def __init__(self, inner: Union[str, SolverBackend] = "auto",
                 plan: Optional[FaultPlan] = None,
                 corrupt_vars: Optional[str] = None) -> None:
        self.inner = get_backend(inner) if isinstance(inner, str) else inner
        self.plan = plan or FaultPlan()
        #: Regex narrowing which variables a "corrupt" fault may touch
        #: (e.g. ``r"^(x_|y_|w_)"`` to hit the synthesis assignment
        #: variables rather than a harmless auxiliary).
        self.corrupt_vars = corrupt_vars
        self.name = f"faulty({self.inner.name})"
        #: Chronological record of the faults that actually fired
        #: ("none" entries included), for assertions in tests.
        self.injected: List[str] = []

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        fault = self.plan.draw()
        self.injected.append(fault or "none")
        if fault is not None:
            # Typed telemetry: every planned fault that actually fires is
            # visible in the event stream alongside the solver's own
            # incumbent/deadline events (asserted in test_faultinject).
            obs_event("fault_injected", kind=fault, backend=self.inner.name,
                      solve=len(self.injected), model=model.name)
        if fault == "kill":
            # The chaos tests' hard death: SIGKILL cannot be caught, so
            # nothing below this line — journals included — gets to
            # clean up. Exactly what a power cut looks like to the WAL.
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == "crash":
            raise InjectedFaultError(
                f"injected backend crash (solve #{len(self.injected)})")
        if fault == "timeout":
            return Solution(SolveStatus.TIME_LIMIT, solver=self.name,
                            message="injected timeout")
        sol = self.inner.solve(model, time_limit=time_limit, mip_gap=mip_gap,
                               verbose=verbose, warm_start=warm_start)
        if fault == "corrupt":
            sol = corrupt_solution(sol, self.plan.rng, self.corrupt_vars)
        sol.solver = self.name
        return sol


def flaky_backend_plan(seed: int = 0, crash: float = 0.2,
                       timeout: float = 0.1) -> FaultPlan:
    """The service chaos tests' default flaky backend: i.i.d. crashes
    and timeouts at rates high enough to exercise retry + breaker paths
    but low enough that every job eventually completes."""
    return FaultPlan(seed=seed, crash=crash, timeout=timeout)


def process_kill_plan(after: int) -> FaultPlan:
    """A plan whose ``after``-th solve (1-based) SIGKILLs the process.

    Everything before it succeeds normally, so a mid-run hard death
    lands with real completed work in the journal — the interesting
    case for replay.
    """
    if after < 1:
        raise ReproError(f"kill position must be >= 1, got {after}")
    return FaultPlan(schedule=[None] * (after - 1) + ["kill"])


@contextmanager
def install_faulty_backend(
    backend_name: str = "faulty",
    inner: Union[str, SolverBackend] = "auto",
    plan: Optional[FaultPlan] = None,
    corrupt_vars: Optional[str] = None,
) -> Iterator[FaultyBackend]:
    """Register a :class:`FaultyBackend` for the duration of a block.

    Inside the block, ``backend_name`` resolves to the *same* wrapper
    instance on every ``get_backend`` call, so the plan advances across
    the whole pipeline (main solve, pressure ILP, ...) in call order and
    ``wrapper.injected`` records the full fault history.
    """
    from repro.opt.solvers import register_backend, unregister_backend

    wrapper = FaultyBackend(inner=inner, plan=plan, corrupt_vars=corrupt_vars)
    register_backend(backend_name, lambda: wrapper, replace=True)
    try:
        yield wrapper
    finally:
        unregister_backend(backend_name)


__all__ = ["FAULT_KINDS", "FaultPlan", "FaultyBackend", "corrupt_solution",
           "install_faulty_backend", "flaky_backend_plan",
           "process_kill_plan"]

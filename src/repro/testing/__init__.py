"""Test harnesses that exercise the library's fault tolerance.

Nothing in here is used by the synthesis pipeline itself — it exists so
the test-suite (and curious users) can rehearse solver crashes,
timeouts and corrupted solutions deterministically and watch the
degradation ladder and the independent verifier do their jobs.
"""

from repro.testing.faultinject import (
    FaultPlan,
    FaultyBackend,
    corrupt_solution,
    flaky_backend_plan,
    install_faulty_backend,
    process_kill_plan,
)

__all__ = [
    "FaultPlan",
    "FaultyBackend",
    "corrupt_solution",
    "install_faulty_backend",
    "flaky_backend_plan",
    "process_kill_plan",
]

"""Contamination-free switch design and synthesis for microfluidic LSI.

A faithful open-source reproduction of *"Contamination-Free Switch
Design and Synthesis for Microfluidic Large-Scale Integration"*
(TU München / DATE 2022): reconfigurable crossbar switch models,
IQP-based synthesis with contamination avoidance, flow scheduling,
three module-to-pin binding policies, and pressure sharing via minimum
clique cover — plus the spine/GRU baselines, analysis, rendering and
the complete experiment harness.

Quickstart::

    from repro import Flow, SwitchSpec, BindingPolicy, synthesize
    from repro.switches import CrossbarSwitch

    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["sample", "buffer", "mix1", "mix2"],
        flows=[Flow(1, "sample", "mix1"), Flow(2, "buffer", "mix2")],
        conflicts={frozenset({1, 2})},
        binding=BindingPolicy.UNFIXED,
    )
    result = synthesize(spec)
    print(result.table_row())
"""

from repro.core import (
    BindingPolicy,
    ConflictForm,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
    SynthesisOptions,
    SynthesisResult,
    SynthesisStatus,
    conflict_pair,
    synthesize,
    synthesize_greedy,
    verify_result,
)
from repro.deadline import Deadline
from repro.switches import (
    CrossbarSwitch,
    GRUSwitch,
    ScalableCrossbarSwitch,
    SpineSwitch,
)

__version__ = "1.0.0"

__all__ = [
    "Flow",
    "SwitchSpec",
    "conflict_pair",
    "BindingPolicy",
    "NodePolicy",
    "ConflictForm",
    "SchedulingForm",
    "SynthesisOptions",
    "SynthesisResult",
    "SynthesisStatus",
    "synthesize",
    "synthesize_greedy",
    "verify_result",
    "Deadline",
    "CrossbarSwitch",
    "ScalableCrossbarSwitch",
    "SpineSwitch",
    "GRUSwitch",
    "__version__",
]

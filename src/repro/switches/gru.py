"""GRU-based switch (the prior-study baseline of §2.1, Figure 2.2).

Ma's switch builds on General Routing Units (GRUs): a unit has a
center ``C``, four surrounding nodes ``N/E/S/W`` connected as a ring
plus spokes to the center, and two pins per exposed node. A 12-pin
switch chains two GRUs by bridging the first unit's ``E`` node to the
second unit's ``W`` node.

The paper criticizes this structure (each border node serves two pins,
45° channel angles, control channels below minimum spacing); we rebuild
it so the comparison experiments can demonstrate the first two issues
quantitatively (routing-space analysis), and flag the geometric ones
via the design-rule checker.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import SwitchModelError
from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY
from repro.switches.base import NodeKind, SwitchModel

#: Half-diagonal of one GRU (distance center → N/E/S/W node), mm.
RADIUS = 1.0
#: Pin stub length off a border node, mm.
STUB = 0.7
#: Horizontal pitch between the centers of chained GRUs, mm.
UNIT_PITCH = 2.0 * RADIUS + 1.0


class GRUSwitch(SwitchModel):
    """An 8-pin (one GRU) or 12-pin (two GRU) switch after Ma.

    Channel lengths use Euclidean distance because the GRU ring runs
    diagonally (the 45° geometry the paper criticizes).
    """

    def __init__(self, n_pins: int = 8, rules: DesignRules = STANFORD_FOUNDRY) -> None:
        if n_pins not in (8, 12):
            raise SwitchModelError("GRU switches come in 8-pin (1 GRU) and 12-pin (2 GRUs)")
        super().__init__(f"gru-{n_pins}pin", rules)
        self.units = 1 if n_pins == 8 else 2
        self.rotation_order = 4 if self.units == 1 else 2
        self._build(self.units)
        self._finalize()

    def _euclid_segment(self, a: str, b: str, with_valve: bool = True) -> None:
        self._add_segment(a, b, self.coords[a].euclidean_to(self.coords[b]), with_valve)

    def _build(self, units: int) -> None:
        for u in range(units):
            suffix = "" if units == 1 else str(u + 1)
            cx = UNIT_PITCH * u
            self._add_node(f"C{suffix}", NodeKind.CENTER, Point(cx, 0.0))
            self._add_node(f"N{suffix}", NodeKind.ARM, Point(cx, RADIUS))
            self._add_node(f"S{suffix}", NodeKind.ARM, Point(cx, -RADIUS))
            self._add_node(f"W{suffix}", NodeKind.ARM, Point(cx - RADIUS, 0.0))
            self._add_node(f"E{suffix}", NodeKind.ARM, Point(cx + RADIUS, 0.0))
            # ring (diagonal, 45° geometry) + spokes
            for ring_a, ring_b in (("N", "E"), ("E", "S"), ("S", "W"), ("W", "N")):
                self._euclid_segment(f"{ring_a}{suffix}", f"{ring_b}{suffix}")
            for arm in ("N", "E", "S", "W"):
                self._euclid_segment(f"{arm}{suffix}", f"C{suffix}")

        if units == 2:
            self._euclid_segment("E1", "W2")

        # Two pins per exposed border node (the design flaw the paper
        # highlights: e.g. pins TL and T both reach only node N).
        def pin_pair(node: str, names: List[str], offsets: List[Point]) -> None:
            base = self.coords[node]
            for pname, off in zip(names, offsets):
                self._add_pin(pname, Point(base.x + off.x, base.y + off.y))
                self._euclid_segment(pname, node)

        d = STUB / math.sqrt(2.0)
        if units == 1:
            # Pin names follow Figure 2.2(a) exactly.
            pin_pair("N", ["TL", "T"], [Point(-d, d), Point(d, d)])
            pin_pair("E", ["TR", "R"], [Point(d, d), Point(d, -d)])
            pin_pair("S", ["BR", "B"], [Point(d, -d), Point(-d, -d)])
            pin_pair("W", ["BL", "L"], [Point(-d, -d), Point(-d, d)])
            self.pins = ["TL", "T", "TR", "R", "BR", "B", "BL", "L"]
        else:
            pin_pair("N1", ["TL", "T1"], [Point(-d, d), Point(d, d)])
            pin_pair("N2", ["T2", "TR"], [Point(-d, d), Point(d, d)])
            pin_pair("E2", ["R1", "R2"], [Point(d, d), Point(d, -d)])
            pin_pair("S2", ["BR", "B2"], [Point(d, -d), Point(-d, -d)])
            pin_pair("S1", ["B1", "BL"], [Point(d, -d), Point(-d, -d)])
            pin_pair("W1", ["L2", "L1"], [Point(-d, -d), Point(-d, d)])
            self.pins = ["TL", "T1", "T2", "TR", "R1", "R2",
                         "BR", "B2", "B1", "BL", "L2", "L1"]

    def pins_sharing_a_node(self) -> List[tuple]:
        """Pin pairs forced through the same single node.

        These are the pairs for which contamination cannot be avoided
        when their fluids conflict — the paper's first criticism of the
        GRU design ("pins TL and T are connected to the same and only
        node N").
        """
        by_node = {}
        for pin in self.pins:
            node = next(iter(self.graph.neighbors(pin)))
            by_node.setdefault(node, []).append(pin)
        return [tuple(v) for v in by_node.values() if len(v) > 1]

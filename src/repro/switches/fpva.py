"""Fully Programmable Valve Array (FPVA) grid switch model.

The paper's crossbar family hand-places a small set of internal nodes;
an FPVA is the opposite extreme — a regular ``rows x cols`` lattice of
junctions with a valve on *every* channel edge, the architecture the
FPVA testing literature targets. Modeling it as a
:class:`~repro.switches.base.SwitchModel` lets the whole synthesis
pipeline (path catalogs, the IQP, verification, simulation, health
masks) run unchanged on generalized valve-array hardware.

Geometry: junction ``g{r}_{c}`` sits at ``(c, -r)`` millimetres (row 0
on top, matching the clockwise pin order starting top-left); adjacent
junctions are connected by unit-length segments. Every border junction
carries exactly one pin on a 0.7 mm stub pointing outward, so a
``rows x cols`` grid has ``2*rows + 2*cols - 4`` pins.

The lattice has rich symmetry, but its automorphisms permute pins in
ways the synthesis model's rotation constraint (a cyclic shift of the
pin order) only captures for square grids; ``rotation_order`` stays 1 —
correct, merely conservative.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SwitchModelError
from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY
from repro.switches.base import NodeKind, SwitchModel

#: Lattice pitch between adjacent junctions, in millimetres.
GRID_PITCH = 1.0
#: Length of a pin stub leaving a border junction, in millimetres.
PIN_STUB = 0.7


class FPVAGrid(SwitchModel):
    """A rows x cols fully programmable valve-array lattice."""

    def __init__(self, rows: int = 3, cols: int = 3,
                 rules: DesignRules = STANFORD_FOUNDRY) -> None:
        if rows < 2 or cols < 2:
            raise SwitchModelError(
                f"an FPVA grid needs at least 2x2 junctions, got {rows}x{cols}"
            )
        super().__init__(f"fpva-{rows}x{cols}", rules)
        self.rows = rows
        self.cols = cols
        self._build(rows, cols)
        self._finalize()

    # ------------------------------------------------------------------
    def _build(self, rows: int, cols: int) -> None:
        def junction(r: int, c: int) -> str:
            return f"g{r}_{c}"

        for r in range(rows):
            for c in range(cols):
                self._add_node(junction(r, c), NodeKind.JUNCTION,
                               Point(GRID_PITCH * c, -GRID_PITCH * r))

        # Pins: one per border junction, registered clockwise from the
        # top-left corner. Corners take the outward normal of the side
        # the clockwise walk reaches them on.
        border: List[Tuple[int, int, Tuple[float, float]]] = []
        for c in range(cols):                      # top, left -> right
            border.append((0, c, (0.0, PIN_STUB)))
        for r in range(1, rows):                   # right, top -> bottom
            border.append((r, cols - 1, (PIN_STUB, 0.0)))
        for c in range(cols - 2, -1, -1):          # bottom, right -> left
            border.append((rows - 1, c, (0.0, -PIN_STUB)))
        for r in range(rows - 2, 0, -1):           # left, bottom -> top
            border.append((r, 0, (-PIN_STUB, 0.0)))

        for idx, (r, c, (dx, dy)) in enumerate(border):
            pin = f"P{idx + 1}"
            anchor = self.coords[junction(r, c)]
            self._add_pin(pin, Point(anchor.x + dx, anchor.y + dy))
            self._add_segment(pin, junction(r, c))
        self.pin_anchor = {f"P{i + 1}": junction(r, c)
                           for i, (r, c, _) in enumerate(border)}

        # Lattice edges, one valve each (the "fully programmable" part).
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    self._add_segment(junction(r, c), junction(r, c + 1))
                if r + 1 < rows:
                    self._add_segment(junction(r, c), junction(r + 1, c))


def make_fpva(rows: int, cols: int,
              rules: DesignRules = STANFORD_FOUNDRY) -> FPVAGrid:
    """Convenience constructor mirroring :func:`make_switch`."""
    return FPVAGrid(rows, cols, rules)


__all__ = ["FPVAGrid", "GRID_PITCH", "PIN_STUB", "make_fpva"]

"""Candidate path enumeration (§3.1).

The paper pre-generates, for each pair of flow pins, a set of shortest
routing paths through the switch, and the IQP assigns every flow to
exactly one of them. :func:`enumerate_paths` reproduces this: for every
*ordered* pin pair it yields all length-minimal paths (optionally with
a slack so near-shortest alternatives are available too).

Enumeration results are memoized on the switch's *structural* signature
(:meth:`~repro.switches.base.SwitchModel.structure_key`) rather than
object identity: the case factories and the artificial suite build a
fresh switch instance per spec, but almost all of them share a handful
of structures, so a 90-case sweep enumerates each structure once. Paths
are immutable, so cached lists are shared safely across catalogs;
:func:`path_cache_info` exposes hit/miss counters and
:func:`clear_path_cache` resets the cache (used by tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import SwitchModelError
from repro.switches.base import MAJOR_KINDS, NodeKind, SwitchModel, segment_key


@dataclass(frozen=True)
class Path:
    """One candidate routing path between two pins.

    ``vertices`` includes the source pin first and the target pin last;
    ``nodes`` is the set of intermediate switch nodes, ``segments`` the
    set of traversed segment keys, and ``length`` the channel length of
    the path in millimetres.
    """

    index: int
    source_pin: str
    target_pin: str
    vertices: Tuple[str, ...]
    nodes: FrozenSet[str]
    segments: FrozenSet[Tuple[str, str]]
    length: float

    def uses_node(self, node: str) -> bool:
        return node in self.nodes

    def uses_segment(self, a: str, b: str) -> bool:
        return segment_key(a, b) in self.segments

    def major_nodes(self, switch: SwitchModel) -> FrozenSet[str]:
        """Restrict to the paper's node set (centers/arms/junctions)."""
        return frozenset(n for n in self.nodes if switch.kinds[n] in MAJOR_KINDS)

    def __str__(self) -> str:
        return "->".join(self.vertices)


class PathCatalog:
    """All candidate paths of a switch, indexed by pin pair.

    Built once per synthesis run; constraint builders iterate either
    over all paths or over the paths of a single ordered pin pair.
    """

    def __init__(self, switch: SwitchModel, paths: List[Path]) -> None:
        self.switch = switch
        self.paths = paths
        self._by_pair: Dict[Tuple[str, str], List[Path]] = {}
        for p in paths:
            self._by_pair.setdefault((p.source_pin, p.target_pin), []).append(p)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def between(self, source_pin: str, target_pin: str) -> List[Path]:
        """Candidate paths from one pin to another (possibly empty)."""
        return self._by_pair.get((source_pin, target_pin), [])

    def starting_at(self, pin: str) -> List[Path]:
        return [p for p in self.paths if p.source_pin == pin]

    def ending_at(self, pin: str) -> List[Path]:
        return [p for p in self.paths if p.target_pin == pin]

    def shortest_length(self, source_pin: str, target_pin: str) -> float:
        paths = self.between(source_pin, target_pin)
        if not paths:
            raise SwitchModelError(f"no path between {source_pin} and {target_pin}")
        return min(p.length for p in paths)


def path_from_vertices(switch: SwitchModel, index: int,
                       vertices: Sequence[str]) -> Path:
    """Rebuild a :class:`Path` from its vertex sequence.

    Segment keys and lengths come from ``switch`` itself, so a vertex
    pair that is not an actual channel of the switch raises — which is
    exactly the validation the persistent catalog cache
    (:mod:`repro.store`) relies on when decoding stored routes.
    """
    nodes = frozenset(v for v in vertices if not switch.is_pin(v))
    segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
    length = sum(switch.segments[k].length for k in segs)
    return Path(
        index=index,
        source_pin=vertices[0],
        target_pin=vertices[-1],
        vertices=tuple(vertices),
        nodes=nodes,
        segments=segs,
        length=length,
    )


#: Memoized enumeration results, keyed on (structure, pins, slack, cap).
#: Bounded LRU so long artificial sweeps cannot grow it without limit.
_PATH_CACHE: "OrderedDict[tuple, Tuple[Path, ...]]" = OrderedDict()
_PATH_CACHE_MAX = 128
_PATH_CACHE_LOCK = threading.Lock()

# Counters live in a repro.obs metrics registry (not module-global
# ints): portfolio members and service workers enumerate from several
# threads at once, and instruments are the one shared-counter shape
# the rest of the codebase already uses. All updates happen under
# _PATH_CACHE_LOCK, so the counts are exact, not merely approximate.
_METRICS = None


def _path_metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.metrics import MetricsRegistry

        _METRICS = MetricsRegistry()
    return _METRICS


def _count(name: str) -> None:
    """Bump a local instrument and mirror it to any installed tracer."""
    _path_metrics().counter(name).inc()
    tracer = _current_tracer()
    if tracer is not None:
        tracer.metrics.counter(name).inc()


def _current_tracer():
    from repro.obs.trace import current_tracer

    return current_tracer()


def path_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the path-enumeration cache.

    ``hits``/``misses`` count the in-memory LRU; ``store_hits`` counts
    enumerations answered by the persistent :mod:`repro.store` catalog
    cache (those are *not* double-counted as memory hits).
    """
    metrics = _path_metrics()
    with _PATH_CACHE_LOCK:
        return {"hits": metrics.counter("path_cache_hits").value,
                "misses": metrics.counter("path_cache_misses").value,
                "store_hits": metrics.counter("path_cache_store_hits").value,
                "size": len(_PATH_CACHE), "max_size": _PATH_CACHE_MAX}


def clear_path_cache() -> None:
    """Drop all memoized enumerations and reset the counters."""
    metrics = _path_metrics()
    with _PATH_CACHE_LOCK:
        _PATH_CACHE.clear()
        for name in ("path_cache_hits", "path_cache_misses",
                     "path_cache_store_hits"):
            metrics.counter(name).value = 0


def enumerate_paths(
    switch: SwitchModel,
    pins: Optional[Sequence[str]] = None,
    slack: float = 0.0,
    max_paths_per_pair: Optional[int] = None,
) -> PathCatalog:
    """Enumerate candidate paths between ordered pin pairs.

    ``slack`` admits paths up to ``shortest + slack`` millimetres
    (0 reproduces the paper's all-shortest-paths set);
    ``max_paths_per_pair`` optionally caps the per-pair count (paths are
    kept shortest-first). ``pins`` restricts the pin set (used by the
    fixed binding policy to enumerate only the bound pins).

    Results are memoized per switch structure; the returned catalog is
    always a fresh :class:`PathCatalog` bound to ``switch``. When a
    persistent :mod:`repro.store` is active, an in-memory miss falls
    back to the stored catalog for the same structure (Tier B), and a
    fresh enumeration is written through for future processes.
    """
    if slack < 0:
        raise SwitchModelError("path slack cannot be negative")
    cache_key = (switch.structure_key(),
                 tuple(pins) if pins is not None else None,
                 float(slack), max_paths_per_pair)
    with _PATH_CACHE_LOCK:
        cached = _PATH_CACHE.get(cache_key)
        if cached is not None:
            _count("path_cache_hits")
            _PATH_CACHE.move_to_end(cache_key)
            return PathCatalog(switch, list(cached))
    stored = _load_stored_catalog(switch, cache_key)
    if stored is not None:
        with _PATH_CACHE_LOCK:
            _count("path_cache_store_hits")
            _PATH_CACHE[cache_key] = stored
            _PATH_CACHE.move_to_end(cache_key)
            while len(_PATH_CACHE) > _PATH_CACHE_MAX:
                _PATH_CACHE.popitem(last=False)
        return PathCatalog(switch, list(stored))
    with _PATH_CACHE_LOCK:
        _count("path_cache_misses")
    pin_list = list(pins) if pins is not None else list(switch.pins)
    for p in pin_list:
        if not switch.is_pin(p):
            raise SwitchModelError(f"{p!r} is not a pin of {switch.name!r}")

    paths: List[Path] = []
    index = 0
    for src in pin_list:
        # Single-source shortest path lengths prune the simple-path search.
        dist = nx.single_source_dijkstra_path_length(switch.graph, src, weight="length")
        for dst in pin_list:
            if dst == src or dst not in dist:
                continue
            budget = dist[dst] + slack + 1e-9
            found: List[List[str]] = []
            if slack == 0:
                found = [list(v) for v in nx.all_shortest_paths(
                    switch.graph, src, dst, weight="length")]
            else:
                for vertices in _bounded_simple_paths(switch, src, dst, budget):
                    found.append(vertices)
            # Pins are terminals only: a candidate path must not route
            # *through* a third pin (pins have degree 1, so this cannot
            # happen on our models, but guard against exotic subclasses).
            found = [v for v in found
                     if all(not switch.is_pin(x) for x in v[1:-1])]
            found.sort(key=lambda v: (sum(
                switch.segments[segment_key(a, b)].length for a, b in zip(v, v[1:])), v))
            if max_paths_per_pair is not None:
                found = found[:max_paths_per_pair]
            for vertices in found:
                paths.append(path_from_vertices(switch, index, vertices))
                index += 1
    with _PATH_CACHE_LOCK:
        _PATH_CACHE[cache_key] = tuple(paths)
        _PATH_CACHE.move_to_end(cache_key)
        while len(_PATH_CACHE) > _PATH_CACHE_MAX:
            _PATH_CACHE.popitem(last=False)
    _store_catalog(cache_key, paths)
    return PathCatalog(switch, paths)


def _load_stored_catalog(switch: SwitchModel,
                         cache_key: tuple) -> Optional[Tuple[Path, ...]]:
    """Tier B read of a persistent catalog (None on miss/no store).

    Routes are rebuilt against *this* switch — vertices that do not
    form real channels raise inside :func:`path_from_vertices`, which
    quarantines the entry as corrupt instead of ever serving it.
    """
    from repro.store import active_store, artifact_key, decode_catalog

    store = active_store()
    if store is None:
        return None
    key = artifact_key("catalog", cache_key)
    payload = store.get(key, "catalog")
    if payload is None:
        return None
    try:
        return decode_catalog(switch, payload)
    except Exception:
        store.delete(key)
        return None


def _store_catalog(cache_key: tuple, paths: Sequence[Path]) -> None:
    """Tier B write-through of a fresh enumeration (never fails it)."""
    from repro.store import active_store, artifact_key, encode_catalog

    store = active_store()
    if store is None:
        return
    try:
        store.put(artifact_key("catalog", cache_key), "catalog",
                  encode_catalog(paths))
    except Exception:
        pass


def _bounded_simple_paths(switch: SwitchModel, src: str, dst: str,
                          budget: float) -> Iterator[List[str]]:
    """DFS over simple paths with total length within ``budget``.

    Prunes with the exact remaining shortest distance to ``dst``, so the
    search only expands prefixes that can still meet the budget.
    """
    to_dst = nx.single_source_dijkstra_path_length(switch.graph, dst, weight="length")
    stack: List[Tuple[str, List[str], float]] = [(src, [src], 0.0)]
    while stack:
        vertex, trail, used = stack.pop()
        if vertex == dst:
            yield trail
            continue
        for nbr in switch.graph.neighbors(vertex):
            if nbr in trail:
                continue
            if switch.is_pin(nbr) and nbr != dst:
                continue
            step = switch.segments[segment_key(vertex, nbr)].length
            if nbr not in to_dst:
                continue
            if used + step + to_dst[nbr] > budget:
                continue
            stack.append((nbr, trail + [nbr], used + step))

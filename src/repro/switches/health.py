"""Hardware health overlays for switch models.

Real valve arrays degrade: a valve sticks open or closed, a channel
segment clogs with debris. A :class:`HealthMask` records those faults
as sets of canonical segment keys and overlays them on any
:class:`~repro.switches.base.SwitchModel` via
:func:`apply_health_mask` (also reachable as
``SwitchModel.with_health``): the masked copy drops every dead segment
and its valve from the structure, so path enumeration
(:mod:`repro.switches.paths`), the synthesis model, and the verifier
all see only the surviving hardware.

All three fault kinds remove their segment from the *routable*
structure. A stuck-closed valve and a blocked segment obviously cannot
carry flow; a stuck-open valve cannot be *closed*, so no schedule may
rely on it for isolation — routing around it is the only plan the
verifier can still prove contamination-free. (The simulator keeps the
kinds distinct: stuck-open segments still leak fluid at execution
time, which is exactly how the fault is detected.)

Masked switches are allowed to be disconnected and to strand pins —
that is the degraded reality. :func:`reachability_report` re-validates
what survives: which pins still reach the rest of the structure and
which pin pairs still have any path at all.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import SwitchModelError
from repro.switches.base import SwitchModel, segment_key

SegKey = Tuple[str, str]

#: The fault kind vocabulary a mask understands (mirrors
#: :class:`repro.sim.faults.FaultKind` values without importing the sim
#: layer — switches sit below sim in the dependency order).
FAULT_KINDS = ("stuck_open", "stuck_closed", "blocked_segment")


@dataclass(frozen=True)
class HealthMask:
    """An immutable record of failed valves/segments on one switch.

    Segment keys are canonical ``(a, b)`` with ``a <= b`` — build masks
    through :meth:`from_faults` / :meth:`from_triples` (or pass
    pre-canonical keys) so ``(b, a)`` and ``(a, b)`` always name the
    same fault.
    """

    stuck_open: FrozenSet[SegKey] = field(default_factory=frozenset)
    stuck_closed: FrozenSet[SegKey] = field(default_factory=frozenset)
    blocked: FrozenSet[SegKey] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for name in ("stuck_open", "stuck_closed", "blocked"):
            keys = frozenset(segment_key(*k) for k in getattr(self, name))
            object.__setattr__(self, name, keys)

    # ------------------------------------------------------------------
    @classmethod
    def from_faults(cls, faults: Iterable) -> "HealthMask":
        """Build a mask from :class:`repro.sim.faults.ValveFault`-likes.

        Duck-typed on ``.segment`` and ``.kind`` (whose ``value`` must
        be one of :data:`FAULT_KINDS`) so the switches layer never
        imports the sim layer.
        """
        triples = []
        for f in faults:
            kind = getattr(f.kind, "value", f.kind)
            triples.append((f.segment[0], f.segment[1], kind))
        return cls.from_triples(triples)

    @classmethod
    def from_triples(cls, triples: Iterable[Sequence]) -> "HealthMask":
        """Build a mask from ``(a, b, kind)`` triples (the JSON form)."""
        buckets: Dict[str, set] = {k: set() for k in FAULT_KINDS}
        for a, b, kind in triples:
            if kind not in buckets:
                raise SwitchModelError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            buckets[kind].add(segment_key(str(a), str(b)))
        return cls(
            stuck_open=frozenset(buckets["stuck_open"]),
            stuck_closed=frozenset(buckets["stuck_closed"]),
            blocked=frozenset(buckets["blocked_segment"]),
        )

    # ------------------------------------------------------------------
    @property
    def dead_segments(self) -> FrozenSet[SegKey]:
        """Every segment the mask removes from the routable structure."""
        return self.stuck_open | self.stuck_closed | self.blocked

    @property
    def is_empty(self) -> bool:
        return not (self.stuck_open or self.stuck_closed or self.blocked)

    def kind_of(self, a: str, b: str) -> Optional[str]:
        """The fault kind on segment ``a``-``b`` (None when healthy)."""
        key = segment_key(a, b)
        if key in self.stuck_open:
            return "stuck_open"
        if key in self.stuck_closed:
            return "stuck_closed"
        if key in self.blocked:
            return "blocked_segment"
        return None

    def triples(self) -> List[Tuple[str, str, str]]:
        """Canonical sorted ``(a, b, kind)`` list (the JSON form)."""
        out = [(a, b, "stuck_open") for a, b in self.stuck_open]
        out += [(a, b, "stuck_closed") for a, b in self.stuck_closed]
        out += [(a, b, "blocked_segment") for a, b in self.blocked]
        return sorted(out)

    def merge(self, other: "HealthMask") -> "HealthMask":
        """Union of two masks (new faults on an already-degraded chip)."""
        return HealthMask(
            stuck_open=self.stuck_open | other.stuck_open,
            stuck_closed=self.stuck_closed | other.stuck_closed,
            blocked=self.blocked | other.blocked,
        )

    def digest(self) -> str:
        """Canonical sha256 of the fault set.

        Salted into Tier-A store keys (:mod:`repro.store.keys`) so a
        cached healthy-hardware result can never be served for a
        degraded chip — and two differently-degraded chips never share
        an entry.
        """
        canonical = json.dumps(self.triples(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
def apply_health_mask(switch: SwitchModel, mask: HealthMask) -> SwitchModel:
    """A shallow degraded copy of ``switch`` with dead segments removed.

    The copy shares the immutable vertex data (pins, kinds, coords) with
    the original but gets pruned ``segments``/``valves`` tables, a
    pruned graph, a fresh ``structure_key`` (fewer segments → different
    key, so every path-catalog and model cache automatically treats the
    degraded switch as a distinct structure) and ``switch.health`` set
    to the mask.

    Unlike construction-time :meth:`SwitchModel._finalize`, the masked
    copy may be disconnected and may strand pins at degree 0 — use
    :func:`reachability_report` to see what survives.
    """
    if not isinstance(mask, HealthMask):
        raise SwitchModelError(f"expected a HealthMask, got {type(mask).__name__}")
    base_mask = getattr(switch, "health", None)
    if base_mask is not None:
        mask = base_mask.merge(mask)
    unknown = sorted(k for k in mask.dead_segments if k not in _base_segments(switch))
    if unknown:
        raise SwitchModelError(
            f"health mask names segment(s) not in {switch.name!r}: {unknown}"
        )
    if mask.is_empty:
        return switch

    # Re-mask from the pristine structure so masking is idempotent and
    # order-independent: masking twice equals masking with the union.
    source = getattr(switch, "_unmasked", switch)
    dead = mask.dead_segments
    clone = copy.copy(source)
    clone.segments = {k: s for k, s in source.segments.items() if k not in dead}
    clone.valves = {k: v for k, v in source.valves.items() if k not in dead}
    clone.graph = source.graph.copy()
    for a, b in dead:
        if clone.graph.has_edge(a, b):
            clone.graph.remove_edge(a, b)
    clone._structure_key = None
    clone.health = mask
    clone._unmasked = source
    return clone


@dataclass(frozen=True)
class ReachabilityReport:
    """What survives on a (possibly masked) switch structure."""

    #: Pins with no incident segment at all.
    dead_pins: Tuple[str, ...]
    #: Unordered live-pin pairs with no remaining path between them.
    unreachable_pairs: Tuple[Tuple[str, str], ...]

    @property
    def fully_connected(self) -> bool:
        return not self.dead_pins and not self.unreachable_pairs


def reachability_report(switch: SwitchModel) -> ReachabilityReport:
    """Re-validate pin reachability over the current structure."""
    dead = tuple(p for p in switch.pins if switch.graph.degree[p] == 0)
    live = [p for p in switch.pins if switch.graph.degree[p] > 0]
    component_of: Dict[str, int] = {}
    for idx, comp in enumerate(nx.connected_components(switch.graph)):
        for v in comp:
            component_of[v] = idx
    unreachable = tuple(
        (a, b)
        for i, a in enumerate(live) for b in live[i + 1:]
        if component_of[a] != component_of[b]
    )
    return ReachabilityReport(dead_pins=dead, unreachable_pairs=unreachable)


def _base_segments(switch: SwitchModel) -> Dict[SegKey, object]:
    """The pristine segment table (before any masking)."""
    return getattr(switch, "_unmasked", switch).segments


__all__ = [
    "FAULT_KINDS",
    "HealthMask",
    "ReachabilityReport",
    "apply_health_mask",
    "reachability_report",
]

"""Abstract switch model: pins, nodes, segments, valves, as a graph.

Terminology follows the paper (§2.2):

* **pins** — flow channel ends on the switch border, connected to other
  modules (mixers, chambers, inlets, ...);
* **nodes** — intermediate intersections of flow segments inside the
  switch;
* **flow segments** — channel edges between two nodes or between a node
  and a pin;
* **valves** — one per flow segment in the general (unreduced) model;
  an application-specific switch keeps only the essential ones.

Nodes carry a :class:`NodeKind` so constraint builders can reproduce
the paper's node set (only the *major* nodes, e.g. ``{C, T, R, B, L}``
for the 8-pin model) or the stricter set of every intersection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import SwitchModelError
from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY


class NodeKind(enum.Enum):
    """Classification of a switch vertex."""

    PIN = "pin"          # border connection point for a module
    CENTER = "center"    # a crossbar center (C, C1, C2, ...)
    ARM = "arm"          # an arm node between center and border (T, B, L, R)
    CORNER = "corner"    # a corner routing node (TL, TR, BL, BR, TM, ...)
    JUNCTION = "junction"  # a spine junction (baseline switches)


#: Node kinds that count as "major" nodes — the node set the paper uses
#: for its constraints (eq. 3.3 names {C, T, R, B, L} for the 8-pin model).
MAJOR_KINDS = frozenset({NodeKind.CENTER, NodeKind.ARM, NodeKind.JUNCTION})


@dataclass(frozen=True)
class Segment:
    """A flow channel segment between two named vertices.

    The endpoint pair is stored in a canonical (sorted) order so a
    segment compares equal regardless of traversal direction.
    """

    a: str
    b: str
    length: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise SwitchModelError(f"degenerate segment {self.a!r}-{self.b!r}")
        if self.length <= 0:
            raise SwitchModelError(f"segment {self.a}-{self.b} must have positive length")
        if self.a > self.b:
            first, second = self.b, self.a
            object.__setattr__(self, "a", first)
            object.__setattr__(self, "b", second)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, vertex: str) -> str:
        if vertex == self.a:
            return self.b
        if vertex == self.b:
            return self.a
        raise SwitchModelError(f"{vertex!r} is not an endpoint of segment {self.a}-{self.b}")

    def touches(self, vertex: str) -> bool:
        return vertex in (self.a, self.b)

    def __str__(self) -> str:
        return f"{self.a}-{self.b}"


def segment_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical dictionary key for the segment between two vertices."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Valve:
    """A valve sitting on a flow segment.

    ``control_options`` records how many candidate control channels can
    reach the valve in the drawn structure (the paper guarantees at
    least one, often two).
    """

    segment: Tuple[str, str]
    control_options: int = 2

    def __str__(self) -> str:
        return f"valve[{self.segment[0]}-{self.segment[1]}]"


class SwitchModel:
    """A concrete switch structure.

    Subclasses populate pins/nodes/segments in ``__init__`` via
    :meth:`_add_pin`, :meth:`_add_node` and :meth:`_add_segment`, then
    call :meth:`_finalize`.
    """

    #: Order of the switch's rotational symmetry group: rotating the
    #: clockwise pin cycle by ``n_pins / rotation_order`` positions is a
    #: length-preserving graph automorphism. Used for symmetry breaking
    #: in the synthesis model; 1 means "no usable symmetry".
    rotation_order: int = 1

    #: The active :class:`repro.switches.health.HealthMask`, or ``None``
    #: for pristine hardware. Set only on copies made by
    #: :meth:`with_health`; construction always yields healthy switches.
    health = None

    def __init__(self, name: str, rules: DesignRules = STANFORD_FOUNDRY) -> None:
        self.name = name
        self.rules = rules
        self.pins: List[str] = []          # clockwise order, starting top-left
        self.nodes: List[str] = []
        self.kinds: Dict[str, NodeKind] = {}
        self.coords: Dict[str, Point] = {}
        self.segments: Dict[Tuple[str, str], Segment] = {}
        self.valves: Dict[Tuple[str, str], Valve] = {}
        self.graph = nx.Graph()
        self._finalized = False
        self._structure_key: Optional[tuple] = None

    # ------------------------------------------------------------------
    # construction helpers (subclass API)
    # ------------------------------------------------------------------
    def _add_pin(self, name: str, pos: Point) -> None:
        self._check_new(name)
        self.pins.append(name)
        self.kinds[name] = NodeKind.PIN
        self.coords[name] = pos
        self.graph.add_node(name)

    def _add_node(self, name: str, kind: NodeKind, pos: Point) -> None:
        if kind is NodeKind.PIN:
            raise SwitchModelError("use _add_pin for pins")
        self._check_new(name)
        self.nodes.append(name)
        self.kinds[name] = kind
        self.coords[name] = pos
        self.graph.add_node(name)

    def _add_segment(self, a: str, b: str, length: Optional[float] = None,
                     with_valve: bool = True, control_options: int = 2) -> Segment:
        for v in (a, b):
            if v not in self.kinds:
                raise SwitchModelError(f"unknown vertex {v!r} in segment {a}-{b}")
        if length is None:
            length = self.coords[a].manhattan_to(self.coords[b])
        seg = Segment(a, b, length)
        if seg.key in self.segments:
            raise SwitchModelError(f"duplicate segment {a}-{b}")
        self.segments[seg.key] = seg
        self.graph.add_edge(seg.a, seg.b, length=seg.length)
        if with_valve:
            self.valves[seg.key] = Valve(seg.key, control_options)
        return seg

    def _check_new(self, name: str) -> None:
        if name in self.kinds:
            raise SwitchModelError(f"duplicate vertex name {name!r}")

    def _finalize(self) -> None:
        if not nx.is_connected(self.graph):
            raise SwitchModelError(f"switch {self.name!r} flow graph is not connected")
        for pin in self.pins:
            if self.graph.degree[pin] != 1:
                raise SwitchModelError(
                    f"pin {pin!r} must attach to exactly one segment, "
                    f"has degree {self.graph.degree[pin]}"
                )
        self._finalized = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_pins(self) -> int:
        return len(self.pins)

    @property
    def size_label(self) -> str:
        return f"{self.n_pins}-pin"

    def is_pin(self, name: str) -> bool:
        return self.kinds.get(name) is NodeKind.PIN

    def major_nodes(self) -> List[str]:
        """The paper's node set: centers, arms and spine junctions."""
        return [n for n in self.nodes if self.kinds[n] in MAJOR_KINDS]

    def all_nodes(self) -> List[str]:
        """Every internal intersection (strict contamination accounting)."""
        return list(self.nodes)

    def pin_index(self, pin: str) -> int:
        """1-based clockwise index of a pin (as in eq. 3.12)."""
        try:
            return self.pins.index(pin) + 1
        except ValueError:
            raise SwitchModelError(f"{pin!r} is not a pin of {self.name!r}") from None

    def structure_key(self) -> tuple:
        """Hashable signature of the routing structure.

        Two switch instances with equal keys have identical pins (in
        clockwise order) and identical segments with identical lengths,
        so any path enumeration over them yields identical results.
        Case factories build a fresh switch per call; this key lets the
        path-catalog cache in :mod:`repro.switches.paths` recognize the
        repeats. Computed once — switches are immutable after
        ``_finalize``.
        """
        if self._structure_key is None:
            segs = tuple(sorted(
                (k[0], k[1], self.segments[k].length) for k in self.segments))
            self._structure_key = (type(self).__qualname__, tuple(self.pins), segs)
        return self._structure_key

    def with_health(self, mask) -> "SwitchModel":
        """A degraded copy with the mask's dead segments removed.

        See :func:`repro.switches.health.apply_health_mask` (this is a
        convenience forwarder). Masking an already-masked switch merges
        the masks against the pristine structure, so the operation is
        idempotent and order-independent.
        """
        from repro.switches.health import apply_health_mask

        return apply_health_mask(self, mask)

    def segment(self, a: str, b: str) -> Segment:
        try:
            return self.segments[segment_key(a, b)]
        except KeyError:
            raise SwitchModelError(f"no segment {a}-{b} in {self.name!r}") from None

    def segments_at(self, vertex: str) -> List[Segment]:
        """All segments incident to a vertex."""
        return [self.segments[segment_key(vertex, nbr)] for nbr in self.graph.neighbors(vertex)]

    def neighbor_segments(self, seg: Segment,
                          restrict_to: Optional[FrozenSet[Tuple[str, str]]] = None
                          ) -> List[Segment]:
        """Segments sharing an endpoint with ``seg`` (used segments only
        when ``restrict_to`` is given). Used by essential-valve analysis."""
        result = []
        for endpoint in (seg.a, seg.b):
            for other in self.segments_at(endpoint):
                if other.key == seg.key:
                    continue
                if restrict_to is not None and other.key not in restrict_to:
                    continue
                result.append(other)
        return result

    def total_length(self) -> float:
        """Total flow channel length of the full (unreduced) model, mm."""
        return sum(s.length for s in self.segments.values())

    def bounding_box(self) -> Tuple[Point, Point]:
        xs = [p.x for p in self.coords.values()]
        ys = [p.y for p in self.coords.values()]
        return Point(min(xs), min(ys)), Point(max(xs), max(ys))

    def check_design_rules(self) -> List[str]:
        """Best-effort design-rule check: parallel channel spacing.

        Returns human-readable violation strings (empty when clean).
        Only vertex-to-vertex proximity of non-adjacent vertices is
        checked; it is a sanity net for generated layouts, not a full
        DRC.
        """
        violations = []
        names = self.pins + self.nodes
        min_space = self.rules.min_channel_spacing + self.rules.flow_channel_width
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.graph.has_edge(a, b):
                    continue
                if self.coords[a].euclidean_to(self.coords[b]) < min_space - 1e-9:
                    violations.append(
                        f"vertices {a} and {b} closer than flow width + spacing"
                    )
        return violations

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, pins={self.n_pins}, "
            f"nodes={len(self.nodes)}, segments={len(self.segments)})"
        )

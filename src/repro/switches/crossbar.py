"""The paper's reconfigurable crossbar-like switch family.

The thesis provides the switch in three sizes — 8-pin, 12-pin and
16-pin (Figures 2.3 and 2.4). We reconstruct the family parametrically
as an *m-center linear crossbar* (m = 1, 2, 3):

* centers ``C`` / ``C1..Cm`` on a horizontal axis, adjacent centers
  connected (the ``C1-C2`` segment referenced in the ChIP discussion);
* one top and one bottom *arm* node per center, plus ``L`` / ``R`` arm
  nodes at the ends;
* *corner* nodes on the border (``TL``, ``TM…``, ``TR``, ``BL``,
  ``BM…``, ``BR``) linking adjacent arms;
* two pins per corner, ``4m + 4`` pins total.

This reproduces every structural fact the text states for the 8-pin
model: pins ``{T1,T2,R1,R2,B2,B1,L2,L1}``, major nodes
``{C,T,R,B,L}``, exactly 20 flow segments (``11m + 9``), and the named
segments ``T1-TL``, ``TL-T`` and ``TR-R``.

One valve sits on every flow segment of the general model; synthesis
reduces the switch to the application-specific subset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SwitchModelError
from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY
from repro.switches.base import NodeKind, SwitchModel

#: Grid pitch between a center and its arm nodes, in millimetres.
ARM_PITCH = 1.0
#: Horizontal pitch between adjacent centers, in millimetres.
CENTER_PITCH = 2.0
#: Length of a pin stub that leaves a corner straight, in millimetres.
PIN_STUB = 0.7
#: Lateral offset of the twin pins on a middle (TM/BM) corner, mm.
MID_PIN_OFFSET = 0.3

#: Supported switch sizes → number of crossbar centers. The thesis
#: ships 8/12/16-pin (m = 1, 2, 3); the 24- and 32-pin entries scale
#: the same parametric family past the paper's ceiling (m = 5, 7) for
#: large valve-array workloads.
SIZES: Dict[int, int] = {8: 1, 12: 2, 16: 3, 24: 5, 32: 7}


class CrossbarSwitch(SwitchModel):
    """The proposed reconfigurable switch, 8- through 32-pin."""

    def __init__(self, n_pins: int = 8, rules: DesignRules = STANFORD_FOUNDRY,
                 _centers: Optional[int] = None) -> None:
        if _centers is not None:
            if _centers < 1:
                raise SwitchModelError("a crossbar needs at least one center")
            n_pins = 4 * _centers + 4
        elif n_pins not in SIZES:
            raise SwitchModelError(
                f"unsupported switch size {n_pins}-pin; choose one of {sorted(SIZES)}"
            )
        super().__init__(f"crossbar-{n_pins}pin", rules)
        self.m = _centers if _centers is not None else SIZES[n_pins]
        # The 8-pin switch is 4-fold rotationally symmetric; the wider
        # models only survive a 180° rotation.
        self.rotation_order = 4 if self.m == 1 else 2
        self._build(self.m)
        self._finalize()

    @classmethod
    def with_centers(cls, m: int,
                     rules: DesignRules = STANFORD_FOUNDRY) -> "CrossbarSwitch":
        """Extension beyond the paper: a crossbar with ``m`` centers.

        The thesis ships 8/12/16-pin models (m = 1, 2, 3) and names more
        flexible structures as future work; the parametric family
        extends naturally — ``with_centers(m)`` yields a ``4m + 4``-pin
        switch with ``11m + 9`` segments.
        """
        return cls(_centers=m, rules=rules)

    # ------------------------------------------------------------------
    def _build(self, m: int) -> None:
        # Internal nodes -------------------------------------------------
        centers = ["C"] if m == 1 else [f"C{i + 1}" for i in range(m)]
        top_arms = ["T"] if m == 1 else [f"T{chr(ord('a') + i)}" for i in range(m)]
        bot_arms = ["B"] if m == 1 else [f"B{chr(ord('a') + i)}" for i in range(m)]
        self.centers = centers
        self.top_arms = top_arms
        self.bottom_arms = bot_arms

        for i, c in enumerate(centers):
            self._add_node(c, NodeKind.CENTER, Point(CENTER_PITCH * i, 0.0))
            self._add_node(top_arms[i], NodeKind.ARM, Point(CENTER_PITCH * i, ARM_PITCH))
            self._add_node(bot_arms[i], NodeKind.ARM, Point(CENTER_PITCH * i, -ARM_PITCH))
        x_right = CENTER_PITCH * (m - 1) + ARM_PITCH
        self._add_node("L", NodeKind.ARM, Point(-ARM_PITCH, 0.0))
        self._add_node("R", NodeKind.ARM, Point(x_right, 0.0))

        top_mids = (
            [] if m == 1 else (["TM"] if m == 2 else [f"TM{i + 1}" for i in range(m - 1)])
        )
        bot_mids = (
            [] if m == 1 else (["BM"] if m == 2 else [f"BM{i + 1}" for i in range(m - 1)])
        )
        self._add_node("TL", NodeKind.CORNER, Point(-ARM_PITCH, ARM_PITCH))
        self._add_node("TR", NodeKind.CORNER, Point(x_right, ARM_PITCH))
        self._add_node("BL", NodeKind.CORNER, Point(-ARM_PITCH, -ARM_PITCH))
        self._add_node("BR", NodeKind.CORNER, Point(x_right, -ARM_PITCH))
        for i, name in enumerate(top_mids):
            self._add_node(name, NodeKind.CORNER, Point(CENTER_PITCH * i + ARM_PITCH, ARM_PITCH))
        for i, name in enumerate(bot_mids):
            self._add_node(name, NodeKind.CORNER, Point(CENTER_PITCH * i + ARM_PITCH, -ARM_PITCH))

        # Pins (registered in clockwise order from the top-left) ----------
        n_top = 2 * m  # pins on the top border (same on the bottom)
        top_pins = [f"T{i + 1}" for i in range(n_top)]
        bot_pins = [f"B{i + 1}" for i in range(n_top)]
        y_pin = ARM_PITCH + PIN_STUB

        pin_pos: Dict[str, Point] = {}
        pin_corner: Dict[str, str] = {}

        pin_pos[top_pins[0]] = Point(-ARM_PITCH, y_pin)
        pin_corner[top_pins[0]] = "TL"
        for i, mid in enumerate(top_mids):
            xmid = CENTER_PITCH * i + ARM_PITCH
            pin_pos[top_pins[2 * i + 1]] = Point(xmid - MID_PIN_OFFSET, y_pin)
            pin_corner[top_pins[2 * i + 1]] = mid
            pin_pos[top_pins[2 * i + 2]] = Point(xmid + MID_PIN_OFFSET, y_pin)
            pin_corner[top_pins[2 * i + 2]] = mid
        pin_pos[top_pins[-1]] = Point(x_right, y_pin)
        pin_corner[top_pins[-1]] = "TR"

        pin_pos[bot_pins[0]] = Point(-ARM_PITCH, -y_pin)
        pin_corner[bot_pins[0]] = "BL"
        for i, mid in enumerate(bot_mids):
            xmid = CENTER_PITCH * i + ARM_PITCH
            pin_pos[bot_pins[2 * i + 1]] = Point(xmid - MID_PIN_OFFSET, -y_pin)
            pin_corner[bot_pins[2 * i + 1]] = mid
            pin_pos[bot_pins[2 * i + 2]] = Point(xmid + MID_PIN_OFFSET, -y_pin)
            pin_corner[bot_pins[2 * i + 2]] = mid
        pin_pos[bot_pins[-1]] = Point(x_right, -y_pin)
        pin_corner[bot_pins[-1]] = "BR"

        side = {
            "R1": ("TR", Point(x_right + PIN_STUB, ARM_PITCH)),
            "R2": ("BR", Point(x_right + PIN_STUB, -ARM_PITCH)),
            "L1": ("TL", Point(-ARM_PITCH - PIN_STUB, ARM_PITCH)),
            "L2": ("BL", Point(-ARM_PITCH - PIN_STUB, -ARM_PITCH)),
        }
        for pin, (corner, pos) in side.items():
            pin_pos[pin] = pos
            pin_corner[pin] = corner

        clockwise = (
            top_pins + ["R1", "R2"] + list(reversed(bot_pins)) + ["L2", "L1"]
        )
        for pin in clockwise:
            self._add_pin(pin, pin_pos[pin])
        self.pin_corner = pin_corner

        # Segments --------------------------------------------------------
        for pin in clockwise:
            self._add_segment(pin, pin_corner[pin])
        # corner-to-arm links
        self._add_segment("TL", "L")
        self._add_segment("TL", top_arms[0])
        self._add_segment("TR", top_arms[-1])
        self._add_segment("TR", "R")
        self._add_segment("BL", "L")
        self._add_segment("BL", bot_arms[0])
        self._add_segment("BR", bot_arms[-1])
        self._add_segment("BR", "R")
        for i, mid in enumerate(top_mids):
            self._add_segment(mid, top_arms[i])
            self._add_segment(mid, top_arms[i + 1])
        for i, mid in enumerate(bot_mids):
            self._add_segment(mid, bot_arms[i])
            self._add_segment(mid, bot_arms[i + 1])
        # arm-to-center spokes and the central spine
        for i, c in enumerate(centers):
            self._add_segment(top_arms[i], c)
            self._add_segment(bot_arms[i], c)
        self._add_segment("L", centers[0])
        self._add_segment(centers[-1], "R")
        for i in range(m - 1):
            self._add_segment(centers[i], centers[i + 1])


def make_switch(n_pins: int, rules: DesignRules = STANFORD_FOUNDRY) -> CrossbarSwitch:
    """Convenience constructor for the proposed switch family."""
    return CrossbarSwitch(n_pins, rules)


def smallest_switch_for(n_modules: int) -> CrossbarSwitch:
    """The smallest proposed switch with at least ``n_modules`` pins."""
    for size in sorted(SIZES):
        if size >= n_modules:
            return CrossbarSwitch(size)
    raise SwitchModelError(
        f"no switch model supports {n_modules} connected modules "
        f"(max {max(SIZES)})"
    )

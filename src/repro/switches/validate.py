"""Structural validation for switch models.

Anyone extending the library with a new topology (see
docs/architecture.md) subclasses :class:`~repro.switches.base.SwitchModel`;
this validator checks everything the synthesis pipeline silently
assumes, and returns human-readable findings instead of failing deep
inside a constraint builder.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.switches.base import SwitchModel


def validate_switch(switch: SwitchModel) -> List[str]:
    """Return every structural problem found (empty = good to use)."""
    problems: List[str] = []

    if not switch.pins:
        problems.append("switch has no pins")
    if len(set(switch.pins)) != len(switch.pins):
        problems.append("duplicate pin names")
    overlap = set(switch.pins) & set(switch.nodes)
    if overlap:
        problems.append(f"names used both as pin and node: {sorted(overlap)}")

    for pin in switch.pins:
        if pin not in switch.graph:
            problems.append(f"pin {pin!r} missing from the flow graph")
            continue
        degree = switch.graph.degree[pin]
        if degree != 1:
            problems.append(
                f"pin {pin!r} must attach to exactly one segment (degree {degree})"
            )
    for node in switch.nodes:
        if node not in switch.graph:
            problems.append(f"node {node!r} missing from the flow graph")
        elif switch.graph.degree[node] < 2:
            problems.append(
                f"node {node!r} has degree {switch.graph.degree[node]}; "
                "an intersection needs at least two segments"
            )

    if switch.graph.number_of_nodes() and not nx.is_connected(switch.graph):
        problems.append("flow graph is not connected")

    for key, seg in switch.segments.items():
        if seg.length <= 0:
            problems.append(f"segment {key} has non-positive length")
        for end in key:
            if end not in switch.coords:
                problems.append(f"segment {key} endpoint {end!r} has no coordinates")
    for key in switch.valves:
        if key not in switch.segments:
            problems.append(f"valve on unknown segment {key}")

    # pins must be routable to each other
    if switch.pins and nx.is_connected(switch.graph):
        first = switch.pins[0]
        for pin in switch.pins[1:]:
            if not nx.has_path(switch.graph, first, pin):
                problems.append(f"no route between pins {first!r} and {pin!r}")

    # rotation_order must divide the pin count (the symmetry-breaking
    # constraint partitions the pin cycle into equal arcs)
    if switch.rotation_order > 1 and switch.n_pins % switch.rotation_order:
        problems.append(
            f"rotation_order {switch.rotation_order} does not divide "
            f"{switch.n_pins} pins"
        )

    problems.extend(switch.check_design_rules())
    return problems


def assert_valid_switch(switch: SwitchModel) -> None:
    """Raise with a full report if the structure is unusable."""
    problems = validate_switch(switch)
    if problems:
        from repro.errors import SwitchModelError

        raise SwitchModelError(
            f"switch {switch.name!r} failed validation:\n  "
            + "\n  ".join(problems)
        )

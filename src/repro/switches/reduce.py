"""Application-specific switch reduction (§2.2).

After synthesis, "the unused channel segments and valves will be
removed to generate an application-specific switch". The reduction
keeps exactly the segments traversed by at least one flow path and the
valves the essential-valve analysis marks as required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.errors import SwitchModelError
from repro.switches.base import Segment, SwitchModel, segment_key


@dataclass
class ReducedSwitch:
    """An application-specific switch derived from a general model.

    The reduced switch is a *view* over the parent model: it records
    which segments, valves, pins and nodes survive, and exposes the
    metrics the paper reports (total flow-channel length ``L`` and
    valve count ``#v``).
    """

    parent: SwitchModel
    used_segments: FrozenSet[Tuple[str, str]]
    essential_valves: FrozenSet[Tuple[str, str]]

    def __post_init__(self) -> None:
        for key in self.used_segments:
            if key not in self.parent.segments:
                raise SwitchModelError(f"unknown segment {key} in reduction")
        for key in self.essential_valves:
            if key not in self.used_segments:
                raise SwitchModelError(
                    f"essential valve on removed segment {key}: reduction is inconsistent"
                )

    # -- surviving structure --------------------------------------------
    @property
    def segments(self) -> List[Segment]:
        return [self.parent.segments[k] for k in sorted(self.used_segments)]

    @property
    def used_vertices(self) -> Set[str]:
        verts: Set[str] = set()
        for a, b in self.used_segments:
            verts.add(a)
            verts.add(b)
        return verts

    @property
    def used_pins(self) -> List[str]:
        verts = self.used_vertices
        return [p for p in self.parent.pins if p in verts]

    @property
    def used_nodes(self) -> List[str]:
        verts = self.used_vertices
        return [n for n in self.parent.nodes if n in verts]

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        for a, b in self.used_segments:
            g.add_edge(a, b, length=self.parent.segments[(a, b)].length)
        return g

    # -- reported metrics --------------------------------------------------
    @property
    def flow_channel_length(self) -> float:
        """Total length L of the surviving flow channels, mm."""
        return sum(self.parent.segments[k].length for k in self.used_segments)

    @property
    def num_valves(self) -> int:
        """#v — essential valves kept in the application-specific switch."""
        return len(self.essential_valves)

    @property
    def removed_segments(self) -> List[Tuple[str, str]]:
        return [k for k in sorted(self.parent.segments) if k not in self.used_segments]

    @property
    def removed_valves(self) -> List[Tuple[str, str]]:
        """Valves dropped either with their segment or as unnecessary."""
        return [k for k in sorted(self.parent.valves) if k not in self.essential_valves]

    def is_connected(self) -> bool:
        """Whether the surviving flow network is a single component."""
        g = self.graph()
        return g.number_of_nodes() > 0 and nx.is_connected(g)

    def __repr__(self) -> str:
        return (
            f"ReducedSwitch(of={self.parent.name!r}, segments={len(self.used_segments)}, "
            f"valves={self.num_valves}, L={self.flow_channel_length:.1f}mm)"
        )


def reduce_switch(
    parent: SwitchModel,
    used_segments: Set[Tuple[str, str]],
    essential_valves: Set[Tuple[str, str]],
) -> ReducedSwitch:
    """Build the application-specific switch from synthesis outputs."""
    return ReducedSwitch(
        parent=parent,
        used_segments=frozenset(segment_key(a, b) for a, b in used_segments),
        essential_valves=frozenset(segment_key(a, b) for a, b in essential_valves),
    )

"""Scalable switch variants compatible with Columba S.

Columba S modifies module models so flow channels access a module
*horizontally* and control channels access it *vertically* (its
figures 2.5/2.6 draw the proposed switch in that style). The flow-layer
*topology* is identical to :class:`repro.switches.crossbar.CrossbarSwitch`;
what changes is the physical escape of the pins: every pin leaves the
switch to the east or the west border on its own horizontal lane, so a
synthesis tool can abut modules left and right of the switch and run
control lines vertically over it.

We therefore derive the scalable variant from the crossbar by
re-routing each pin stub to a border lane; segment lengths are the
Manhattan lengths of the re-routed stubs, so the synthesized channel
lengths reflect the scalable layout.
"""

from __future__ import annotations

from typing import Dict

from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY
from repro.switches.base import segment_key
from repro.switches.crossbar import ARM_PITCH, CENTER_PITCH, PIN_STUB, CrossbarSwitch

#: Vertical distance between adjacent horizontal pin lanes (mm).
#: Must exceed flow channel width + minimum spacing (0.2 mm).
LANE_PITCH = 0.35


class ScalableCrossbarSwitch(CrossbarSwitch):
    """Crossbar switch drawn for Columba-S-style horizontal flow access.

    Pins whose corner sits in the left half of the switch escape to the
    west border, the rest to the east border; each escaping pin gets a
    dedicated horizontal lane so the layout is design-rule clean.
    """

    #: Control channels run vertically in this layout (metadata for
    #: downstream co-layout tools).
    control_orientation = "vertical"

    def __init__(self, n_pins: int = 8, rules: DesignRules = STANFORD_FOUNDRY) -> None:
        super().__init__(n_pins, rules)
        self.name = f"scalable-crossbar-{n_pins}pin"
        # Per-pin escape lanes have distinct lengths, so rotations are
        # no longer automorphisms of the weighted flow graph.
        self.rotation_order = 1
        self._reroute_pins()

    def _reroute_pins(self) -> None:
        mid_x = (CENTER_PITCH * (self.m - 1)) / 2.0
        x_west = -ARM_PITCH - PIN_STUB
        x_east = CENTER_PITCH * (self.m - 1) + ARM_PITCH + PIN_STUB

        west = [p for p in self.pins if self.coords[self.pin_corner[p]].x <= mid_x]
        east = [p for p in self.pins if p not in west]

        lanes: Dict[str, float] = {}
        for group in (west, east):
            # Sort by the corner's vertical position so lanes don't cross.
            group.sort(key=lambda p: (-self.coords[self.pin_corner[p]].y,
                                      self.coords[p].x))
            top = (len(group) - 1) / 2.0
            for rank, pin in enumerate(group):
                lanes[pin] = (top - rank) * LANE_PITCH + self._side_anchor_y(pin)

        for pin in self.pins:
            corner = self.pin_corner[pin]
            border_x = x_west if pin in west else x_east
            new_pos = Point(border_x, lanes[pin])
            self.coords[pin] = new_pos
            # Manhattan re-route: corner → lane y, then horizontal escape.
            length = self.coords[corner].manhattan_to(new_pos)
            key = segment_key(pin, corner)
            old = self.segments[key]
            self.segments[key] = type(old)(old.a, old.b, length)
            self.graph.edges[old.a, old.b]["length"] = length

    def _side_anchor_y(self, pin: str) -> float:
        """Nominal lane centre: pins fan out around their corner row."""
        return self.coords[self.pin_corner[pin]].y * 0.5


def make_scalable_switch(n_pins: int,
                         rules: DesignRules = STANFORD_FOUNDRY) -> ScalableCrossbarSwitch:
    """Convenience constructor for the Columba-S-compatible variant."""
    return ScalableCrossbarSwitch(n_pins, rules)

"""Columba-style spine switch (the baseline of Figures 2.1, 4.1d, 4.2c/d).

Columba's module library designs the switch as a horizontal *spine*
with junctions: every pin hangs off the spine, and valves sit only at
the pin stubs ("there are no valves except at the ends along the
spine"). Consequently every flow traverses the shared spine, which is
exactly the contamination weakness the paper attacks; we rebuild the
structure so the comparison experiments can measure that weakness.
"""

from __future__ import annotations

from typing import List

from repro.errors import SwitchModelError
from repro.geometry import DesignRules, Point, STANFORD_FOUNDRY
from repro.switches.base import NodeKind, SwitchModel

#: Horizontal pitch between adjacent spine junctions (mm).
JUNCTION_PITCH = 1.0
#: Length of a pin stub hanging off the spine (mm).
STUB = 0.7


class SpineSwitch(SwitchModel):
    """A spine-with-junctions switch with ``n_pins`` pins.

    Junctions are placed on a horizontal spine; pins alternate above and
    below it, plus one pin at each spine end. Only pin stubs carry
    valves — the spine itself is valve-free, as in Columba.
    """

    def __init__(self, n_pins: int = 8, rules: DesignRules = STANFORD_FOUNDRY) -> None:
        if n_pins < 3:
            raise SwitchModelError("a spine switch needs at least 3 pins")
        super().__init__(f"spine-{n_pins}pin", rules)
        self._build(n_pins)
        self._finalize()

    def _build(self, n_pins: int) -> None:
        hanging = n_pins - 2  # pins not at the spine ends
        n_junctions = (hanging + 1) // 2
        junctions: List[str] = []
        for j in range(n_junctions):
            name = f"J{j + 1}"
            junctions.append(name)
            self._add_node(name, NodeKind.JUNCTION, Point(JUNCTION_PITCH * (j + 1), 0.0))
        self.junctions = junctions

        # End pins close the spine left and right; they carry valves.
        right_x = JUNCTION_PITCH * n_junctions + STUB
        self._add_pin("P_L", Point(JUNCTION_PITCH - STUB, 0.0))

        top_pins, bottom_pins = [], []
        for idx in range(hanging):
            j = junctions[idx // 2]
            jx = self.coords[j].x
            if idx % 2 == 0:
                name = f"P_T{idx // 2 + 1}"
                top_pins.append(name)
                self._add_pin(name, Point(jx, STUB))
            else:
                name = f"P_B{idx // 2 + 1}"
                bottom_pins.append(name)
                self._add_pin(name, Point(jx, -STUB))
        self._add_pin("P_R", Point(right_x, 0.0))
        # Re-order the pin list clockwise: top pins left→right, right end,
        # bottom pins right→left, left end.
        self.pins = top_pins + ["P_R"] + list(reversed(bottom_pins)) + ["P_L"]

        # Segments: valved pin stubs, valve-free spine.
        self._add_segment("P_L", junctions[0], with_valve=True)
        self._add_segment("P_R", junctions[-1], with_valve=True)
        for name in top_pins + bottom_pins:
            j = junctions[(int(name.split("T")[-1].split("B")[-1]) - 1)]
            self._add_segment(name, j, with_valve=True)
        for a, b in zip(junctions, junctions[1:]):
            self._add_segment(a, b, with_valve=False)

    def spine_segments(self) -> List:
        """The valve-free segments forming the shared spine."""
        return [s for k, s in self.segments.items() if k not in self.valves]

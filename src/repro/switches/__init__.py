"""Switch structure library: the proposed crossbar family and baselines."""

from repro.switches.base import (
    MAJOR_KINDS,
    NodeKind,
    Segment,
    SwitchModel,
    Valve,
    segment_key,
)
from repro.switches.crossbar import CrossbarSwitch, make_switch, smallest_switch_for
from repro.switches.fpva import FPVAGrid, make_fpva
from repro.switches.gru import GRUSwitch
from repro.switches.health import (
    HealthMask,
    ReachabilityReport,
    apply_health_mask,
    reachability_report,
)
from repro.switches.paths import (
    Path,
    PathCatalog,
    clear_path_cache,
    enumerate_paths,
    path_cache_info,
    path_from_vertices,
)
from repro.switches.reduce import ReducedSwitch, reduce_switch
from repro.switches.scalable import ScalableCrossbarSwitch, make_scalable_switch
from repro.switches.spine import SpineSwitch
from repro.switches.validate import assert_valid_switch, validate_switch

__all__ = [
    "SwitchModel",
    "NodeKind",
    "MAJOR_KINDS",
    "Segment",
    "Valve",
    "segment_key",
    "CrossbarSwitch",
    "make_switch",
    "smallest_switch_for",
    "FPVAGrid",
    "make_fpva",
    "HealthMask",
    "ReachabilityReport",
    "apply_health_mask",
    "reachability_report",
    "ScalableCrossbarSwitch",
    "make_scalable_switch",
    "SpineSwitch",
    "GRUSwitch",
    "Path",
    "PathCatalog",
    "clear_path_cache",
    "enumerate_paths",
    "path_cache_info",
    "path_from_vertices",
    "ReducedSwitch",
    "reduce_switch",
    "validate_switch",
    "assert_valid_switch",
]

"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish modeling mistakes from solver outcomes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """An optimization model was constructed or used incorrectly.

    Examples: adding a variable twice, constraining a variable that
    belongs to a different model, or requesting the value of an
    expression before the model was solved.
    """


class LinearizationError(ModelError):
    """A quadratic term could not be linearized exactly.

    Products are linearized exactly only when at least one factor is
    binary (or both factors are bounded integers); anything else is
    rejected rather than approximated.
    """


class SolverError(ReproError):
    """A solver backend failed unexpectedly (not mere infeasibility)."""


class InfeasibleError(SolverError):
    """Raised by convenience APIs when a model is proven infeasible."""


class SolveTimeoutError(ReproError):
    """An exact solve hit its wall-clock budget without a conclusive answer.

    Distinct from :class:`SolverError` — a timeout is an expected
    outcome under a deadline, not a malfunction. Callers that can
    degrade (e.g. the pressure-sharing phase falling back to the greedy
    clique cover) catch this and substitute a validated approximation.
    """


class InjectedFaultError(SolverError):
    """A deliberately injected backend crash (see :mod:`repro.testing`).

    The fault-injection harness raises this subclass so tests (and the
    degradation ladder) can tell a rehearsed failure from a real one.
    """


class ServiceError(ReproError):
    """The synthesis job service was used or behaved incorrectly."""


class AdmissionError(ServiceError):
    """A job was shed: the service queue is full or no longer accepting.

    Raised at submit time so the *caller* decides whether to back off
    and retry — the service never silently drops an accepted job.
    """


class JournalError(ServiceError):
    """The write-ahead journal is unreadable or internally inconsistent.

    A truncated *final* line (the signature of a crash mid-append) is
    tolerated during replay and never raises; this error means the
    journal is damaged in a way replay cannot safely interpret.
    """


class RepairError(ReproError):
    """A degraded-hardware repair could not even be attempted (the
    prior result is unusable, or the fault set is malformed). A repair
    that *runs* but finds no routing reports through its result's
    status, not through this exception."""


class SwitchModelError(ReproError):
    """A switch structure was specified or queried incorrectly."""


class SpecError(ReproError):
    """A synthesis input specification is inconsistent.

    Examples: a flow referencing an unknown module, a fixed binding
    that names a pin not present on the selected switch model, or more
    connected modules than the switch has pins.
    """


class VerificationError(ReproError):
    """An independently-checked solution invariant was violated.

    The verifier in :mod:`repro.core.verify` re-checks every claim the
    synthesizer makes (contamination freedom, schedule validity,
    binding validity); any violation raises this error.
    """

"""Valve fault models for simulation-based robustness analysis.

The essential-valve analysis claims that removed ("unnecessary") valves
are never needed, while the kept ones are load-bearing. Fault injection
makes that claim falsifiable: a valve stuck open where the schedule
demands *closed* should produce misroutes or contamination, while a
fault on an unnecessary valve's segment should change nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.switches.base import segment_key


class FaultKind(enum.Enum):
    STUCK_OPEN = "stuck_open"
    STUCK_CLOSED = "stuck_closed"


@dataclass(frozen=True)
class ValveFault:
    """A persistent valve failure on one segment."""

    segment: Tuple[str, str]
    kind: FaultKind

    def __post_init__(self) -> None:
        object.__setattr__(self, "segment", segment_key(*self.segment))

    def applies_to(self, segment: Tuple[str, str]) -> bool:
        return segment_key(*segment) == self.segment


def stuck_open(a: str, b: str) -> ValveFault:
    """The valve on segment a-b can no longer close."""
    return ValveFault((a, b), FaultKind.STUCK_OPEN)


def stuck_closed(a: str, b: str) -> ValveFault:
    """The valve on segment a-b can no longer open."""
    return ValveFault((a, b), FaultKind.STUCK_CLOSED)

"""Valve fault models for simulation-based robustness analysis.

The essential-valve analysis claims that removed ("unnecessary") valves
are never needed, while the kept ones are load-bearing. Fault injection
makes that claim falsifiable: a valve stuck open where the schedule
demands *closed* should produce misroutes or contamination, while a
fault on an unnecessary valve's segment should change nothing.

Faults also drive the self-healing loop (:mod:`repro.repair`): a fault
with a non-zero ``onset`` strikes mid-campaign — the tick engine
applies it only from that flow-set step onward, so the execution trace
shows a healthy prefix followed by the failure the repair pipeline must
route around.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ReproError
from repro.switches.base import segment_key


class FaultKind(enum.Enum):
    #: The valve can no longer close: the segment leaks every step.
    STUCK_OPEN = "stuck_open"
    #: The valve can no longer open: the segment never carries flow.
    STUCK_CLOSED = "stuck_closed"
    #: The channel itself is obstructed (debris, collapse): no flow,
    #: regardless of any valve on it.
    BLOCKED_SEGMENT = "blocked_segment"


@dataclass(frozen=True)
class ValveFault:
    """A persistent valve/segment failure, active from step ``onset``.

    The endpoint pair is normalized to the canonical
    :func:`~repro.switches.base.segment_key` order at construction, so
    ``ValveFault(("b", "a"), k)`` and ``ValveFault(("a", "b"), k)``
    compare equal and match the same segment.
    """

    segment: Tuple[str, str]
    kind: FaultKind
    #: First flow-set step the fault is active in (0 = from the start).
    onset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "segment", segment_key(*self.segment))
        if self.onset < 0:
            raise ReproError(f"fault onset must be >= 0, got {self.onset}")

    def applies_to(self, segment: Tuple[str, str]) -> bool:
        """Symmetric endpoint match: (a, b) and (b, a) are the same."""
        return segment_key(*segment) == self.segment

    def active_at(self, step: int) -> bool:
        return step >= self.onset


def stuck_open(a: str, b: str, onset: int = 0) -> ValveFault:
    """The valve on segment a-b can no longer close."""
    return ValveFault((a, b), FaultKind.STUCK_OPEN, onset)


def stuck_closed(a: str, b: str, onset: int = 0) -> ValveFault:
    """The valve on segment a-b can no longer open."""
    return ValveFault((a, b), FaultKind.STUCK_CLOSED, onset)


def blocked_segment(a: str, b: str, onset: int = 0) -> ValveFault:
    """The channel a-b is physically obstructed."""
    return ValveFault((a, b), FaultKind.BLOCKED_SEGMENT, onset)

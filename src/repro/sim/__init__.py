"""Dynamic execution simulation of synthesized switches."""

from repro.sim.engine import (
    SimulationReport,
    SwitchSimulator,
    fluid_conflicts_of,
    simulate,
    simulate_program,
)
from repro.sim.events import EventKind, SimEvent
from repro.sim.faults import (
    FaultKind,
    ValveFault,
    blocked_segment,
    stuck_closed,
    stuck_open,
)
from repro.sim.timing import (
    ExecutionTimeEstimate,
    TimingModel,
    estimate_execution_time,
)

__all__ = [
    "TimingModel",
    "ExecutionTimeEstimate",
    "estimate_execution_time",
    "simulate",
    "simulate_program",
    "SwitchSimulator",
    "SimulationReport",
    "fluid_conflicts_of",
    "SimEvent",
    "EventKind",
    "ValveFault",
    "FaultKind",
    "stuck_open",
    "stuck_closed",
    "blocked_segment",
]

"""Event types emitted by the switch execution simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class EventKind(enum.Enum):
    """What happened during simulated execution."""

    VALVE_SET = "valve_set"              # a valve actuated for a flow set
    FLUID_FILL = "fluid_fill"            # a fluid filled a channel site
    DELIVERY = "delivery"                # a flow's fluid reached its outlet
    MISROUTE = "misroute"                # fluid reached a foreign pin
    COLLISION = "collision"              # two fluids met in the same step
    CONTAMINATION = "contamination"      # fluid met a conflicting residue
    UNDELIVERED = "undelivered"          # a scheduled flow never arrived


@dataclass(frozen=True)
class SimEvent:
    """One simulator observation.

    ``site`` is a vertex name or a segment key depending on the event;
    ``fluid`` names the fluid (= inlet module) involved; ``other`` the
    second fluid for contamination events; ``flow_id`` ties delivery
    and undelivered events to a flow; ``step`` is the flow-set index.
    """

    kind: EventKind
    step: int
    site: object = None
    fluid: Optional[str] = None
    other: Optional[str] = None
    flow_id: Optional[int] = None

    def __str__(self) -> str:
        parts = [f"[set {self.step}] {self.kind.value}"]
        if self.site is not None:
            parts.append(f"at {self.site}")
        if self.fluid:
            parts.append(f"fluid={self.fluid}")
        if self.other:
            parts.append(f"vs {self.other}")
        if self.flow_id is not None:
            parts.append(f"flow={self.flow_id}")
        return " ".join(parts)

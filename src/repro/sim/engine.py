"""Execution simulator for synthesized (or baseline) switches.

The simulator executes a flow schedule the way the physical chip would:

1. per flow set, every valve takes its scheduled state (open / closed;
   *don't care* defaults to closed), faults override;
2. each inlet's fluid **flood-fills** every channel reachable through
   open segments from its pin — pressure-driven flow does not follow a
   path, it fills whatever is open, which is exactly why leak valves
   and scheduling matter;
3. residues persist across sets; a fluid meeting a conflicting residue
   is a contamination event, two fluids meeting in the same set is a
   collision, fluid arriving at a foreign pin is a misroute;
4. every flow of the set must see its fluid reach its outlet pin.

A synthesis result that passes the optimizer and the static verifier
must also execute cleanly here — the simulator is a third, dynamic
line of defence, and the fault-injection hook makes the essential-valve
claim falsifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.solution import SynthesisResult
from repro.core.spec import SwitchSpec
from repro.core.valves import CLOSED, OPEN
from repro.errors import ReproError
from repro.sim.events import EventKind, SimEvent
from repro.sim.faults import FaultKind, ValveFault
from repro.switches.base import SwitchModel, segment_key
from repro.switches.paths import Path

SegKey = Tuple[str, str]


@dataclass
class SimulationReport:
    """Everything observed while executing the schedule."""

    events: List[SimEvent] = field(default_factory=list)
    delivered: Set[int] = field(default_factory=set)
    undelivered: Set[int] = field(default_factory=set)

    def of_kind(self, kind: EventKind) -> List[SimEvent]:
        return [e for e in self.events if e.kind is kind]

    @property
    def contamination_events(self) -> List[SimEvent]:
        return self.of_kind(EventKind.CONTAMINATION)

    @property
    def misroutes(self) -> List[SimEvent]:
        return self.of_kind(EventKind.MISROUTE)

    @property
    def collisions(self) -> List[SimEvent]:
        return self.of_kind(EventKind.COLLISION)

    @property
    def is_clean(self) -> bool:
        """All flows delivered; no contamination, collision or misroute."""
        return (not self.undelivered and not self.contamination_events
                and not self.misroutes and not self.collisions)

    def summary(self) -> str:
        return (
            f"delivered {len(self.delivered)} flow(s), "
            f"{len(self.undelivered)} undelivered, "
            f"{len(self.contamination_events)} contamination, "
            f"{len(self.collisions)} collision(s), "
            f"{len(self.misroutes)} misroute(s)"
        )


class SwitchSimulator:
    """Flood-fill executor over a (reduced) switch structure."""

    def __init__(
        self,
        switch: SwitchModel,
        used_segments: Iterable[SegKey],
        valve_status: Dict[SegKey, List[str]],
        flow_paths: Dict[int, Path],
        flow_sets: List[List[int]],
        sources: Dict[int, str],          # flow id -> fluid (inlet module)
        binding: Dict[str, str],          # module -> pin
        fluid_conflicts: Set[FrozenSet[str]],
        faults: Sequence[ValveFault] = (),
        dont_care_open: bool = False,
    ) -> None:
        self.switch = switch
        self.used_segments = {segment_key(*k) for k in used_segments}
        self.valve_status = {segment_key(*k): v for k, v in valve_status.items()}
        self.flow_paths = flow_paths
        self.flow_sets = flow_sets
        self.sources = sources
        self.binding = binding
        self.fluid_conflicts = fluid_conflicts
        self.faults = list(faults)
        self.dont_care_open = dont_care_open

        for key in self.valve_status:
            if key not in self.used_segments:
                raise ReproError(f"valve status for unused segment {key}")
        self._pin_of_module = dict(binding)
        self._module_of_pin = {p: m for m, p in binding.items()}

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        report = SimulationReport()
        residue: Dict[object, Set[str]] = {}

        for step, group in enumerate(self.flow_sets):
            open_segments = self._valve_states(step, report)
            adjacency = self._adjacency(open_segments)

            fills: Dict[object, Set[str]] = {}
            for inlet in sorted({self.sources[fid] for fid in group}):
                fluid = inlet
                start_pin = self._pin_of_module[inlet]
                visited_v, visited_e = self._flood(start_pin, adjacency)
                self._record_fill(report, step, fluid, visited_v, visited_e,
                                  fills, residue)
                self._check_pins(report, step, group, fluid, visited_v)

            for fid in group:
                fluid = self.sources[fid]
                target_pin = self.flow_paths[fid].target_pin
                if fluid in fills.get(("v", target_pin), set()):
                    report.delivered.add(fid)
                    report.events.append(SimEvent(
                        EventKind.DELIVERY, step, site=target_pin,
                        fluid=fluid, flow_id=fid))
                else:
                    report.undelivered.add(fid)
                    report.events.append(SimEvent(
                        EventKind.UNDELIVERED, step, site=target_pin,
                        fluid=fluid, flow_id=fid))

            # residues persist into the following sets
            for site, fluids in fills.items():
                residue.setdefault(site, set()).update(fluids)

        return report

    # ------------------------------------------------------------------
    def _valve_states(self, step: int, report: SimulationReport) -> Set[SegKey]:
        """Segments passable in this step (valve open or absent)."""
        open_segments: Set[SegKey] = set()
        for key in self.used_segments:
            status = self.valve_status.get(key)
            if status is None:
                is_open = True  # no (essential) valve on this channel
            else:
                state = status[step]
                if state == OPEN:
                    is_open = True
                elif state == CLOSED:
                    is_open = False
                else:
                    is_open = self.dont_care_open
                report.events.append(SimEvent(
                    EventKind.VALVE_SET, step, site=key,
                    fluid="open" if is_open else "closed"))
            for fault in self.faults:
                if fault.active_at(step) and fault.applies_to(key):
                    # Stuck-open leaks; stuck-closed and a blocked
                    # channel both stop flow on the segment.
                    is_open = fault.kind is FaultKind.STUCK_OPEN
            if is_open:
                open_segments.add(key)
        return open_segments

    def _adjacency(self, open_segments: Set[SegKey]) -> Dict[str, List[str]]:
        adj: Dict[str, List[str]] = {}
        for a, b in open_segments:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, []).append(a)
        return adj

    @staticmethod
    def _flood(start: str, adjacency: Dict[str, List[str]]):
        visited_v: Set[str] = set()
        visited_e: Set[SegKey] = set()
        stack = [start]
        if start in adjacency:
            visited_v.add(start)
        while stack:
            vertex = stack.pop()
            for nbr in adjacency.get(vertex, []):
                visited_e.add(segment_key(vertex, nbr))
                if nbr not in visited_v:
                    visited_v.add(nbr)
                    stack.append(nbr)
        return visited_v, visited_e

    def _conflicting(self, fluid_a: str, fluid_b: str) -> bool:
        return frozenset((fluid_a, fluid_b)) in self.fluid_conflicts

    def _record_fill(self, report, step, fluid, visited_v, visited_e,
                     fills, residue) -> None:
        sites = [("v", v) for v in visited_v] + [("e", e) for e in visited_e]
        for site in sites:
            previous = fills.setdefault(site, set())
            for other in previous:
                if other == fluid:
                    continue
                kind = (EventKind.CONTAMINATION
                        if self._conflicting(fluid, other)
                        else EventKind.COLLISION)
                report.events.append(SimEvent(
                    kind, step, site=site[1], fluid=fluid, other=other))
            for old in residue.get(site, set()):
                if old != fluid and self._conflicting(fluid, old):
                    report.events.append(SimEvent(
                        EventKind.CONTAMINATION, step, site=site[1],
                        fluid=fluid, other=old))
            previous.add(fluid)
        for e in sorted(visited_e):
            report.events.append(SimEvent(
                EventKind.FLUID_FILL, step, site=e, fluid=fluid))

    def _check_pins(self, report, step, group, fluid, visited_v) -> None:
        """Fluid reaching any pin other than its own inlet or one of its
        scheduled outlets this step is a misroute."""
        legitimate = {self._pin_of_module[fluid]}
        for fid in group:
            if self.sources[fid] == fluid:
                legitimate.add(self.flow_paths[fid].target_pin)
        for pin in visited_v:
            if not self.switch.is_pin(pin) or pin in legitimate:
                continue
            report.events.append(SimEvent(
                EventKind.MISROUTE, step, site=pin, fluid=fluid,
                other=self._module_of_pin.get(pin)))


# ----------------------------------------------------------------------
def fluid_conflicts_of(spec: SwitchSpec) -> Set[FrozenSet[str]]:
    """Lift flow-level conflicts to fluid (inlet-module) conflicts."""
    pairs: Set[FrozenSet[str]] = set()
    for pair in spec.conflicts:
        i, j = sorted(pair)
        pairs.add(frozenset((spec.flow(i).source, spec.flow(j).source)))
    return pairs


def simulate_program(result: SynthesisResult, program,
                     faults: Sequence[ValveFault] = ()) -> SimulationReport:
    """Execute a compiled actuation program on the reduced switch.

    Unlike :func:`simulate`, the valve states come from the pneumatic
    program (which resolves every *don't care* to a concrete level via
    its pressure group), so this validates the artifact a lab would
    actually run.
    """
    if not result.status.solved or result.valves is None:
        raise ReproError("cannot replay a program for an unsolved result")
    n_steps = len(result.flow_sets)
    if program.num_steps != n_steps:
        raise ReproError(
            f"program has {program.num_steps} step(s), schedule has {n_steps}"
        )
    spec = result.spec
    status = {
        valve: [program.valve_state(valve, s) for s in range(n_steps)]
        for valve in sorted(result.valves.essential)
    }
    sim = SwitchSimulator(
        switch=spec.switch,
        used_segments=result.used_segments,
        valve_status=status,
        flow_paths=result.flow_paths,
        flow_sets=result.flow_sets,
        sources={f.id: f.source for f in spec.flows},
        binding=result.binding,
        fluid_conflicts=fluid_conflicts_of(spec),
        faults=faults,
    )
    return sim.run()


def simulate(result: SynthesisResult,
             faults: Sequence[ValveFault] = (),
             dont_care_open: bool = False) -> SimulationReport:
    """Execute a synthesis result on its reduced switch.

    Valve statuses come from the result's essential-valve analysis;
    segments whose valve was removed as unnecessary are permanently
    open, exactly as on the fabricated chip.
    """
    if not result.status.solved:
        raise ReproError("cannot simulate an unsolved synthesis result")
    if result.valves is None:
        raise ReproError("synthesis result lacks a valve analysis")
    spec = result.spec
    status = {k: v for k, v in result.valves.status.items()
              if k in result.valves.essential}
    sim = SwitchSimulator(
        switch=spec.switch,
        used_segments=result.used_segments,
        valve_status=status,
        flow_paths=result.flow_paths,
        flow_sets=result.flow_sets,
        sources={f.id: f.source for f in spec.flows},
        binding=result.binding,
        fluid_conflicts=fluid_conflicts_of(spec),
        faults=faults,
        dont_care_open=dont_care_open,
    )
    return sim.run()

"""Execution-time estimation for synthesized switch schedules.

The paper motivates minimizing the number of flow sets with routing
time and control effort: "a smaller number of flow set indicates less
changing of valve status, and thus decreased controlling effort". This
module turns that motivation into numbers with a simple first-order
fluidic timing model:

* flows within one set run in parallel; the set's transport time is the
  slowest flow's path length divided by the flow velocity;
* between sets, every valve that changes state costs one actuation
  interval (actuations within a transition happen in parallel on a
  pressure manifold, so the transition costs one interval when anything
  switches);
* total routing time = Σ set makespans + Σ transition overheads.

Defaults are in the ballpark of pressure-driven PDMS devices (a few
millimetres per second, tens of milliseconds per valve actuation); both
are parameters, and only *ratios* between schedules matter for the
comparisons the benchmarks make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.solution import SynthesisResult
from repro.core.valves import CLOSED, DONT_CARE, OPEN
from repro.errors import ReproError


@dataclass(frozen=True)
class TimingModel:
    """First-order timing parameters."""

    flow_velocity_mm_s: float = 2.0       # transport speed in channels
    valve_actuation_s: float = 0.05       # one pneumatic switching step
    set_setup_s: float = 0.1              # pressure settling per flow set

    def __post_init__(self) -> None:
        if self.flow_velocity_mm_s <= 0:
            raise ReproError("flow velocity must be positive")
        if self.valve_actuation_s < 0 or self.set_setup_s < 0:
            raise ReproError("timing overheads cannot be negative")


@dataclass
class ExecutionTimeEstimate:
    """Break-down of the estimated routing time for one schedule."""

    set_makespans_s: List[float]
    transition_overheads_s: List[float]
    setup_s: float

    @property
    def transport_s(self) -> float:
        return sum(self.set_makespans_s)

    @property
    def control_s(self) -> float:
        return sum(self.transition_overheads_s) + self.setup_s

    @property
    def total_s(self) -> float:
        return self.transport_s + self.control_s

    def summary(self) -> str:
        return (
            f"{self.total_s:.2f} s total = {self.transport_s:.2f} s transport "
            f"({len(self.set_makespans_s)} set(s)) + "
            f"{self.control_s:.2f} s control"
        )


def estimate_execution_time(
    result: SynthesisResult,
    model: Optional[TimingModel] = None,
) -> ExecutionTimeEstimate:
    """Estimate the wall-clock routing time of a solved schedule."""
    if not result.status.solved:
        raise ReproError("cannot time an unsolved synthesis result")
    model = model or TimingModel()

    makespans: List[float] = []
    for group in result.flow_sets:
        longest = max(result.flow_paths[fid].length for fid in group)
        makespans.append(longest / model.flow_velocity_mm_s)

    transitions: List[float] = []
    if result.valves is not None and result.flow_sets:
        n_steps = len(result.flow_sets)
        # initial configuration counts as one actuation interval if any
        # valve starts closed
        prev: Dict = {}
        for step in range(n_steps):
            changed = False
            for key, seq in result.valves.status.items():
                if key not in result.valves.essential:
                    continue
                state = seq[step]
                effective = CLOSED if state == CLOSED else OPEN
                if prev.get(key, OPEN) != effective:
                    changed = True
                prev[key] = effective
            if changed:
                transitions.append(model.valve_actuation_s)

    setup = model.set_setup_s * len(result.flow_sets)
    return ExecutionTimeEstimate(
        set_makespans_s=makespans,
        transition_overheads_s=transitions,
        setup_s=setup,
    )

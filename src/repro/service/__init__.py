"""Resilient synthesis job service.

The layer that keeps a fleet of solves correct and alive across
failures: a supervised worker pool fed by a bounded queue, fronted by
idempotent (fingerprint-deduplicated) submission, backed by an
append-only write-ahead journal that makes every state transition
crash-durable, with per-backend circuit breakers, exponential retry
backoff, and signal-safe graceful shutdown. See ``docs/service.md``
for the architecture and the operational runbook.

Quickstart::

    from repro.service import SynthesisService

    with SynthesisService("runs/journal.jsonl", workers=4) as svc:
        job_id = svc.submit(spec)
        record = svc.wait(job_id, timeout=120)
        print(record.state, record.row)

Kill the process at any point and a new service on the same journal
resumes with no job lost and no journaled completion re-executed.

For multi-process scale, the same core runs sharded: a
:class:`ShardCoordinator` spreads submissions across N shard processes
(one journaled service each, all sharing one content-addressed store)
and a :class:`ServiceHTTPServer` puts a stdlib HTTP/JSON API in front::

    from repro.service import ServiceHTTPServer, ShardCoordinator

    with ShardCoordinator("runs/platform", shards=4) as coord:
        with ServiceHTTPServer(coord) as server:
            print(server.url)  # POST /jobs, GET /jobs/<id>, /health, /stats
            ...

SIGKILL a shard and the coordinator respawns it on its journal;
``repro serve --http`` is the CLI form.
"""

from repro.service.backoff import Backoff
from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.journal import (
    JOB_STATES,
    JOURNAL_SCHEMA,
    TERMINAL_STATES,
    JobRecord,
    Journal,
    replay_journal,
    validate_journal,
)
from repro.service.coordinator import ShardCoordinator, ShardError
from repro.service.http import (
    HTTPServiceError,
    ServiceHTTPServer,
    fetch_job,
    fetch_metrics,
    fetch_trace,
    submit_job,
    submit_repair,
    wait_job,
)
from repro.service.queue import JobQueue
from repro.service.service import (
    SynthesisService,
    install_signal_handlers,
    is_repair_job,
    job_id_for,
    options_from_dict,
    options_to_dict,
)
from repro.service.shard import ShardConfig
from repro.service.supervisor import Supervisor

__all__ = [
    "Backoff",
    "CircuitBreaker",
    "BreakerBoard",
    "JobQueue",
    "Supervisor",
    "Journal",
    "JobRecord",
    "JOURNAL_SCHEMA",
    "JOB_STATES",
    "TERMINAL_STATES",
    "replay_journal",
    "validate_journal",
    "SynthesisService",
    "install_signal_handlers",
    "is_repair_job",
    "job_id_for",
    "options_to_dict",
    "options_from_dict",
    "ShardConfig",
    "ShardCoordinator",
    "ShardError",
    "ServiceHTTPServer",
    "HTTPServiceError",
    "submit_job",
    "submit_repair",
    "fetch_job",
    "fetch_metrics",
    "fetch_trace",
    "wait_job",
]

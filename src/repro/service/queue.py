"""Bounded job queue with retry scheduling and load shedding.

A service that accepts unboundedly eventually dies of memory instead of
refusing work — admission control converts overload into an explicit,
retryable signal at the edge. :class:`JobQueue` holds at most
``maxsize`` queued jobs; a push past that raises
:class:`~repro.errors.AdmissionError` (the service turns it into a
``shed`` event and counter).

Entries carry a *ready time*: a retrying job is re-queued with its
backoff delay and stays invisible to :meth:`pop` until the delay has
passed, so a worker never busy-spins on a job that is deliberately
waiting. Ties break by insertion order (a monotone sequence number), so
the queue is FIFO among ready jobs.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, List, Optional, Tuple

from repro.errors import AdmissionError, ReproError


class JobQueue:
    """Thread-safe bounded priority queue ordered by ready time."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ReproError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: Cumulative number of rejected pushes (exported as ``shed``).
        self.shed = 0

    def push(self, item: Any, delay: float = 0.0, *,
             force: bool = False) -> None:
        """Enqueue ``item``, visible to ``pop`` after ``delay`` seconds.

        Raises :class:`AdmissionError` when the queue is full or closed.
        ``force=True`` bypasses the size bound (never the closed check):
        a *retry* of an already-admitted job must not be sheddable, or
        load could silently discard accepted work.
        """
        ready_at = time.monotonic() + max(0.0, delay)
        with self._not_empty:
            if self._closed:
                raise AdmissionError("queue is closed to new work")
            if not force and len(self._heap) >= self.maxsize:
                self.shed += 1
                raise AdmissionError(
                    f"queue full ({self.maxsize} jobs); shedding")
            heapq.heappush(self._heap, (ready_at, next(self._seq), item))
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """The earliest *ready* item, or None on timeout / closed-empty.

        Blocks until an item becomes ready, the timeout expires, or the
        queue is closed while empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                now = time.monotonic()
                if self._heap:
                    ready_at = self._heap[0][0]
                    if ready_at <= now:
                        return heapq.heappop(self._heap)[2]
                    wait = ready_at - now
                elif self._closed:
                    return None
                else:
                    wait = None
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._not_empty.wait(wait)

    def close(self) -> None:
        """Refuse further pushes and wake every blocked popper."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> List[Any]:
        """Remove and return everything still queued (ready or not)."""
        with self._not_empty:
            items = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


__all__ = ["JobQueue"]

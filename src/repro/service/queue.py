"""Bounded job queue with priorities, tenant quotas and retry delays.

A service that accepts unboundedly eventually dies of memory instead of
refusing work — admission control converts overload into an explicit,
retryable signal at the edge. :class:`JobQueue` holds at most
``maxsize`` queued jobs; a push past that raises
:class:`~repro.errors.AdmissionError` (the service turns it into a
``shed`` event and counter). On a multi-tenant queue each tenant may
additionally be capped (``tenant_quota``), so one noisy tenant fills
its own slice, not the whole queue.

Entries carry a *ready time* and a *priority*. A retrying job is
re-queued with its backoff delay and stays invisible to :meth:`pop`
until the delay has passed, so a worker never busy-spins on a job that
is deliberately waiting. Among **ready** entries, higher priority pops
first; ties break by insertion order (a monotone sequence number), so
the queue is FIFO within a priority band. Internally that is two
heaps: a not-yet-ready heap ordered by ready time, drained into a
ready heap ordered by ``(-priority, seq)`` as delays mature — a
high-priority job never waits behind a ready low-priority backlog.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, ReproError


class JobQueue:
    """Thread-safe bounded priority queue with ready-time gating."""

    def __init__(self, maxsize: int = 256,
                 tenant_quota: Optional[int] = None) -> None:
        if maxsize < 1:
            raise ReproError(f"queue maxsize must be >= 1, got {maxsize}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ReproError(
                f"tenant_quota must be >= 1, got {tenant_quota}")
        self.maxsize = maxsize
        #: Per-tenant cap on queued entries (None = tenants uncapped).
        self.tenant_quota = tenant_quota
        # (ready_at, seq, item, priority, tenant) — not yet ready
        self._delayed: List[Tuple[float, int, Any, int, Optional[str]]] = []
        # (-priority, seq, item, tenant) — ready to pop
        self._ready: List[Tuple[int, int, Any, Optional[str]]] = []
        self._tenants: Dict[str, int] = {}
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: Cumulative number of rejected pushes (exported as ``shed``).
        self.shed = 0
        #: Deepest the queue has ever been — the saturation signal
        #: ``/stats`` reports alongside the live depth, so a spike that
        #: drained before anyone looked still shows.
        self.depth_high_water = 0

    # -- admission -------------------------------------------------------
    def shed_reason(self, tenant: Optional[str] = None) -> Optional[str]:
        """Why a non-forced push would be refused right now, or None.

        ``"full"`` when the queue is at its bound, ``"tenant-quota"``
        when this tenant's slice is. Lets the service decide admission
        *before* journaling the job (WAL order: nothing shed is ever
        journaled).
        """
        with self._lock:
            return self._shed_reason(tenant)

    def _shed_reason(self, tenant: Optional[str]) -> Optional[str]:
        if len(self._delayed) + len(self._ready) >= self.maxsize:
            return "full"
        if tenant is not None and self.tenant_quota is not None \
                and self._tenants.get(tenant, 0) >= self.tenant_quota:
            return "tenant-quota"
        return None

    def push(self, item: Any, delay: float = 0.0, *, priority: int = 0,
             tenant: Optional[str] = None, force: bool = False) -> None:
        """Enqueue ``item``, visible to ``pop`` after ``delay`` seconds.

        Raises :class:`AdmissionError` when the queue is full, the
        tenant is at quota, or the queue is closed. ``force=True``
        bypasses the size bound and the quota (never the closed check):
        a *retry* of an already-admitted job must not be sheddable, or
        load could silently discard accepted work.
        """
        ready_at = time.monotonic() + max(0.0, delay)
        with self._not_empty:
            if self._closed:
                raise AdmissionError("queue is closed to new work")
            if not force:
                reason = self._shed_reason(tenant)
                if reason == "full":
                    self.shed += 1
                    raise AdmissionError(
                        f"queue full ({self.maxsize} jobs); shedding")
                if reason == "tenant-quota":
                    self.shed += 1
                    raise AdmissionError(
                        f"tenant {tenant!r} at quota "
                        f"({self.tenant_quota} queued jobs); shedding")
            seq = next(self._seq)
            if tenant is not None:
                self._tenants[tenant] = self._tenants.get(tenant, 0) + 1
            if delay <= 0.0:
                heapq.heappush(self._ready, (-priority, seq, item, tenant))
            else:
                heapq.heappush(self._delayed,
                               (ready_at, seq, item, priority, tenant))
            depth = len(self._delayed) + len(self._ready)
            if depth > self.depth_high_water:
                self.depth_high_water = depth
            self._not_empty.notify()

    # -- consumption -----------------------------------------------------
    def _mature(self, now: float) -> None:
        """Move every matured delayed entry onto the ready heap."""
        while self._delayed and self._delayed[0][0] <= now:
            _, seq, item, priority, tenant = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (-priority, seq, item, tenant))

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """The highest-priority *ready* item, or None on timeout /
        closed-empty.

        Blocks until an item becomes ready, the timeout expires, or the
        queue is closed while empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                now = time.monotonic()
                self._mature(now)
                if self._ready:
                    _, _, item, tenant = heapq.heappop(self._ready)
                    if tenant is not None:
                        count = self._tenants.get(tenant, 1) - 1
                        if count > 0:
                            self._tenants[tenant] = count
                        else:
                            self._tenants.pop(tenant, None)
                    return item
                if self._delayed:
                    wait = self._delayed[0][0] - now
                elif self._closed:
                    return None
                else:
                    wait = None
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._not_empty.wait(wait)

    def close(self) -> None:
        """Refuse further pushes and wake every blocked popper."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> List[Any]:
        """Remove and return everything still queued (ready or not),
        in pop order: ready items by priority, then delayed items by
        ready time."""
        with self._not_empty:
            items = [entry[2] for entry in sorted(self._ready)]
            items += [entry[2] for entry in sorted(self._delayed)]
            self._ready.clear()
            self._delayed.clear()
            self._tenants.clear()
            return items

    # -- introspection ---------------------------------------------------
    def tenant_depths(self) -> Dict[str, int]:
        """Queued entries per tenant (tenants with none are absent)."""
        with self._lock:
            return dict(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._delayed) + len(self._ready)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


__all__ = ["JobQueue"]

"""The supervised synthesis job service (`repro.service` facade).

:class:`SynthesisService` turns the library's one-shot ``synthesize``
into a system that survives synthesize failing:

* **Idempotent submission** — a job's identity is the
  :mod:`repro.obs.manifest` fingerprint pair (case ⊕ config);
  re-submitting the same work returns the same job, and a job whose
  completion is already journaled is never executed again.
* **Write-ahead journal** — every payload and state transition hits
  the :class:`~repro.service.journal.Journal` before memory, so a
  killed process restarts into the exact surviving state: terminal
  jobs stay terminal, queued and in-flight jobs come back as pending.
* **Supervised workers** — a pool of
  :class:`~repro.service.supervisor.Supervisor` threads; a crashed
  worker is replaced, its job retried.
* **Retry with backoff** — failed attempts re-queue with
  :class:`~repro.service.backoff.Backoff` delays until
  ``max_attempts``, then the job fails terminally with an error row.
* **Circuit breakers + backend ladder** — consecutive
  ``SolverError``/timeout failures open the failing backend's
  :class:`~repro.service.breaker.CircuitBreaker`; execution falls
  through to the next backend in ``backends`` until the breaker's
  half-open probe readmits the first.
* **Admission control** — a bounded queue sheds new submissions with
  :class:`~repro.errors.AdmissionError` (``shed`` event) instead of
  buffering without limit; retries of admitted jobs are exempt.
* **Graceful shutdown** — :func:`install_signal_handlers` maps
  SIGINT/SIGTERM onto a drain: in-flight jobs finish under a deadline,
  the rest stay journaled as pending for the next start.

Everything observable goes through ``repro.obs``: ``job_submitted`` /
``job_started`` / ``job_retry`` / ``job_done`` / ``job_failed`` /
``breaker_open`` / ``shed`` / ``drain`` events plus
``service_queue_depth`` / ``service_in_flight`` gauges and per-outcome
counters on the installed tracer.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, synthesize
from repro.errors import AdmissionError, ServiceError
from repro.io.spec_json import spec_from_dict, spec_to_dict
from repro.obs.manifest import case_fingerprint, config_fingerprint
from repro.obs.telemetry import correlation_id
from repro.obs.trace import correlate, current_tracer, obs_event
from repro.service.backoff import Backoff
from repro.service.breaker import BreakerBoard
from repro.service.journal import Journal, JobRecord, TERMINAL_STATES
from repro.service.queue import JobQueue
from repro.service.supervisor import Supervisor


def options_to_dict(options: SynthesisOptions) -> Dict[str, Any]:
    """JSON form of the options (the journaled job payload half).

    Journals exactly the ``compare=True`` fields — the same set the
    config fingerprint hashes — so the journal payload and the job
    identity can never disagree. Runtime attachments (tracer, store
    handle, cache toggle) are per-process and never serialized.
    """
    return {
        f.name: getattr(options, f.name)
        for f in dataclasses.fields(options)
        if f.compare
    }


def options_from_dict(data: Dict[str, Any]) -> SynthesisOptions:
    """Rebuild options from their journaled form (unknown keys dropped)."""
    known = {f.name for f in dataclasses.fields(SynthesisOptions) if f.compare}
    return SynthesisOptions(**{k: v for k, v in data.items() if k in known})


def is_repair_job(record: "JobRecord") -> bool:
    """A job is a repair when its journaled switch carries a fault mask.

    Recognized from the serialized spec (not a schema flag), so repair
    jobs replay from any ``repro-service-v1`` journal unchanged and the
    ``repair_*`` metrics survive restarts.
    """
    switch = (record.spec or {}).get("switch") or {}
    return bool(switch.get("faults"))


def job_id_for(spec: SwitchSpec, options: SynthesisOptions) -> str:
    """The idempotency key: case fingerprint ⊕ config fingerprint."""
    return f"{case_fingerprint(spec)}-{config_fingerprint(options)}"


class SynthesisService:
    """A restartable, journaled, supervised queue of synthesis jobs."""

    def __init__(
        self,
        journal: Optional[Union[str, Path, Journal]] = None,
        *,
        workers: int = 2,
        queue_size: int = 256,
        options: Optional[SynthesisOptions] = None,
        backends: Optional[Sequence[str]] = None,
        max_attempts: int = 3,
        backoff: Optional[Backoff] = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
        store: Optional[Any] = None,
        tenant_quota: Optional[int] = None,
        instance: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        #: Optional persistent solve cache shared by every worker: a
        #: :class:`repro.store.Store` or a path to open one. Submissions
        #: whose proven-optimal result the store already holds complete
        #: at admission time (re-verified, journaled as done) without
        #: ever occupying a worker; everything else executes with the
        #: store attached, so Tier B warms the solve and the outcome is
        #: written through for the next tenant.
        if store is not None and not hasattr(store, "get"):
            from repro.store import Store

            store = Store(store)
        self.store = store
        self.default_options = options or SynthesisOptions()
        #: The backend degradation ladder, tried in order per attempt.
        self.backends: List[str] = list(
            backends or [self.default_options.backend])
        self.max_attempts = max_attempts
        self.backoff = backoff or Backoff()
        self.breakers = BreakerBoard(breaker_threshold, breaker_reset)
        self.queue = JobQueue(queue_size, tenant_quota=tenant_quota)
        self._supervisor = Supervisor(workers, self._work)
        if journal is None or isinstance(journal, Journal):
            self._journal = journal
        else:
            self._journal = Journal(journal)
        #: job id -> record; *is* the journal's map once opened, so the
        #: WAL and the in-memory view can never disagree.
        self.jobs: Dict[str, JobRecord] = {}
        self._specs: Dict[str, SwitchSpec] = {}  # parsed-spec cache
        self._lock = threading.RLock()
        self._terminal = threading.Condition(self._lock)
        self._in_flight = 0
        self._state = "created"
        self._shutdown_requested = threading.Event()
        self.shutdown_signal: Optional[int] = None
        #: Telemetry namespace: with several services (or stores) in one
        #: process — every shard test, any embedded deployment — each
        #: instance keeps its own ``service_*`` instruments instead of
        #: overwriting a process-global gauge. None = plain flat names.
        self.instance = instance
        #: Submission ordinal; with the job fingerprint it forms the
        #: correlation ID stamped on everything the job produces.
        self._submissions = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SynthesisService":
        """Open (and replay) the journal, then start the worker pool.

        Replayed non-terminal jobs — queued or in-flight when the last
        process died — are re-enqueued immediately; journaled terminal
        jobs are *not* re-executed (exactly-once completion).
        """
        with self._lock:
            if self._state == "running":
                return self
            if self._state == "stopped":
                raise ServiceError("service cannot be restarted; "
                                   "create a new one on the same journal")
            if self._journal is not None:
                self._journal.open()
                self.jobs = self._journal.jobs
                replayed = self._journal.pending()
                for job in replayed:
                    # A job journaled pending mid-backoff re-enters at
                    # the ready-time its *persisted* attempt count
                    # implies — keyed jitter, so the schedule survives
                    # the restart instead of releasing every replayed
                    # retry at attempt-0 delays all at once.
                    delay = 0.0
                    if job.state == "pending" and job.attempts > 0:
                        delay = self.backoff.delay_for(job.attempts, job.id)
                    self.queue.push(job.id, delay=delay,
                                    priority=job.priority,
                                    tenant=job.tenant, force=True)
                    obs_event("job_submitted", job=job.id, replayed=True,
                              state=job.state)
                if replayed:
                    self._counter("service_jobs_replayed", len(replayed))
            self._state = "running"
        self._supervisor.start()
        self._sync_gauges()
        return self

    def __enter__(self) -> "SynthesisService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission ------------------------------------------------------
    def submit(self, spec: SwitchSpec,
               options: Optional[SynthesisOptions] = None, *,
               tenant: Optional[str] = None, priority: int = 0,
               corr: Optional[str] = None) -> str:
        """Accept one job; returns its id (idempotent on re-submission).

        ``tenant`` labels the submission for quota accounting and
        per-tenant observability; ``priority`` orders ready jobs in the
        queue (higher pops first, FIFO within a band); ``corr``
        overrides the generated correlation ID (the coordinator passes
        one threaded down from ``POST /jobs``). Raises
        :class:`AdmissionError` when the bounded queue is full or the
        tenant is at quota (the submission is *shed*: nothing is
        journaled, the caller owns the retry) or the service is
        shutting down.
        """
        opts = options or self.default_options
        job_id = job_id_for(spec, opts)
        with self._lock:
            if self._state == "created":
                raise ServiceError(
                    "service not started; call start() or use it as a "
                    "context manager")
            if self._state == "stopped" or self.queue.closed:
                raise AdmissionError("service is not accepting jobs")
            existing = self.jobs.get(job_id)
            if existing is not None:
                self._counter("service_dedup_hits")
                obs_event("job_submitted", job=job_id, dedup=True,
                          state=existing.state,
                          **({"tenant": tenant} if tenant else {}))
                return job_id
            self._submissions += 1
            corr = corr or correlation_id(job_id, self._submissions)
            with correlate(corr):
                row = self._store_row(spec, opts)
                if row is not None:
                    # Tier A at admission: the persistent store already
                    # holds this exact job's proven-optimal result
                    # (re-verified just now). Journal it straight to
                    # done — it never takes a queue slot or a worker,
                    # and a restart replays it as terminal like any
                    # other completion.
                    record = JobRecord(job_id, spec_to_dict(spec),
                                       options_to_dict(opts), tenant=tenant,
                                       priority=priority, corr=corr)
                    if self._journal is not None:
                        self._journal.record_job(record)
                    else:
                        self.jobs[job_id] = record
                    self._specs[job_id] = spec
                    self._counter("service_store_dedup")
                    obs_event("job_submitted", job=job_id, case=spec.name,
                              store=True,
                              **({"tenant": tenant} if tenant else {}))
                    if is_repair_job(record):
                        self._note_repair_submitted(record, spec)
                    self._finish(record, 0, "done", row, None)
                    return job_id
                reason = self.queue.shed_reason(tenant)
                if reason is not None:
                    self.queue.shed += 1
                    self._counter("service_shed")
                    obs_event("shed", job=job_id, reason=reason,
                              queue_depth=len(self.queue),
                              **({"tenant": tenant} if tenant else {}))
                    if reason == "tenant-quota":
                        raise AdmissionError(
                            f"tenant {tenant!r} at quota "
                            f"({self.queue.tenant_quota} queued jobs); "
                            f"job {job_id} shed")
                    raise AdmissionError(
                        f"queue full ({self.queue.maxsize} jobs); "
                        f"job {job_id} shed")
                record = JobRecord(job_id, spec_to_dict(spec),
                                   options_to_dict(opts), tenant=tenant,
                                   priority=priority, corr=corr)
                # WAL order: journal first, then memory/queue — a crash
                # between the two re-creates the queue entry from the
                # journal on restart.
                if self._journal is not None:
                    self._journal.record_job(record)
                else:
                    self.jobs[job_id] = record
                self._specs[job_id] = spec
                self.queue.push(job_id, priority=priority, tenant=tenant,
                                force=True)
                self._counter("service_jobs_submitted")
                obs_event("job_submitted", job=job_id, case=spec.name,
                          **({"tenant": tenant} if tenant else {}))
                if is_repair_job(record):
                    self._note_repair_submitted(record, spec)
        self._sync_gauges()
        return job_id

    def submit_repair(self, original_id: str, faults, *,
                      tenant: Optional[str] = None,
                      priority: Optional[int] = None) -> str:
        """Turn observed faults on a completed job into a repair job.

        Builds the degraded spec from the original job's journaled spec
        plus ``faults`` (:class:`~repro.sim.faults.ValveFault`s or a
        :class:`~repro.switches.health.HealthMask`) and submits it under
        the original job's correlation ID, so the repair's whole
        lifecycle lands in the original campaign's flight-recorder
        trace. The repair job's id is a pure function of the masked
        spec and options — resubmitting the same fault set dedups onto
        the same journaled job (exactly-once), and a restart replays it
        like any other.
        """
        from repro.repair.engine import mask_spec

        original = self.job(original_id)
        spec = mask_spec(self._spec_of(original), faults)
        opts = (options_from_dict(original.options)
                if original.options else None)
        return self.submit(
            spec, opts,
            tenant=original.tenant if tenant is None else tenant,
            priority=original.priority if priority is None else priority,
            corr=original.corr)

    def _note_repair_submitted(self, record: JobRecord, spec: SwitchSpec) -> None:
        # Fires on every admission path (queued, store-dedup, and
        # coordinator-forwarded), so repair_* counters and per-fault
        # fault_detected events always reach this shard's stream.
        mask = spec.switch.health
        self._counter("repair_submitted")
        obs_event("repair_submitted", job=record.id, case=spec.name,
                  masked=len(mask.dead_segments))
        for a, b, kind in mask.triples():
            self._counter("repair_faults_detected")
            obs_event("fault_detected", job=record.id,
                      segment=f"{a}-{b}", kind=kind)

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self.jobs.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id}")
        return record

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> JobRecord:
        """Block until one job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while True:
                record = self.jobs.get(job_id)
                if record is None:
                    raise ServiceError(f"unknown job {job_id}")
                if record.terminal:
                    return record
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise ServiceError(
                        f"timed out waiting for job {job_id} "
                        f"(state {record.state!r})")
                self._terminal.wait(remaining)

    def outstanding(self) -> int:
        """Jobs not yet terminal (queued, backing off, or in flight)."""
        with self._lock:
            return sum(1 for job in self.jobs.values() if not job.terminal)

    def run_until_complete(self, poll: float = 0.05,
                           timeout: Optional[float] = None) -> str:
        """Process until every job is terminal or shutdown is requested.

        Returns ``"complete"``, ``"interrupted"`` (a signal or
        :meth:`request_shutdown` arrived) or ``"timeout"``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._shutdown_requested.is_set():
                return "interrupted"
            if self.outstanding() == 0:
                return "complete"
            if deadline is not None and time.monotonic() >= deadline:
                return "timeout"
            self._shutdown_requested.wait(poll)

    # -- shutdown --------------------------------------------------------
    def request_shutdown(self, signum: Optional[int] = None) -> None:
        """Signal-safe: flag the shutdown; the control loop drains."""
        self.shutdown_signal = signum
        self._shutdown_requested.set()

    def stop(self, drain: Union[bool, str] = True,
             deadline: Optional[float] = None) -> Dict[str, int]:
        """Stop the service; returns ``{"completed": ..., "pending": ...}``.

        ``drain`` picks the shutdown discipline:

        * ``True`` / ``"all"`` — keep working until every accepted job
          is terminal or ``deadline`` seconds pass (the orderly exit).
        * ``"inflight"`` — the signal-driven graceful shutdown: close
          the queue immediately, let only the jobs *already on a
          worker* finish under the deadline; everything still queued
          stays journaled as pending for the next start.
        * ``False`` — stop as fast as the workers can be joined.

        Whatever remains is never lost and never silently re-executed
        once completed — the journal carries it across restarts.
        """
        if drain not in (True, False, "all", "inflight"):
            raise ServiceError(
                f"drain must be True/'all', 'inflight' or False, "
                f"got {drain!r}")
        with self._lock:
            if self._state == "stopped":
                return {"completed": 0, "pending": self.outstanding()}
            self._state = "draining" if drain else "stopping"
        end = None if deadline is None else time.monotonic() + deadline
        completed = 0
        if drain in (True, "all"):
            while self.outstanding() > 0 and \
                    (end is None or time.monotonic() < end):
                time.sleep(0.02)
        self.queue.close()
        leftovers = self.queue.drain()
        if drain == "inflight":
            while True:
                with self._lock:
                    busy = self._in_flight
                if busy == 0 or (end is not None
                                 and time.monotonic() >= end):
                    break
                time.sleep(0.02)
        join_timeout = 5.0 if end is None \
            else max(0.1, end - time.monotonic())
        self._supervisor.stop(timeout=join_timeout)
        with self._lock:
            pending = self.outstanding()
            completed = sum(1 for j in self.jobs.values() if j.terminal)
            self._state = "stopped"
        obs_event("drain", pending=pending, completed=completed,
                  requeued=len(leftovers))
        if self._journal is not None:
            self._journal.close()
        self._sync_gauges()
        return {"completed": completed, "pending": pending}

    # -- worker body -----------------------------------------------------
    def _work(self, worker_id: int) -> bool:
        job_id = self.queue.pop(timeout=0.1)
        if job_id is None:
            # Closed-and-empty means orderly exit; a plain timeout means
            # keep polling (retry delays may still be maturing).
            return not (self.queue.closed and len(self.queue) == 0)
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.terminal:
                return True  # replay/dedup already settled it
            self._in_flight += 1
        self._sync_gauges()
        try:
            self._execute(job, worker_id)
        except BaseException as exc:
            # The worker thread is crashing (the supervisor will log it
            # and respawn). Without this rescue the job would be
            # stranded "running" in memory until the next *process*
            # restart replayed it — requeue it through the normal retry
            # accounting instead, so a thread crash costs one attempt,
            # not the rest of the session.
            self._rescue_crashed(job, exc)
            raise
        finally:
            with self._lock:
                self._in_flight -= 1
            self._sync_gauges()
        return True

    def _rescue_crashed(self, job: JobRecord, exc: BaseException) -> None:
        try:
            with self._lock:
                stranded = not job.terminal and job.state == "running"
            if stranded:
                self._fail_attempt(job, max(1, job.attempts), None,
                                   f"worker crashed: "
                                   f"{type(exc).__name__}: {exc}")
        except Exception:
            # Journaling itself is broken; the WAL still holds the job
            # as running, so the next start replays it.
            pass

    def _store_row(self, spec: SwitchSpec,
                   opts: SynthesisOptions) -> Optional[Dict[str, Any]]:
        """Tier A admission check: a completed row from the store, or None.

        Never raises — a broken store degrades to normal execution.
        """
        if self.store is None or not opts.cache:
            return None
        try:
            from repro.store import load_result, result_key

            result = load_result(self.store, result_key(spec, opts), spec)
        except Exception:
            return None
        if result is None:
            return None
        from repro.experiments.batch import spec_row

        return spec_row(spec, result)

    def _spec_of(self, job: JobRecord) -> SwitchSpec:
        spec = self._specs.get(job.id)
        if spec is None:
            spec = spec_from_dict(job.spec)
            self._specs[job.id] = spec
        return spec

    def _pick_backend(self) -> Optional[str]:
        """First rung of the ladder whose breaker admits a call."""
        for backend in self.backends:
            if self.breakers.get(backend).allow():
                return backend
        return None

    def _execute(self, job: JobRecord, worker_id: int) -> None:
        # Everything the attempt records — the solve's spans, solver
        # events, store events, even B&B worker telemetry shipped back
        # across process boundaries — carries the job's correlation ID.
        with correlate(job.corr):
            self._execute_attempt(job, worker_id)

    def _execute_attempt(self, job: JobRecord, worker_id: int) -> None:
        attempt = job.attempts + 1
        backend = self._pick_backend()
        if backend is None:
            self._fail_attempt(
                job, attempt, None,
                "no backend available: every circuit breaker is open")
            return
        breaker = self.breakers.get(backend)
        try:
            self._transition(job, "running", attempt)
            self._observe("service_queue_wait",
                          max(0.0, time.time() - job.submitted_at))
            obs_event("job_started", job=job.id, attempt=attempt,
                      backend=backend, worker=worker_id)
            spec = self._spec_of(job)
            opts = replace(options_from_dict(job.options),
                           backend=backend, trace=None, store=self.store)
        except BaseException:
            # Crash between the breaker's allow() and any verdict: the
            # half-open probe slot must not leak with the worker, or
            # the breaker stays stuck half-open refusing every later
            # probe. A vanished probe counts as a failed one.
            breaker.release_probe()
            raise
        try:
            result = synthesize(spec, opts)
        except Exception as exc:
            breaker.record_failure()
            self._fail_attempt(job, attempt, backend,
                               f"{type(exc).__name__}: {exc}")
            return
        except BaseException:
            breaker.release_probe()
            raise
        try:
            from repro.experiments.batch import spec_row

            status = result.status.value
            if result.status.solved or status == "no solution":
                # Conclusive answers (infeasible included) are terminal.
                degraded = bool(result.counters.get("degraded"))
                if degraded or result.error:
                    breaker.record_failure()  # the exact backend did fail
                else:
                    breaker.record_success()
                row = spec_row(spec, result)
                state = "degraded" if degraded else "done"
                self._finish(job, attempt, state, row, result.error)
            else:
                # TIMEOUT without a solution, or a captured ERROR:
                # retryable.
                breaker.record_failure()
                self._fail_attempt(job, attempt, backend,
                                   result.error or f"solve ended {status}")
        except BaseException:
            breaker.release_probe()  # no-op once a verdict was recorded
            raise

    def _fail_attempt(self, job: JobRecord, attempt: int,
                      backend: Optional[str], message: str) -> None:
        if attempt >= self.max_attempts:
            from repro.experiments.batch import error_row

            row = error_row(self._spec_of(job), message)
            self._finish(job, attempt, "failed", row, message)
            return
        # Keyed jitter: the delay is a pure function of (policy seed,
        # job id, attempt), so a restart that replays this job pending
        # recomputes the same ready-time instead of resetting the herd.
        delay = self.backoff.delay_for(attempt, job.id)
        self._transition(job, "pending", attempt, error=message)
        self._counter("service_retries")
        obs_event("job_retry", job=job.id, attempt=attempt,
                  backend=backend, delay=round(delay, 4), error=message)
        # Retries of admitted work are exempt from admission control —
        # shedding them would silently drop an accepted job. A queue
        # already closed by shutdown refuses even forced pushes; the job
        # is journaled pending, so the next start replays it.
        try:
            self.queue.push(job.id, delay=delay, priority=job.priority,
                            tenant=job.tenant, force=True)
        except AdmissionError:
            pass

    def _finish(self, job: JobRecord, attempt: int, state: str,
                row: Dict[str, Any], error: Optional[str]) -> None:
        self._transition(job, state, attempt, row=row, error=error)
        self._counter(f"service_jobs_{state}")
        self._observe("service_job_latency",
                      max(0.0, time.time() - job.submitted_at))
        event = "job_failed" if state == "failed" else "job_done"
        obs_event(event, job=job.id, state=state, attempts=attempt,
                  status=row.get("status"), error=error)
        if is_repair_job(job):
            if state == "failed":
                self._counter("repair_failed")
                obs_event("repair_failed", job=job.id, attempts=attempt,
                          error=error)
            else:
                self._counter("repair_completed")
                obs_event("repair_done", job=job.id, state=state,
                          status=row.get("status"))

    def _transition(self, job: JobRecord, state: str, attempts: int,
                    row: Optional[Dict[str, Any]] = None,
                    error: Optional[str] = None) -> None:
        with self._terminal:
            if self._journal is not None:
                self._journal.record_state(job.id, state, attempts,
                                           row=row, error=error)
            else:
                job.state = state
                job.attempts = attempts
                if row is not None:
                    job.row = row
                if error is not None:
                    job.error = error
            if state in TERMINAL_STATES:
                self._terminal.notify_all()

    # -- observability ---------------------------------------------------
    def _counter(self, name: str, amount: int = 1) -> None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.counter(name, instance=self.instance).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.histogram(
                name, instance=self.instance).observe(value)

    def _sync_gauges(self) -> None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.gauge(
                "service_queue_depth",
                instance=self.instance).set(len(self.queue))
            tracer.metrics.gauge(
                "service_in_flight",
                instance=self.instance).set(self._in_flight)

    def stats(self) -> Dict[str, Any]:
        """Queue/retry/breaker counters for dashboards and tests."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            tenants: Dict[str, Dict[str, int]] = {}
            for job in self.jobs.values():
                if job.tenant is None:
                    continue
                per = tenants.setdefault(job.tenant, {})
                per[job.state] = per.get(job.state, 0) + 1
            out = {
                "state": self._state,
                "queue_depth": len(self.queue),
                "in_flight": self._in_flight,
                "shed": self.queue.shed,
                "worker_crashes": self._supervisor.crashes,
                "jobs": states,
                "tenants": tenants,
                "tenant_queue_depths": self.queue.tenant_depths(),
                "queue_depth_max": self.queue.depth_high_water,
                "breakers": self.breakers.snapshot(),
            }
        tracer = current_tracer()
        if tracer is not None:
            out["latency"] = {
                name: tracer.metrics.histogram(
                    name, instance=self.instance).snapshot()
                for name in ("service_queue_wait", "service_job_latency")
            }
        return out

    def health(self) -> Dict[str, Any]:
        """Liveness/readiness in one dict (the ``/healthz`` shape)."""
        with self._lock:
            running = self._state == "running"
            ready = running and not self.queue.closed \
                and len(self.queue) < self.queue.maxsize
            return {
                "status": self._state,
                "live": running or self._state == "draining",
                "ready": ready,
                "workers_alive": self._supervisor.alive(),
                "queue_depth": len(self.queue),
                "outstanding": sum(1 for j in self.jobs.values()
                                   if not j.terminal),
            }


def install_signal_handlers(
        service: SynthesisService,
        signals: Sequence[int] = (signal.SIGINT, signal.SIGTERM)):
    """Route SIGINT/SIGTERM to ``service.request_shutdown``.

    The handler only sets an event — everything else (drain, journal
    flush) happens in the normal control flow, which is the only way to
    stay async-signal-safe in Python. Returns the previous handlers so
    callers can restore them.
    """
    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(
            signum, lambda s, frame: service.request_shutdown(s))
    return previous


__all__ = [
    "SynthesisService",
    "install_signal_handlers",
    "is_repair_job",
    "job_id_for",
    "options_to_dict",
    "options_from_dict",
]

"""One shard of the synthesis platform: a service in its own process.

A shard is a whole :class:`~repro.service.service.SynthesisService` —
journal, queue, breakers, worker threads — running in a child process
and driven over a :mod:`multiprocessing` pipe by the
:class:`~repro.service.coordinator.ShardCoordinator`. The process
boundary is the point: a shard can be SIGKILLed (by chaos tests, the
OOM killer, or a deploy) without taking the coordinator or its
siblings down, and its own write-ahead journal replays every
non-terminal job when the coordinator respawns it.

The wire protocol is deliberately tiny — request/response tuples
``(verb, payload)`` answered by one dict each, handled strictly in
order by the shard's main thread (the service's worker threads do the
actual solving, so the RPC loop stays responsive while jobs run):

=========  =======================================================
verb       payload → reply
=========  =======================================================
submit     ``{"spec", "options"?, "tenant"?, "priority"?, "corr"?}``
           → ``{"ok": True, "job": <job line>}``
job        ``{"id"}`` → ``{"ok": True, "job": <job line>}``
stats      ``{}`` → ``{"ok": True, "stats", "pid"}``
health     ``{}`` → ``{"ok": True, "health", "pid"}``
telemetry  ``{}`` → ``{"ok": True, "batch": <telemetry batch>}``
           (incremental: records since the previous pull)
stop       ``{"drain", "deadline"?}`` → ``{"ok": True, "summary",
           "batch"?}`` (the reply is the shard's last message,
           carrying its final telemetry batch; it then exits)
=========  =======================================================

Every payload may carry a ``_clock`` key — the coordinator's logical
clock, witnessed by the shard's tracer so merged cross-process traces
order causally-related records consistently (see
:mod:`repro.obs.telemetry`).

Failures inside a handler never kill the loop: they come back as
``{"ok": False, "error": <type name>, "message": ...}`` and the
coordinator re-raises the matching exception. A shard that loses its
pipe (the coordinator died) drains in-flight work and exits — the
journal keeps the rest.

Spawn-safety: :func:`shard_main` is a module-level entry point and
:class:`ShardConfig` is a plain picklable dataclass, so shards start
under the ``spawn`` context (the default — respawning from the
coordinator's monitor thread must not fork a threaded process) as well
as ``fork`` (``REPRO_SERVICE_CTX=fork`` for faster starts where safe).
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.service.backoff import Backoff

#: Environment override for the shard process start method
#: (``spawn``/``fork``/``forkserver``); empty picks the default.
CTX_ENV = "REPRO_SERVICE_CTX"


@dataclass
class ShardConfig:
    """Everything a shard process needs to build its service.

    Must stay picklable under the ``spawn`` start method: plain
    values, dicts (the ``options_to_dict`` form, not the dataclass)
    and a :class:`repro.store.Store` (which pickles by configuration,
    so every shard shares the same on-disk cache).
    """

    index: int
    journal: str
    workers: int = 2
    queue_size: int = 256
    #: ``options_to_dict`` form of the shard's default options.
    options: Dict[str, Any] = field(default_factory=dict)
    backends: Optional[List[str]] = None
    max_attempts: int = 3
    #: Constructor kwargs for the shard's :class:`Backoff` policy.
    backoff: Dict[str, Any] = field(default_factory=dict)
    breaker_threshold: int = 3
    breaker_reset: float = 5.0
    store: Optional[Any] = None
    tenant_quota: Optional[int] = None
    #: Where to write this shard's obs trace on stop (None = no trace).
    trace: Optional[str] = None
    #: Ship spans/events/metrics to the coordinator over the pipe.
    #: Default-on: the shard tracer is bounded, so an idle telemetry
    #: plane costs a few KB, and turning it off would silently blind
    #: ``/metrics`` and per-job flight recorders for this shard.
    telemetry: bool = True


def build_service(config: ShardConfig):
    """The shard's :class:`SynthesisService`, built from its config."""
    from repro.service.service import SynthesisService, options_from_dict

    return SynthesisService(
        config.journal,
        workers=config.workers,
        queue_size=config.queue_size,
        options=options_from_dict(config.options) if config.options else None,
        backends=config.backends,
        max_attempts=config.max_attempts,
        backoff=Backoff(**config.backoff),
        breaker_threshold=config.breaker_threshold,
        breaker_reset=config.breaker_reset,
        store=config.store,
        tenant_quota=config.tenant_quota,
        instance=f"shard-{config.index}",
    )


def _handle(service, verb: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.synthesizer import SynthesisOptions
    from repro.io.spec_json import spec_from_dict
    from repro.service.service import options_from_dict

    if verb == "submit":
        spec = spec_from_dict(payload["spec"])
        options: Optional[SynthesisOptions] = None
        if payload.get("options"):
            options = options_from_dict(payload["options"])
        job_id = service.submit(spec, options,
                                tenant=payload.get("tenant"),
                                priority=int(payload.get("priority", 0)),
                                corr=payload.get("corr"))
        return {"ok": True, "job": service.job(job_id).to_line()}
    if verb == "job":
        return {"ok": True, "job": service.job(payload["id"]).to_line()}
    if verb == "stats":
        return {"ok": True, "stats": service.stats(), "pid": os.getpid()}
    if verb == "health":
        return {"ok": True, "health": service.health(), "pid": os.getpid()}
    raise ReproError(f"unknown shard RPC verb {verb!r}")


def shard_main(config: ShardConfig, conn) -> None:
    """Child-process entry point: serve RPCs until ``stop`` or EOF."""
    # The coordinator owns signal-driven shutdown and talks to shards
    # over the pipe; a terminal Ctrl-C is delivered to the whole
    # foreground process group, and a shard that died on it would turn
    # every interactive interrupt into a (recoverable, but noisy)
    # crash-and-replay instead of a graceful drain.
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)

    # The coordinator starts shards daemonic so an abandoned platform
    # can't outlive its parent — but daemonic processes are forbidden
    # from having children, which would silently knock out every
    # multi-process solver backend (parallel_bb's worker pool would
    # fail to start and degrade to in-process). Clearing the inherited
    # flag restores spawning; grandchildren still can't leak, because
    # B&B workers exit on pipe EOF when their shard dies.
    with contextlib.suppress(Exception):
        mp.current_process()._config["daemon"] = False

    tracer = None
    shipper = None
    if config.trace or config.telemetry:
        from repro.obs import Tracer

        tracer = Tracer(f"shard-{config.index}")
        if config.telemetry:
            from repro.obs.telemetry import TelemetryShipper

            shipper = TelemetryShipper(tracer, source=f"shard-{config.index}")

    from repro.obs.trace import use_tracer

    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        service = build_service(config)
        service.start()
        conn.send({"ok": True, "up": True, "pid": os.getpid(),
                   "index": config.index,
                   "replayed": sum(1 for j in service.jobs.values()
                                   if not j.terminal)})
        stopped = False
        try:
            while True:
                try:
                    if not conn.poll(0.2):
                        continue
                    message = conn.recv()
                except (EOFError, OSError):
                    break  # coordinator died; drain and exit
                verb, payload = message
                if tracer is not None and isinstance(payload, dict) \
                        and "_clock" in payload:
                    tracer.witness(payload.pop("_clock"))
                if verb == "telemetry":
                    reply: Dict[str, Any] = {"ok": True}
                    if shipper is not None:
                        reply["batch"] = shipper.collect()
                    try:
                        conn.send(reply)
                    except (BrokenPipeError, OSError):
                        break
                    continue
                if verb == "stop":
                    summary = service.stop(
                        drain=payload.get("drain", True),
                        deadline=payload.get("deadline"))
                    stopped = True
                    reply = {"ok": True, "summary": summary}
                    if shipper is not None:
                        # Final incremental batch: spans/events emitted
                        # since the last periodic pull (drain included).
                        reply["batch"] = shipper.collect()
                    with contextlib.suppress(OSError):
                        conn.send(reply)
                    break
                try:
                    reply = _handle(service, verb, payload)
                except Exception as exc:
                    reply = {"ok": False, "error": type(exc).__name__,
                             "message": str(exc)}
                if tracer is not None:
                    reply["_clock"] = tracer.clock
                try:
                    conn.send(reply)
                except (BrokenPipeError, OSError):
                    break
        finally:
            if not stopped:
                # Orphaned (coordinator gone): finish what is on a
                # worker, journal the rest for the next incarnation.
                with contextlib.suppress(Exception):
                    service.stop(drain="inflight", deadline=10.0)
            if tracer is not None and config.trace:
                from repro.obs import write_trace_jsonl

                with contextlib.suppress(Exception):
                    write_trace_jsonl(tracer, config.trace)


__all__ = ["CTX_ENV", "ShardConfig", "build_service", "shard_main"]

"""Append-only write-ahead journal for synthesis jobs.

The journal is the service's single source of truth: every job payload
and every state transition is appended (and flushed) *before* the
in-memory structures change, so a process killed at any instant can be
restarted and replayed into exactly the state it died in — terminal
jobs stay terminal (never re-executed), in-flight and queued jobs come
back as pending work.

**Format** (``repro-service-v1``): JSONL. The first line is a header;
a ``job`` line carries the full payload of one job (spec and options in
their canonical JSON forms, plus the current state when written by a
rotation); a ``state`` line records one transition of a previously
declared job. Appends are flushed per line (``fsync`` optional), so the
only loss a kill can cause is a *truncated final line* — replay detects
and drops it (the transition it recorded simply re-happens). Torn lines
anywhere else mean real corruption and raise :class:`JournalError`.

**Rotation**: the journal grows by one line per transition forever, so
:meth:`Journal.rotate` compacts it — the live state is rewritten as one
``job`` line per job through :func:`repro.io.atomic.atomic_write`
(temp file + ``os.replace`` + fsync), which a crash can never turn
into a half-written journal: readers see the old segment or the new
one, nothing in between.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import JournalError
from repro.io.atomic import atomic_write

#: Schema tag of the journal format; bump on incompatible change.
JOURNAL_SCHEMA = "repro-service-v1"

#: Job states a journal may record. ``submitted`` and ``pending`` are
#: queued work (pending = waiting on a retry backoff), ``running`` is
#: in-flight; the last three are terminal and never re-executed.
TERMINAL_STATES = ("done", "degraded", "failed")
JOB_STATES = ("submitted", "pending", "running") + TERMINAL_STATES


@dataclass
class JobRecord:
    """The journaled identity and current state of one job."""

    id: str
    spec: Dict[str, Any]
    options: Dict[str, Any]
    state: str = "submitted"
    attempts: int = 0
    row: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    #: Multi-tenant accounting labels (quota admission, shed events,
    #: queue priority). Absent from pre-platform journals; replay
    #: defaults them, so old segments stay readable.
    tenant: Optional[str] = None
    priority: int = 0
    #: Correlation ID (job fingerprint ⊕ submission ordinal) stamped on
    #: every span/event this job produces anywhere in the platform.
    #: Persisted so a replayed job keeps its original identity in the
    #: telemetry stream; absent from pre-telemetry journals.
    corr: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_line(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "job", "id": self.id, "state": self.state,
            "attempts": self.attempts, "submitted_at": self.submitted_at,
            "spec": self.spec, "options": self.options,
        }
        if self.row is not None:
            record["row"] = self.row
        if self.error is not None:
            record["error"] = self.error
        if self.tenant is not None:
            record["tenant"] = self.tenant
        if self.priority:
            record["priority"] = self.priority
        if self.corr is not None:
            record["corr"] = self.corr
        return record

    @classmethod
    def from_line(cls, record: Dict[str, Any]) -> "JobRecord":
        try:
            job = cls(
                id=record["id"], spec=record["spec"],
                options=record.get("options", {}),
                state=record.get("state", "submitted"),
                attempts=int(record.get("attempts", 0)),
                row=record.get("row"), error=record.get("error"),
                submitted_at=float(record.get("submitted_at", 0.0)),
                tenant=record.get("tenant"),
                priority=int(record.get("priority", 0)),
                corr=record.get("corr"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed job record: {exc}") from exc
        if job.state not in JOB_STATES:
            raise JournalError(f"job {job.id}: unknown state {job.state!r}")
        return job


class Journal:
    """One JSONL write-ahead journal file with replay and rotation."""

    def __init__(self, path: Union[str, Path], sync: bool = False,
                 rotate_after: int = 10_000) -> None:
        self.path = Path(path)
        self.sync = sync
        #: Rotate automatically once this many lines have accumulated.
        self.rotate_after = rotate_after
        self.jobs: Dict[str, JobRecord] = {}
        self._fh = None
        self._lines = 0
        #: Whether replay dropped a truncated trailing line (diagnostic).
        self.recovered_truncation = False

    # -- lifecycle -------------------------------------------------------
    def open(self) -> "Journal":
        """Replay any existing segment, then open for appending."""
        if self._fh is not None:
            return self
        if self.path.exists():
            self._replay()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        if self._lines == 0:
            self._append({"type": "header", "schema": JOURNAL_SCHEMA,
                          "created_unix": round(time.time(), 3)})
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay ----------------------------------------------------------
    def _replay(self) -> None:
        replay = replay_journal(self.path)
        self.jobs = replay.jobs
        self._lines = replay.lines
        self.recovered_truncation = replay.truncated
        if replay.truncated:
            # Cut the torn tail off *before* appending, or the next
            # line would concatenate onto it and corrupt the segment.
            with self.path.open("r+b") as fh:
                fh.truncate(replay.valid_bytes)
        else:
            # A parseable final record missing only its newline (killed
            # between the payload and the terminator) gets one now, so
            # the next append starts on a fresh line.
            raw = self.path.read_bytes()
            if raw and not raw.endswith(b"\n"):
                with self.path.open("ab") as fh:
                    fh.write(b"\n")

    # -- appends ---------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError("journal is not open")
        self._fh.write(json.dumps(record, sort_keys=False) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._lines += 1

    def record_job(self, job: JobRecord) -> None:
        """Journal a new job's full payload (the WAL write of submit)."""
        self._append(job.to_line())
        self.jobs[job.id] = job

    def record_state(self, job_id: str, state: str, attempts: int,
                     row: Optional[Dict[str, Any]] = None,
                     error: Optional[str] = None) -> None:
        """Journal one state transition, then apply it in memory."""
        if state not in JOB_STATES:
            raise JournalError(f"unknown state {state!r}")
        job = self.jobs.get(job_id)
        if job is None:
            raise JournalError(f"state transition for unknown job {job_id}")
        record: Dict[str, Any] = {
            "type": "state", "id": job_id, "state": state,
            "attempts": attempts, "t": round(time.time(), 3),
        }
        if row is not None:
            record["row"] = row
        if error is not None:
            record["error"] = error
        self._append(record)
        job.state = state
        job.attempts = attempts
        if row is not None:
            job.row = row
        if error is not None:
            job.error = error
        if self._lines >= self.rotate_after:
            self.rotate()

    # -- rotation --------------------------------------------------------
    def rotate(self) -> None:
        """Compact the journal to one ``job`` line per live job.

        Written atomically (temp file + ``os.replace`` + fsync), so a
        crash mid-rotate leaves the previous segment fully intact.
        """
        was_open = self._fh is not None
        if was_open:
            self._fh.close()
            self._fh = None
        with atomic_write(self.path, fsync=True) as fh:
            fh.write(json.dumps({
                "type": "header", "schema": JOURNAL_SCHEMA,
                "created_unix": round(time.time(), 3),
                "rotated": True,
            }) + "\n")
            for job_id in sorted(self.jobs):
                fh.write(json.dumps(self.jobs[job_id].to_line()) + "\n")
        self._lines = 1 + len(self.jobs)
        if was_open:
            self._fh = self.path.open("a", encoding="utf-8")

    # -- queries ---------------------------------------------------------
    def pending(self) -> List[JobRecord]:
        """Jobs replay considers runnable (everything non-terminal)."""
        return [job for job in self.jobs.values() if not job.terminal]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts


@dataclass
class ReplayResult:
    """What :func:`replay_journal` recovered from one segment."""

    jobs: Dict[str, JobRecord]
    lines: int
    truncated: bool
    #: File size up to (and including) the last intact newline; a
    #: repairing caller truncates the segment to this many bytes.
    valid_bytes: int


def replay_journal(path: Union[str, Path]) -> ReplayResult:
    """Read one journal segment back into job records.

    A truncated final line — the signature of a crash mid-append — is
    dropped (``truncated=True``); a malformed line anywhere else raises
    :class:`JournalError`.
    """
    path = Path(path)
    jobs: Dict[str, JobRecord] = {}
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    # A complete journal ends with a newline; bytes past the last one
    # are a torn append unless they happen to parse as a full record
    # (a kill between write() and the implicit newline flush).
    cut = raw.rfind(b"\n") + 1
    body, tail = raw[:cut], raw[cut:]
    truncated = bool(tail)
    valid_bytes = cut
    lines = 0
    for lineno, line in enumerate(body.decode("utf-8").split("\n"), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}:{lineno}: not JSON: {exc}") from exc
        _apply(jobs, record, path, lineno)
        lines += 1
    if truncated:
        try:
            record = json.loads(tail.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            record = None  # torn mid-append: drop it, the WAL re-does it
        if record is not None:
            _apply(jobs, record, path, lines + 1)
            lines += 1
            truncated = False
            valid_bytes = len(raw)
    return ReplayResult(jobs, lines, truncated, valid_bytes)


def _apply(jobs: Dict[str, JobRecord], record: Dict[str, Any],
           path: Path, lineno: int) -> None:
    rtype = record.get("type")
    if rtype == "header":
        schema = record.get("schema")
        if schema != JOURNAL_SCHEMA:
            raise JournalError(
                f"{path}:{lineno}: unsupported journal schema {schema!r} "
                f"(this reader understands {JOURNAL_SCHEMA})")
    elif rtype == "job":
        job = JobRecord.from_line(record)
        jobs[job.id] = job
    elif rtype == "state":
        job = jobs.get(record.get("id"))
        if job is None:
            raise JournalError(
                f"{path}:{lineno}: state for undeclared job {record.get('id')!r}")
        state = record.get("state")
        if state not in JOB_STATES:
            raise JournalError(f"{path}:{lineno}: unknown state {state!r}")
        job.state = state
        job.attempts = int(record.get("attempts", job.attempts))
        if "row" in record:
            job.row = record["row"]
        if "error" in record:
            job.error = record["error"]
    else:
        raise JournalError(f"{path}:{lineno}: unknown record type {rtype!r}")


def validate_journal(path: Union[str, Path]) -> Dict[str, int]:
    """Schema-check one journal; returns the job-state counts.

    Used by the chaos tests and CI: replays the file with full strict
    checks and additionally asserts that no terminal job ever recorded
    a second terminal transition (exactly-once completion).
    """
    path = Path(path)
    terminal_seen: Dict[str, int] = {}
    jobs: Dict[str, JobRecord] = {}
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}:{lineno}: not JSON: {exc}") from exc
        _apply(jobs, record, path, lineno)
        if record.get("type") == "state" and \
                record.get("state") in TERMINAL_STATES:
            job_id = record["id"]
            terminal_seen[job_id] = terminal_seen.get(job_id, 0) + 1
            if terminal_seen[job_id] > 1:
                raise JournalError(
                    f"{path}:{lineno}: job {job_id} completed twice")
    counts: Dict[str, int] = {}
    for job in jobs.values():
        counts[job.state] = counts.get(job.state, 0) + 1
    return counts


__all__ = ["JOURNAL_SCHEMA", "JOB_STATES", "TERMINAL_STATES", "JobRecord",
           "Journal", "replay_journal", "validate_journal"]

"""Shard coordinator: routes jobs to worker processes, survives their death.

The coordinator owns N :mod:`~repro.service.shard` processes and is the
single in-process façade the HTTP front-end and CLI talk to. Three
responsibilities:

**Routing.** A submission's identity is computed *before* it leaves the
coordinator — ``job_id_for(spec, options)``, the same case⊕config
fingerprint the shard's service would compute — and hashed
(``crc32(job_id) % shards``) to pick a shard. The hash is stable across
restarts and processes, so a resubmission of the same work always lands
on the shard already holding its journal entry, and the per-shard
idempotent-submission logic keeps doing its job unchanged. (Changing
the shard *count* remaps jobs; that is safe too, because every shard
shares one content-addressed store — the remapped shard's admission
check hits the store and journals the job straight to ``done``.)

**Recovery.** A monitor thread watches the shard processes. When one
dies — SIGKILL, OOM, a native crash in a solver — the coordinator
respawns it *on the same journal file*: replay re-journals every
non-terminal job, retries recompute their backoff ready-times from the
persisted attempt count (no thundering herd), and nothing is lost or
run twice. In-flight RPCs against a dead shard fail over to the fresh
incarnation and are retried once; submissions are idempotent, so the
retry is safe.

**Aggregation.** ``stats()``/``health()`` merge per-shard views and add
coordinator-level facts (pids, restart counts, routing table), which is
what ``GET /stats`` and ``GET /health`` serve.

**Telemetry.** The monitor thread doubles as the telemetry pump: about
once a second it pulls an incremental batch (``telemetry`` verb) from
every live shard into a :class:`~repro.obs.telemetry.TelemetryCollector`,
whose merged stream, aggregated metric snapshots and per-job flight
recorder back ``GET /metrics``, ``GET /jobs/<id>/trace`` and the merged
trace artifact written on :meth:`stop`. Logical clocks piggyback on
every RPC in both directions (``_clock`` in payload and reply), so the
deterministic merge orders causally-related records consistently.

Pipes are not thread-safe, so every shard has its own lock serializing
request/response pairs; the HTTP tier's many threads contend only when
they target the same shard.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import threading
import time
import zlib
from typing import Any, Dict, List, Optional

from repro.errors import AdmissionError, ServiceError
from repro.obs.telemetry import TelemetryCollector, _merge_histogram
from repro.obs.trace import current_tracer, obs_event
from repro.service.journal import TERMINAL_STATES
from repro.service.shard import CTX_ENV, ShardConfig, shard_main

#: How long to wait for a freshly spawned shard's "up" handshake.
SPAWN_DEADLINE = 60.0
#: Poll slice while waiting on an RPC reply; liveness is checked
#: between slices so a killed shard fails the call quickly.
RPC_SLICE = 0.1
#: How often the monitor thread pulls telemetry batches from shards.
TELEMETRY_INTERVAL = 1.0


class ShardError(ServiceError):
    """A shard RPC failed (dead shard, handler error, protocol break)."""


def pick_context() -> mp.context.BaseContext:
    """The process start method for shards.

    ``spawn`` by default: shards are respawned from the coordinator's
    monitor *thread*, and forking a multithreaded process is undefined
    behaviour waiting to happen. ``REPRO_SERVICE_CTX=fork`` opts into
    faster starts where the embedder knows it is safe.
    """
    choice = os.environ.get(CTX_ENV, "").strip().lower()
    if choice:
        return mp.get_context(choice)
    return mp.get_context("spawn")


class _Shard:
    """Coordinator-side handle: process + pipe + lock + lifecycle stats."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn: Any = None
        self.lock = threading.Lock()
        self.restarts = 0
        self.pid: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ShardCoordinator:
    """N shard processes behind one submit/job/stats/health interface."""

    def __init__(
        self,
        journal_dir: str,
        *,
        shards: int = 2,
        workers: int = 2,
        queue_size: int = 256,
        options: Optional[Dict[str, Any]] = None,
        backends: Optional[List[str]] = None,
        max_attempts: int = 3,
        backoff: Optional[Dict[str, Any]] = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
        store: Optional[Any] = None,
        tenant_quota: Optional[int] = None,
        trace_dir: Optional[str] = None,
        telemetry: bool = True,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"shards must be >= 1, got {shards}")
        from pathlib import Path

        self.journal_dir = Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.telemetry = telemetry
        #: Parent-side accumulator for every shard's telemetry batches.
        self.collector = TelemetryCollector()
        if store is not None and not hasattr(store, "get"):
            from repro.store import Store

            store = Store(store)
        self.store = store
        self._ctx = pick_context()
        self._shards: List[_Shard] = []
        for index in range(shards):
            trace = None
            if trace_dir is not None:
                trace = str(Path(trace_dir) / f"shard-{index}-trace.jsonl")
            self._shards.append(_Shard(ShardConfig(
                index=index,
                journal=str(self.journal_dir / f"shard-{index}.jsonl"),
                workers=workers,
                queue_size=queue_size,
                options=dict(options or {}),
                backends=list(backends) if backends else None,
                max_attempts=max_attempts,
                backoff=dict(backoff or {}),
                breaker_threshold=breaker_threshold,
                breaker_reset=breaker_reset,
                store=store,
                tenant_quota=tenant_quota,
                trace=trace,
                telemetry=telemetry,
            )))
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False
        self._tracer_ctx: Optional[Any] = None

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "ShardCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def shards(self) -> int:
        return len(self._shards)

    def start(self) -> None:
        if self._started:
            return
        if self.telemetry and current_tracer() is None:
            # No ambient tracer (e.g. embedded use without --trace):
            # install our own so coordinator-side spans/events (submit,
            # shard_up, restarts) still appear in the merged stream.
            from repro.obs.trace import Tracer, use_tracer

            self._tracer_ctx = use_tracer(Tracer("coordinator"))
            self._tracer_ctx.__enter__()
        for shard in self._shards:
            self._spawn(shard, reason="start")
        self._monitor = threading.Thread(
            target=self._watch, name="shard-monitor", daemon=True)
        self._monitor.start()
        self._started = True

    def _spawn(self, shard: _Shard, reason: str) -> None:
        """(Re)start one shard and wait for its journal replay to finish.

        Called with ``shard.lock`` held (or before any other thread can
        reach the shard). The "up" handshake doubles as a barrier: once
        it arrives, the shard has replayed its journal and is accepting
        RPCs, so a failed-over call retried against the new process
        sees all pre-crash state.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_main, args=(shard.config, child_conn),
            name=f"repro-shard-{shard.config.index}", daemon=True)
        process.start()
        child_conn.close()
        deadline = time.monotonic() + SPAWN_DEADLINE
        while not parent_conn.poll(RPC_SLICE):
            if time.monotonic() > deadline or not process.is_alive():
                with contextlib.suppress(Exception):
                    process.terminate()
                raise ShardError(
                    f"shard {shard.config.index} failed to come up "
                    f"({reason}); journal {shard.config.journal}")
        try:
            hello = parent_conn.recv()
        except (EOFError, OSError) as exc:
            with contextlib.suppress(Exception):
                process.terminate()
            raise ShardError(
                f"shard {shard.config.index} died during startup "
                f"({reason}); journal {shard.config.journal}") from exc
        shard.process = process
        shard.conn = parent_conn
        shard.pid = hello.get("pid")
        obs_event("shard_up", shard=shard.config.index, pid=shard.pid,
                  reason=reason, replayed=hello.get("replayed", 0))

    def _watch(self) -> None:
        """Monitor thread: respawn dead shards, pump telemetry batches."""
        last_pull = time.monotonic()
        while not self._stopping.is_set():
            for shard in self._shards:
                if self._stopping.is_set():
                    break
                if shard.process is not None and not shard.alive:
                    # A concurrent RPC holding the lock will discover
                    # the death itself and fail over; don't fight it.
                    if shard.lock.acquire(timeout=0.05):
                        try:
                            if not shard.alive and not self._stopping.is_set():
                                self._recover(shard)
                        finally:
                            shard.lock.release()
            if self.telemetry and \
                    time.monotonic() - last_pull >= TELEMETRY_INTERVAL:
                last_pull = time.monotonic()
                self.pull_telemetry()
            self._stopping.wait(0.2)

    def pull_telemetry(self) -> int:
        """Pull one incremental telemetry batch from every live shard.

        Returns the number of batches absorbed. Normally driven by the
        monitor thread; callable directly (tests, ``stop``, chaos
        harnesses) to flush without waiting an interval.
        """
        if not self.telemetry:
            return 0
        absorbed = 0
        for shard in self._shards:
            if self._stopping.is_set() or not shard.alive:
                continue
            try:
                reply = self._call(shard.config.index, "telemetry", {})
            except (ShardError, AdmissionError):
                continue  # dead/respawning shard: its final batch is lost
            batch = reply.get("batch")
            if batch is not None and self.collector.absorb(batch):
                absorbed += 1
        return absorbed

    def _recover(self, shard: _Shard) -> None:
        """Respawn a dead shard on its journal. Caller holds the lock."""
        if shard.process is not None and shard.process.is_alive():
            # Pipe broke but the process lingers: make sure the old
            # incarnation is dead before a new one opens its journal.
            with contextlib.suppress(Exception):
                shard.process.terminate()
                shard.process.join(timeout=5.0)
        exitcode = shard.process.exitcode if shard.process else None
        shard.restarts += 1
        obs_event("shard_crashed", shard=shard.config.index,
                  pid=shard.pid, exitcode=exitcode)
        if shard.conn is not None:
            with contextlib.suppress(Exception):
                shard.conn.close()
        self._spawn(shard, reason="crash")
        obs_event("shard_restarted", shard=shard.config.index,
                  pid=shard.pid, restarts=shard.restarts)

    def stop(self, drain: Any = True,
             deadline: Optional[float] = None) -> Dict[str, Any]:
        """Stop every shard (RPC first, escalating to terminate)."""
        was_started = self._started
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        summaries: Dict[str, Any] = {"shards": {}, "stopped": True}
        for shard in self._shards:
            with shard.lock:
                summary = None
                if shard.alive:
                    try:
                        shard.conn.send(("stop", {"drain": drain,
                                                  "deadline": deadline}))
                        wait_until = time.monotonic() + (
                            (deadline or 30.0) + 10.0)
                        while not shard.conn.poll(RPC_SLICE):
                            if (time.monotonic() > wait_until
                                    or not shard.alive):
                                break
                        else:
                            reply = shard.conn.recv()
                            if reply.get("ok"):
                                summary = reply.get("summary")
                                if reply.get("batch") is not None:
                                    # The shard's final increment rides
                                    # on its last message.
                                    self.collector.absorb(reply["batch"])
                    except (BrokenPipeError, EOFError, OSError):
                        pass
                if shard.process is not None:
                    shard.process.join(timeout=10.0)
                    if shard.process.is_alive():
                        shard.process.terminate()
                        shard.process.join(timeout=5.0)
                if shard.conn is not None:
                    with contextlib.suppress(Exception):
                        shard.conn.close()
                summaries["shards"][str(shard.config.index)] = summary
        if self.trace_dir is not None and self.telemetry and was_started:
            # One merged artifact next to the per-shard traces: the
            # whole platform's record stream as a single valid trace.
            # (Guarded on was_started so a second stop() — e.g. the
            # context manager exiting after an explicit stop — cannot
            # rewrite it after the coordinator tracer is gone.)
            from repro.obs import write_trace_jsonl

            with contextlib.suppress(Exception):
                self.trace_dir.mkdir(parents=True, exist_ok=True)
                write_trace_jsonl(
                    self.telemetry_records(),
                    str(self.trace_dir / "merged-trace.jsonl"))
        if self._tracer_ctx is not None:
            self._tracer_ctx.__exit__(None, None, None)
            self._tracer_ctx = None
        self._started = False
        return summaries

    # -- chaos -----------------------------------------------------------
    def kill_shard(self, index: int) -> Optional[int]:
        """SIGKILL one shard process (fault injection; monitor recovers).

        Returns the killed pid, or None if the shard was not running.
        """
        shard = self._shards[index]
        pid = shard.pid if shard.alive else None
        if pid is not None:
            with contextlib.suppress(ProcessLookupError, OSError):
                os.kill(pid, signal.SIGKILL)
        return pid

    # -- routing & RPC ---------------------------------------------------
    def route(self, job_id: str) -> int:
        """Stable shard index for a job id."""
        return zlib.crc32(job_id.encode("utf-8")) % len(self._shards)

    def _call(self, index: int, verb: str,
              payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response against a shard, failing over once.

        If the shard dies mid-call (killed between send and reply), the
        call respawns it and retries: every verb is either read-only or
        an idempotent submission, so at-least-once delivery is sound.
        """
        shard = self._shards[index]
        tracer = current_tracer() if self.telemetry else None
        reply: Optional[Dict[str, Any]] = None
        with shard.lock:
            for attempt in (0, 1):
                if not shard.alive:
                    if self._stopping.is_set():
                        raise ShardError(
                            f"shard {index} unavailable (stopping)")
                    self._recover(shard)
                try:
                    if tracer is not None:
                        payload["_clock"] = tracer.clock
                    shard.conn.send((verb, payload))
                    while not shard.conn.poll(RPC_SLICE):
                        if not shard.alive:
                            raise BrokenPipeError(
                                f"shard {index} died mid-call")
                    reply = shard.conn.recv()
                    break
                except (BrokenPipeError, EOFError, OSError):
                    if attempt == 0 and not self._stopping.is_set():
                        # A freshly SIGKILLed process can report alive
                        # until the OS reaps it — wait out the death so
                        # the retry path sees it and respawns.
                        if shard.process is not None:
                            shard.process.join(timeout=5.0)
                        continue
                    raise ShardError(
                        f"shard {index} died during {verb!r} and "
                        f"failover failed") from None
        if reply is None:  # pragma: no cover - loop always breaks/raises
            raise ShardError(f"shard {index} unreachable")
        if tracer is not None and "_clock" in reply:
            tracer.witness(reply.pop("_clock"))
        if reply.get("ok"):
            return reply
        if reply.get("error") == "AdmissionError":
            raise AdmissionError(reply.get("message", "admission refused"))
        raise ShardError(
            f"shard {index} {verb!r} failed: "
            f"{reply.get('error')}: {reply.get('message')}")

    # -- the service-shaped surface --------------------------------------
    def submit(self, spec_dict: Dict[str, Any],
               options_dict: Optional[Dict[str, Any]] = None, *,
               tenant: Optional[str] = None,
               priority: int = 0,
               corr: Optional[str] = None) -> Dict[str, Any]:
        """Route a submission to its shard; returns the job line."""
        from repro.core.synthesizer import SynthesisOptions
        from repro.io.spec_json import spec_from_dict
        from repro.service.service import job_id_for, options_from_dict

        spec = spec_from_dict(spec_dict)  # validates before routing
        if options_dict:
            effective = options_from_dict(options_dict)
        elif self._shards[0].config.options:
            effective = options_from_dict(self._shards[0].config.options)
        else:
            effective = SynthesisOptions()
        job_id = job_id_for(spec, effective)
        index = self.route(job_id)
        payload: Dict[str, Any] = {"spec": spec_dict, "priority": priority}
        if options_dict:
            payload["options"] = options_dict
        if tenant is not None:
            payload["tenant"] = tenant
        if corr is not None:
            payload["corr"] = corr
        reply = self._call(index, "submit", payload)
        job = dict(reply["job"])
        job["shard"] = index
        return job

    def submit_repair(self, job_id: str, faults) -> Dict[str, Any]:
        """Turn observed faults on a completed job into a repair job.

        Coordinator-side on purpose: the original job line (spec,
        options, corr) is fetched from its owning shard, the spec is
        masked here, and the degraded spec goes through the normal
        :meth:`submit` — so the repair job hashes to its *own* id and
        lands on whichever shard the crc32 ring assigns it, keeping the
        routing invariant (resubmissions and journal replays find the
        same shard). ``faults`` is a list of
        :class:`~repro.sim.faults.ValveFault`s, ``(a, b, kind)``
        triples, or a :class:`~repro.switches.health.HealthMask`. The
        repair inherits the original's correlation ID, tenant and
        priority.
        """
        from repro.io.spec_json import spec_from_dict, switch_to_dict
        from repro.repair.engine import as_mask, mask_spec
        from repro.sim.faults import ValveFault
        from repro.switches.health import HealthMask

        if isinstance(faults, HealthMask):
            mask = faults
        elif faults and isinstance(faults[0], ValveFault):
            mask = as_mask(faults)
        else:
            mask = HealthMask.from_triples(faults)
        original = self.job(job_id)
        spec = mask_spec(spec_from_dict(original["spec"]), mask)
        spec_dict = dict(original["spec"])
        spec_dict["switch"] = switch_to_dict(spec.switch)
        return self.submit(
            spec_dict,
            original.get("options") or None,
            tenant=original.get("tenant"),
            priority=int(original.get("priority") or 0),
            corr=original.get("corr"),
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        """The job line from its owning shard (KeyError if unknown)."""
        index = self.route(job_id)
        try:
            reply = self._call(index, "job", {"id": job_id})
        except ShardError as exc:
            if "unknown job" in str(exc):
                raise KeyError(job_id) from None
            raise
        job = dict(reply["job"])
        job["shard"] = index
        return job

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Poll a job until terminal; returns its final line.

        Long-polling lives here, coordinator-side, so the shard RPC
        loop never blocks on one caller's patience.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                return job
            time.sleep(0.05)

    #: Numeric per-shard stats that are meaningful summed.
    _SUMMED = ("queue_depth", "in_flight", "shed", "worker_crashes")

    def stats(self) -> Dict[str, Any]:
        """Aggregate per-shard stats plus coordinator-level facts."""
        per_shard: Dict[str, Any] = {}
        totals: Dict[str, int] = {name: 0 for name in self._SUMMED}
        states: Dict[str, int] = {}
        tenants: Dict[str, Dict[str, int]] = {}
        depth_high_water = 0
        latency: Dict[str, Dict[str, Any]] = {}
        for shard in self._shards:
            key = str(shard.config.index)
            try:
                reply = self._call(shard.config.index, "stats", {})
            except ShardError as exc:
                per_shard[key] = {"error": str(exc),
                                  "restarts": shard.restarts}
                continue
            stats = reply["stats"]
            per_shard[key] = {
                "pid": reply.get("pid"),
                "restarts": shard.restarts,
                **stats,
            }
            for name in self._SUMMED:
                totals[name] += int(stats.get(name, 0))
            depth_high_water = max(depth_high_water,
                                   int(stats.get("queue_depth_max", 0)))
            for name, snap in (stats.get("latency") or {}).items():
                merged = latency.get(name)
                if merged is None:
                    latency[name] = dict(snap)
                else:
                    _merge_histogram(merged, snap)
            for state, count in stats.get("jobs", {}).items():
                states[state] = states.get(state, 0) + int(count)
            for tenant, per in stats.get("tenants", {}).items():
                merged = tenants.setdefault(tenant, {})
                for state, count in per.items():
                    merged[state] = merged.get(state, 0) + int(count)
        out = {
            "shards": per_shard,
            "jobs": states,
            "tenants": tenants,
            "restarts": sum(s.restarts for s in self._shards),
            "queue_depth_max": depth_high_water,
            **totals,
        }
        if latency:
            out["latency"] = latency
        if self.telemetry:
            out["telemetry"] = {
                "sources": len(self.collector.sources()),
                "dropped": self.collector.dropped_total(),
                "rejected": self.collector.rejected,
            }
        return out

    # -- telemetry surface ------------------------------------------------
    def telemetry_records(self) -> List[Dict[str, Any]]:
        """One merged ``repro-obs-v1`` stream over every shard batch.

        Includes the coordinator process's own tracer records (when one
        is installed) as a peer stream, so a merged trace shows the
        coordinator's routing/restart events alongside shard spans.
        """
        extra = None
        tracer = current_tracer()
        if tracer is not None:
            extra = [(tracer.name or "coordinator", os.getpid(),
                      tracer.records())]
        return self.collector.merged(extra=extra)

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Latest per-stream metric snapshots, keyed ``source@pid``.

        The coordinator's own registry (when a tracer is installed)
        appears as one more stream, so ``/metrics`` exposes parent-side
        counters next to shard-side ones. Pulls a fresh batch first so
        a scrape always reflects the shards' current totals rather
        than the last monitor-interval snapshot.
        """
        self.pull_telemetry()
        sources = self.collector.metrics_by_source()
        tracer = current_tracer()
        if tracer is not None:
            name = tracer.name or "coordinator"
            sources[f"{name}@{os.getpid()}"] = tracer.metrics.snapshot()
        return sources

    def job_trace(self, job_id: str) -> List[Dict[str, Any]]:
        """Flight-recorder trace for a recent job (KeyError if absent).

        ``job_id`` may be a bare job id or a full correlation ID. Pulls
        a fresh batch first so a job that just finished is visible
        without waiting out the telemetry interval.
        """
        self.pull_telemetry()
        records = self.collector.flight.trace(job_id)
        if records is None:
            raise KeyError(job_id)
        return records

    def health(self) -> Dict[str, Any]:
        """Rolled-up liveness: ok iff every shard is live and ready."""
        shard_health: Dict[str, Any] = {}
        ok = True
        for shard in self._shards:
            key = str(shard.config.index)
            try:
                reply = self._call(shard.config.index, "health", {})
            except ShardError as exc:
                shard_health[key] = {"live": False, "ready": False,
                                     "reason": str(exc)}
                ok = False
                continue
            info = dict(reply["health"])
            info["pid"] = reply.get("pid")
            info["restarts"] = shard.restarts
            shard_health[key] = info
            ok = ok and bool(info.get("live")) and bool(info.get("ready"))
        return {"ok": ok, "shards": shard_health}


__all__ = ["ShardCoordinator", "ShardError", "pick_context",
           "SPAWN_DEADLINE", "TELEMETRY_INTERVAL"]

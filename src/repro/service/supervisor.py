"""Supervised worker pool: threads that are restarted, not mourned.

The execution handler the service installs captures job-level failures
itself, so a worker thread dying is *always* a bug or an injected
chaos fault — either way the pool must not silently shrink. The
supervisor wraps every worker body: an escaped exception emits a
``worker_crashed`` event, increments the ``service_worker_crashes``
counter, and a replacement thread is started immediately (unless the
pool is stopping). The job the worker held is the handler's problem —
it was journaled ``running`` and will be replayed or retried.

Workers are threads, not processes: a synthesis job is one in-process
MILP solve, and the batch layer already covers process-pool isolation.
Threads keep the journal, breakers and metrics in one address space —
the properties the WAL protects are about *process* death, which is
exercised end-to-end by the chaos tests (SIGKILL + restart).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.obs.trace import obs_event


class Supervisor:
    """Keeps ``count`` worker threads alive running ``body`` in a loop.

    ``body(worker_id)`` is called repeatedly until it returns False
    (the worker's orderly exit signal, typically "queue closed and
    drained"). If ``body`` raises, the crash is recorded and a fresh
    thread takes over the worker id.
    """

    def __init__(self, count: int, body: Callable[[int], bool],
                 name: str = "synth-worker") -> None:
        self.count = count
        self.body = body
        self.name = name
        self.crashes = 0
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = False

    def start(self) -> None:
        with self._lock:
            self._stopping = False
        for worker_id in range(self.count):
            self._spawn(worker_id)

    def _spawn(self, worker_id: int) -> None:
        thread = threading.Thread(
            target=self._run, args=(worker_id,),
            name=f"{self.name}-{worker_id}", daemon=True)
        with self._lock:
            self._threads.append(thread)
        thread.start()

    def _run(self, worker_id: int) -> None:
        try:
            while self.body(worker_id):
                pass
        except BaseException as exc:  # supervised: restart, don't vanish
            with self._lock:
                self.crashes += 1
                stopping = self._stopping
            obs_event("worker_crashed", worker=worker_id,
                      error=f"{type(exc).__name__}: {exc}")
            if not stopping:
                self._spawn(worker_id)

    def stop(self, timeout: Optional[float] = None) -> None:
        """Mark the pool stopping and join every thread."""
        with self._lock:
            self._stopping = True
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)

    def alive(self) -> int:
        with self._lock:
            return sum(t.is_alive() for t in self._threads)


__all__ = ["Supervisor"]

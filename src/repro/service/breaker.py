"""Per-backend circuit breakers.

A solver backend that has crashed or timed out N times in a row is very
likely to keep doing so; feeding it every retry wastes the retry budget
of every job in the queue. A :class:`CircuitBreaker` sits in front of
each backend in the service's degradation ladder and implements the
classic three-state machine:

* **closed** — healthy; calls flow, consecutive failures are counted.
* **open** — ``failure_threshold`` consecutive failures tripped it;
  all calls are refused (the service falls through to the next backend
  in the ladder) until ``reset_timeout`` seconds have passed.
* **half-open** — after the cooldown, exactly *one* probe call is let
  through. Success closes the breaker; failure re-opens it and restarts
  the cooldown.

The clock is injectable so tests drive the state machine without
sleeping; state transitions are reported through ``repro.obs`` as
``breaker_open`` / ``breaker_half_open`` / ``breaker_close`` events.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ReproError
from repro.obs.trace import obs_event

#: The three breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Failure-counting gate in front of one backend."""

    def __init__(self, name: str, failure_threshold: int = 3,
                 reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout < 0:
            raise ReproError(
                f"reset_timeout must be non-negative, got {reset_timeout}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        #: Cumulative counts, exported via ``Service.stats()``.
        self.opens = 0
        self.refusals = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        """Current state with the cooldown applied (lock held)."""
        if self._state == OPEN and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.reset_timeout:
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether one call may proceed right now.

        In half-open state only the first caller gets a True (the
        probe); concurrent callers are refused until the probe reports
        back via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            state = self._peek_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                if self._state == OPEN:
                    # Cooldown elapsed: transition for real and announce.
                    self._state = HALF_OPEN
                    self._probing = False
                    obs_event("breaker_half_open", backend=self.name)
                if self._probing:
                    self.refusals += 1
                    return False
                self._probing = True
                return True
            self.refusals += 1
            return False

    def record_success(self) -> None:
        """A call through this breaker completed healthily."""
        with self._lock:
            if self._state != CLOSED:
                obs_event("breaker_close", backend=self.name)
            self._state = CLOSED
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """A call through this breaker crashed or timed out."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or \
                    self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    self.opens += 1
                    obs_event("breaker_open", backend=self.name,
                              failures=self._failures)
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False

    def release_probe(self) -> None:
        """The caller holding the half-open probe slot died reporting
        nothing.

        A worker crash between :meth:`allow` and the verdict call would
        otherwise leave the breaker half-open with ``_probing`` stuck
        True — every later ``allow`` refused, the backend permanently
        fenced off by a slot nobody holds. A vanished probe is treated
        as a failed one: re-open and restart the cooldown so the next
        matured probe gets a fresh slot. Outside a held half-open probe
        (the call was admitted through a *closed* breaker) there is
        nothing to release — the crash was not the backend's answer,
        and the retry path owns the job.
        """
        with self._lock:
            if self._state == HALF_OPEN and self._probing:
                self.opens += 1
                obs_event("breaker_open", backend=self.name,
                          failures=self._failures, probe_crashed=True)
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._peek_state(),
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "refusals": self.refusals,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state})"


class BreakerBoard:
    """The per-backend breaker map owned by one service."""

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, backend: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = self._breakers[backend] = CircuitBreaker(
                    backend, self.failure_threshold, self.reset_timeout,
                    self._clock)
            return breaker

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            breakers = list(self._breakers.items())
        return {name: b.snapshot() for name, b in sorted(breakers)}


__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker", "BreakerBoard"]

"""Stdlib HTTP/JSON front-end for the sharded synthesis platform.

One small, dependency-free network surface over a
:class:`~repro.service.coordinator.ShardCoordinator` — enough for a
cluster of solver boxes behind a load balancer, a CI smoke test, or
``repro submit --url`` from a laptop, without pulling a web framework
into a reproduction repo:

========================  ============================================
``POST /jobs``            body ``{"spec": {...}, "options"?: {...},
                          "tenant"?: str, "priority"?: int}`` →
                          ``202`` + job JSON (accepted / already in
                          flight), ``200`` when the job is already
                          terminal (idempotent resubmission or a
                          store-dedup admission hit), ``400`` malformed,
                          ``429`` shed (queue full / tenant quota),
                          ``503`` shard unavailable.
``GET /jobs/<id>``        ``200`` + job JSON, ``404`` unknown.
                          ``?wait=SECONDS`` long-polls until the job is
                          terminal or the wait (capped at
                          ``MAX_WAIT``) expires — the response is the
                          job's state either way; callers re-poll.
``GET /jobs/<id>/trace``  ``200`` + the job's flight-recorder trace
                          (``{"job", "records": [...]}``, a standalone
                          schema-valid ``repro-obs-v1`` stream), ``404``
                          when the job was never seen or has aged out
                          of the bounded ring.
``GET /health``           ``200`` when every shard is live+ready,
                          else ``503``; body is the rolled-up dict.
``GET /stats``            ``200`` + aggregated coordinator stats
                          (queue depth high-water, latency histograms,
                          telemetry plane counters).
``GET /metrics``          ``200`` + Prometheus text exposition of every
                          stream's metrics (per-shard ``instance``
                          labels) plus platform rollups with per-tenant
                          and per-state labels.
========================  ============================================

Requests are served by :class:`ThreadingHTTPServer` — one thread per
connection, which is fine because handlers only do pipe RPCs and
sleeps; the coordinator's per-shard locks serialize actual shard
traffic. Long-polling happens here (coordinator ``wait``), never
inside a shard, so a slow client cannot stall a shard's RPC loop.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import AdmissionError, ReproError
from repro.service.coordinator import ShardCoordinator, ShardError

#: Per-request cap on ``?wait=`` long-polls, so a client cannot pin a
#: handler thread forever; clients needing longer just poll again.
MAX_WAIT = 30.0
#: Refuse request bodies larger than this (a spec is a few KB).
MAX_BODY = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the coordinator attached to the server."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    @property
    def coordinator(self) -> ShardCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # obs events carry the signal; stderr chatter does not

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        with contextlib.suppress(BrokenPipeError, ConnectionResetError):
            self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        with contextlib.suppress(BrokenPipeError, ConnectionResetError):
            self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length <= 0 or length > MAX_BODY:
            self._error(400, f"body required, at most {MAX_BODY} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object")
            return None
        return payload

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parts = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return parts.path.rstrip("/") or "/", query

    def _metrics_text(self) -> str:
        """Prometheus exposition: per-stream series + platform rollups."""
        from repro.obs.telemetry import render_prometheus, series_from_sources

        coordinator = self.coordinator
        series = series_from_sources(coordinator.metrics_snapshot())
        stats = coordinator.stats()
        for state, count in sorted(stats.get("jobs", {}).items()):
            series.append(("platform_jobs", {"state": state},
                           {"kind": "gauge", "value": count}))
        for tenant, per in sorted(stats.get("tenants", {}).items()):
            for state, count in sorted(per.items()):
                series.append(("platform_tenant_jobs",
                               {"tenant": tenant, "state": state},
                               {"kind": "gauge", "value": count}))
        for name, kind in (("queue_depth", "gauge"), ("in_flight", "gauge"),
                           ("queue_depth_max", "gauge"), ("shed", "counter"),
                           ("restarts", "counter"),
                           ("worker_crashes", "counter")):
            series.append((f"platform_{name}", {},
                           {"kind": kind, "value": stats.get(name, 0)}))
        for name, value in sorted(stats.get("telemetry", {}).items()):
            series.append((f"platform_telemetry_{name}", {},
                           {"kind": "gauge", "value": value}))
        for name, snap in sorted(stats.get("latency", {}).items()):
            series.append((f"platform_{name}", {},
                           dict(snap, kind="histogram")))
        return render_prometheus(series)

    # -- verbs -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path, _ = self._route()
        if path.startswith("/jobs/") and path.endswith("/repair"):
            self._post_repair(path[len("/jobs/"):-len("/repair")])
            return
        if path != "/jobs":
            self._error(404, f"no such resource: {path}")
            return
        payload = self._read_body()
        if payload is None:
            return
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            self._error(400, 'body must carry a "spec" object')
            return
        options = payload.get("options")
        if options is not None and not isinstance(options, dict):
            self._error(400, '"options" must be an object when given')
            return
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            self._error(400, '"tenant" must be a string when given')
            return
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            self._error(400, '"priority" must be an integer')
            return
        corr = payload.get("corr")
        if corr is not None and not isinstance(corr, str):
            self._error(400, '"corr" must be a string when given')
            return
        try:
            job = self.coordinator.submit(spec, options,
                                          tenant=tenant, priority=priority,
                                          corr=corr)
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc), "shed": True})
            return
        except ShardError as exc:
            self._error(503, str(exc))
            return
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            self._error(400, f"invalid submission: {exc}")
            return
        from repro.service.journal import TERMINAL_STATES

        status = 200 if job.get("state") in TERMINAL_STATES else 202
        self._send_json(status, job)

    def _post_repair(self, job_id: str) -> None:
        """``POST /jobs/<id>/repair`` — journal a repair of a prior job.

        Body: ``{"faults": [[a, b, kind], ...]}`` using the canonical
        health-mask triples (kinds ``stuck_open``/``stuck_closed``/
        ``blocked_segment``). Dedup follows the normal submission path:
        the same fault set against the same job yields the same repair
        job id, so retries are exactly-once.
        """
        if not job_id or "/" in job_id:
            self._error(404, f"no such resource: /jobs/{job_id}/repair")
            return
        payload = self._read_body()
        if payload is None:
            return
        faults = payload.get("faults")
        if not isinstance(faults, list) or not faults:
            self._error(400, 'body must carry a non-empty "faults" array')
            return
        try:
            job = self.coordinator.submit_repair(job_id, faults)
        except KeyError:
            self._error(404, f"unknown job {job_id}")
            return
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc), "shed": True})
            return
        except ShardError as exc:
            self._error(503, str(exc))
            return
        except (ReproError, TypeError, ValueError) as exc:
            self._error(400, f"invalid repair request: {exc}")
            return
        from repro.service.journal import TERMINAL_STATES

        status = 200 if job.get("state") in TERMINAL_STATES else 202
        self._send_json(status, job)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path, query = self._route()
        if path == "/health":
            health = self.coordinator.health()
            self._send_json(200 if health.get("ok") else 503, health)
            return
        if path == "/stats":
            self._send_json(200, self.coordinator.stats())
            return
        if path == "/metrics":
            try:
                self._send_text(200, self._metrics_text())
            except ShardError as exc:
                self._error(503, str(exc))
            return
        if path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/"):-len("/trace")]
            if not job_id or "/" in job_id:
                self._error(404, f"no such resource: {path}")
                return
            try:
                records = self.coordinator.job_trace(job_id)
            except KeyError:
                self._error(404, f"no retained trace for job {job_id}")
                return
            except ShardError as exc:
                self._error(503, str(exc))
                return
            self._send_json(200, {"job": job_id, "records": records})
            return
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if not job_id or "/" in job_id:
                self._error(404, f"no such resource: {path}")
                return
            wait = 0.0
            if "wait" in query:
                try:
                    wait = min(max(0.0, float(query["wait"])), MAX_WAIT)
                except ValueError:
                    self._error(400, '"wait" must be a number of seconds')
                    return
            try:
                if wait > 0:
                    job = self.coordinator.wait(job_id, timeout=wait)
                else:
                    job = self.coordinator.job(job_id)
            except KeyError:
                self._error(404, f"unknown job {job_id}")
                return
            except ShardError as exc:
                self._error(503, str(exc))
                return
            self._send_json(200, job)
            return
        self._error(404, f"no such resource: {path}")


class ServiceHTTPServer:
    """A coordinator bound to a listening socket, served from a thread.

    ``port=0`` binds an ephemeral port; read the bound one back from
    :attr:`port` (the CLI prints it so scripts can scrape it). The
    server owns only the socket and handler threads — coordinator
    lifecycle (start/stop/drain) stays with the caller, so a test can
    keep shards alive across a server restart.
    """

    def __init__(self, coordinator: ShardCoordinator,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.coordinator = coordinator
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.coordinator = coordinator  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
                name="repro-http", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and join the serving thread (idempotent)."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- client ----------------------------------------------------------------

class HTTPServiceError(ReproError):
    """A platform HTTP call failed; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _request(method: str, url: str,
             body: Optional[Dict[str, Any]] = None,
             timeout: float = 60.0) -> Tuple[int, Dict[str, Any]]:
    """One JSON request/response against the platform (stdlib only)."""
    import urllib.error
    import urllib.request

    data = None
    headers = {"Accept": "application/json"}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read() or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": str(exc)}
        return exc.code, payload


def submit_job(base_url: str, spec_dict: Dict[str, Any],
               options_dict: Optional[Dict[str, Any]] = None, *,
               tenant: Optional[str] = None, priority: int = 0,
               timeout: float = 60.0) -> Dict[str, Any]:
    """POST a submission; returns the job JSON or raises
    :class:`HTTPServiceError` (status 429 = shed, 400 = malformed)."""
    body: Dict[str, Any] = {"spec": spec_dict, "priority": priority}
    if options_dict:
        body["options"] = options_dict
    if tenant is not None:
        body["tenant"] = tenant
    status, payload = _request(
        "POST", f"{base_url.rstrip('/')}/jobs", body, timeout=timeout)
    if status not in (200, 202):
        raise HTTPServiceError(
            status, payload.get("error", f"submit failed ({status})"))
    return payload


def submit_repair(base_url: str, job_id: str, faults: Any, *,
                  timeout: float = 60.0) -> Dict[str, Any]:
    """POST a repair of ``job_id`` with fault triples ``[[a, b, kind]]``;
    returns the repair job JSON or raises :class:`HTTPServiceError`."""
    triples = [list(t) for t in faults]
    status, payload = _request(
        "POST", f"{base_url.rstrip('/')}/jobs/{job_id}/repair",
        {"faults": triples}, timeout=timeout)
    if status not in (200, 202):
        raise HTTPServiceError(
            status, payload.get("error", f"repair failed ({status})"))
    return payload


def fetch_job(base_url: str, job_id: str, *,
              wait: Optional[float] = None,
              timeout: float = 60.0) -> Dict[str, Any]:
    """GET one job, optionally long-polling ``wait`` seconds server-side."""
    url = f"{base_url.rstrip('/')}/jobs/{job_id}"
    if wait is not None:
        url += f"?wait={min(wait, MAX_WAIT)}"
    status, payload = _request("GET", url, timeout=timeout + MAX_WAIT)
    if status != 200:
        raise HTTPServiceError(
            status, payload.get("error", f"fetch failed ({status})"))
    return payload


def fetch_metrics(base_url: str, *, timeout: float = 60.0) -> str:
    """GET ``/metrics``; returns the raw Prometheus exposition text."""
    import urllib.error
    import urllib.request

    url = f"{base_url.rstrip('/')}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        raise HTTPServiceError(exc.code, f"metrics failed ({exc.code})") \
            from exc


def fetch_trace(base_url: str, job_id: str, *,
                timeout: float = 60.0) -> Dict[str, Any]:
    """GET a job's flight-recorder trace (``{"job", "records"}``)."""
    status, payload = _request(
        "GET", f"{base_url.rstrip('/')}/jobs/{job_id}/trace",
        timeout=timeout)
    if status != 200:
        raise HTTPServiceError(
            status, payload.get("error", f"trace failed ({status})"))
    return payload


def wait_job(base_url: str, job_id: str, *,
             timeout: Optional[float] = None) -> Dict[str, Any]:
    """Long-poll (re-polling past the server's per-request cap) until
    the job is terminal or ``timeout`` elapses; returns its last JSON."""
    import time as _time

    from repro.service.journal import TERMINAL_STATES

    deadline = None if timeout is None else _time.monotonic() + timeout
    while True:
        remaining = MAX_WAIT if deadline is None \
            else min(MAX_WAIT, deadline - _time.monotonic())
        job = fetch_job(base_url, job_id, wait=max(0.0, remaining))
        if job.get("state") in TERMINAL_STATES:
            return job
        if deadline is not None and _time.monotonic() >= deadline:
            return job


__all__ = ["MAX_WAIT", "MAX_BODY", "ServiceHTTPServer", "HTTPServiceError",
           "submit_job", "submit_repair", "fetch_job", "fetch_metrics",
           "fetch_trace", "wait_job"]

"""Exponential retry backoff with deterministic jitter.

The service retries failed jobs; naive immediate retries hammer a
struggling backend at exactly the moment it cannot cope, and a fleet of
jobs failing together retries together — the thundering herd. The cure
is the standard one: exponential growth per attempt, a hard cap, and
randomized jitter to decorrelate the herd.

Jitter comes from a ``random.Random(seed)`` owned by the policy, never
from the global RNG — the same seed replays the same delay sequence,
which keeps the service's chaos tests deterministic (the same property
:class:`repro.testing.FaultPlan` provides for fault schedules).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ReproError


class Backoff:
    """Delay schedule for retry attempts (attempt numbers start at 1).

    The delay before retrying after attempt ``n`` is drawn uniformly
    from ``[cap * (1 - jitter), cap]`` where
    ``cap = min(max_delay, base * factor ** (n - 1))`` — "equal jitter"
    keeps a floor under the delay (unlike full jitter, a retry can
    never fire immediately) while still spreading a synchronized herd.
    """

    def __init__(self, base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 5.0, jitter: float = 0.5,
                 seed: int = 0) -> None:
        if base < 0 or max_delay < 0:
            raise ReproError("backoff delays must be non-negative")
        if factor < 1.0:
            raise ReproError(f"backoff factor must be >= 1, got {factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {jitter}")
        self.base = float(base)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = seed
        self.rng = random.Random(seed)

    def cap(self, attempt: int) -> float:
        """The deterministic (jitter-free) upper delay for one attempt."""
        if attempt < 1:
            raise ReproError(f"attempt numbers start at 1, got {attempt}")
        return min(self.max_delay, self.base * self.factor ** (attempt - 1))

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The jittered delay to sleep before retry number ``attempt``."""
        cap = self.cap(attempt)
        r = (rng or self.rng).random()
        return cap * (1.0 - self.jitter * r)

    def delay_for(self, attempt: int, key: str) -> float:
        """The jittered delay for one ``(key, attempt)`` pair.

        Unlike :meth:`delay`, the draw depends only on the policy seed,
        the key and the attempt number — not on how many delays this
        process has drawn before. That makes the schedule *replayable*:
        a restarted service that finds a job journaled pending at
        attempt ``n`` recomputes the exact ready-time the dead process
        had assigned, instead of restarting the backoff sequence at
        attempt 0 and releasing every replayed retry at once (the
        silent post-restart thundering herd). Different keys draw
        decorrelated jitter from the same seed, so a fleet of jobs
        failing together still spreads out.
        """
        # random.Random seeds strings via SHA-512 (seeding version 2),
        # so the draw is stable across processes and PYTHONHASHSEED.
        rng = random.Random(f"{self.seed}\x1f{key}\x1f{attempt}")
        return self.delay(attempt, rng)


__all__ = ["Backoff"]

"""Foundry design rules used by the switch models.

The paper follows the Stanford Foundry basic design rules: flow channel
width and valve length 100 µm, control (valve) channel width 300 µm,
minimum spacing between channels 100 µm, and ~1 mm² control inlets.
All quantities here are in millimetres.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DesignRules:
    """A set of physical design rules, in millimetres."""

    flow_channel_width: float = 0.1
    valve_length: float = 0.1
    control_channel_width: float = 0.3
    min_channel_spacing: float = 0.1
    control_inlet_area: float = 1.0  # mm^2 per control inlet

    def validate_spacing(self, distance: float) -> bool:
        """Whether a channel-to-channel distance satisfies the rules."""
        return distance >= self.min_channel_spacing - 1e-9

    def control_area(self, num_inlets: int) -> float:
        """Chip area (mm^2) consumed by ``num_inlets`` control inlets."""
        if num_inlets < 0:
            raise ValueError("number of control inlets cannot be negative")
        return num_inlets * self.control_inlet_area

    def flow_area(self, total_length_mm: float) -> float:
        """Chip area (mm^2) of flow channel of the given total length."""
        if total_length_mm < 0:
            raise ValueError("channel length cannot be negative")
        return total_length_mm * self.flow_channel_width


#: The rule set quoted by the paper (Stanford Foundry basic rules).
STANFORD_FOUNDRY = DesignRules()

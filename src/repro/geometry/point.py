"""2-D points for switch layouts.

All coordinates are in millimetres; flow channels in the crossbar
switches are axis-aligned, so channel lengths are Manhattan distances.
"""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """An (x, y) position in millimetres."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: float) -> "Point":
        return Point(self.x * factor, self.y * factor)

    def manhattan_to(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


def manhattan_distance(a: Point, b: Point) -> float:
    """Manhattan distance between two points in millimetres."""
    return a.manhattan_to(b)

"""Physical geometry primitives and foundry design rules."""

from repro.geometry.design_rules import DesignRules, STANFORD_FOUNDRY
from repro.geometry.point import Point, manhattan_distance

__all__ = ["Point", "manhattan_distance", "DesignRules", "STANFORD_FOUNDRY"]

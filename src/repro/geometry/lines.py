"""Line-segment geometry used by the control-layer design-rule checks."""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.point import Point


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point ``p`` to the segment ``a``–``b``."""
    ab = (b.x - a.x, b.y - a.y)
    denom = ab[0] ** 2 + ab[1] ** 2
    if denom == 0:
        return p.euclidean_to(a)
    t = _clamp(((p.x - a.x) * ab[0] + (p.y - a.y) * ab[1]) / denom, 0.0, 1.0)
    closest = Point(a.x + t * ab[0], a.y + t * ab[1])
    return p.euclidean_to(closest)


def _orientation(a: Point, b: Point, c: Point) -> float:
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    """Whether two closed segments share at least one point."""
    d1 = _orientation(b1, b2, a1)
    d2 = _orientation(b1, b2, a2)
    d3 = _orientation(a1, a2, b1)
    d4 = _orientation(a1, a2, b2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
        return True
    # collinear / touching cases
    def on(a: Point, b: Point, c: Point) -> bool:
        return (min(a.x, b.x) - 1e-12 <= c.x <= max(a.x, b.x) + 1e-12
                and min(a.y, b.y) - 1e-12 <= c.y <= max(a.y, b.y) + 1e-12)

    if abs(d1) < 1e-12 and on(b1, b2, a1):
        return True
    if abs(d2) < 1e-12 and on(b1, b2, a2):
        return True
    if abs(d3) < 1e-12 and on(a1, a2, b1):
        return True
    if abs(d4) < 1e-12 and on(a1, a2, b2):
        return True
    return False


def segment_segment_distance(a1: Point, a2: Point, b1: Point, b2: Point) -> float:
    """Minimum distance between two closed segments (0 when crossing)."""
    if segments_intersect(a1, a2, b1, b2):
        return 0.0
    return min(
        point_segment_distance(a1, b1, b2),
        point_segment_distance(a2, b1, b2),
        point_segment_distance(b1, a1, a2),
        point_segment_distance(b2, a1, a2),
    )

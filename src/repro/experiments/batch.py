"""Batch sweeps with CSV export.

For larger studies than the paper's tables: run a grid of artificial
cases (or any list of specs), collect one row per run, and write a CSV
that survives the session — the raw material for scaling plots and
statistical summaries.

Sweeps are embarrassingly parallel (each spec is an independent MILP),
so :func:`run_batch` takes ``workers=N`` to fan the grid out over a
``multiprocessing`` pool. Rows come back in spec order regardless of
which worker finishes first, so a parallel sweep writes a CSV identical
to the serial one (see ``tests/test_determinism.py``).
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, SynthesisResult, synthesize
from repro.errors import ReproError

CSV_COLUMNS = [
    "case", "binding", "switch", "modules", "flows", "conflicts",
    "status", "runtime_s", "objective", "length_mm", "num_sets",
    "num_valves", "num_control_inlets",
]


@dataclass
class BatchResult:
    """All rows of one batch run."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)

    @property
    def solved(self) -> int:
        return sum(1 for r in self.rows if r["status"] in ("optimal", "feasible"))

    @property
    def failed(self) -> int:
        return len(self.rows) - self.solved

    def summary(self) -> str:
        return f"{len(self.rows)} runs: {self.solved} solved, {self.failed} not"

    def to_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: row.get(k) for k in CSV_COLUMNS})
        return path

    def group_mean(self, key: str, value: str) -> Dict[object, float]:
        """Mean of a numeric column per value of a grouping column."""
        groups: Dict[object, List[float]] = {}
        for row in self.rows:
            v = row.get(value)
            if v is None:
                continue
            groups.setdefault(row.get(key), []).append(float(v))
        return {k: sum(vals) / len(vals) for k, vals in groups.items()}


def _spec_row(spec: SwitchSpec, result: SynthesisResult) -> Dict[str, object]:
    """One CSV row for one synthesis run."""
    row: Dict[str, object] = {
        "case": spec.name,
        "binding": spec.binding.value,
        "switch": spec.switch.size_label,
        "modules": len(spec.modules),
        "flows": len(spec.flows),
        "conflicts": len(spec.conflicts),
        "status": result.status.value,
        "runtime_s": round(result.runtime, 4),
    }
    if result.status.solved:
        row.update({
            "objective": result.objective,
            "length_mm": round(result.flow_channel_length, 4),
            "num_sets": result.num_flow_sets,
            "num_valves": result.num_valves,
            "num_control_inlets": result.num_control_inlets,
        })
    return row


def _run_one(task: Tuple[int, SwitchSpec, SynthesisOptions]
             ) -> Tuple[int, Dict[str, object], SynthesisResult]:
    """Worker body; module-level so multiprocessing can pickle it."""
    index, spec, options = task
    result = synthesize(spec, options)
    return index, _spec_row(spec, result), result


def run_batch(
    specs: Iterable[SwitchSpec],
    options: Optional[SynthesisOptions] = None,
    on_result: Optional[Callable] = None,
    workers: int = 1,
) -> BatchResult:
    """Synthesize every spec and collect one CSV row per run.

    With ``workers > 1`` the specs are distributed over a process pool;
    rows (and ``on_result`` callbacks) are still delivered in the input
    order, so results are independent of worker scheduling.
    """
    options = options or SynthesisOptions()
    spec_list = list(specs)
    batch = BatchResult()

    if workers > 1 and len(spec_list) > 1:
        import multiprocessing as mp

        tasks = [(i, spec, options) for i, spec in enumerate(spec_list)]
        ctx = mp.get_context("spawn")  # fork is unsafe with threaded solvers
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            outcomes = pool.map(_run_one, tasks)
        outcomes.sort(key=lambda item: item[0])
        for index, row, result in outcomes:
            batch.rows.append(row)
            if on_result is not None:
                on_result(spec_list[index], result)
        return batch

    for spec in spec_list:
        result = synthesize(spec, options)
        batch.rows.append(_spec_row(spec, result))
        if on_result is not None:
            on_result(spec, result)
    return batch


def load_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Read a batch CSV back (strings; callers convert as needed)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no batch CSV at {path}")
    with path.open(newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))

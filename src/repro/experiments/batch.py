"""Batch sweeps with CSV export.

For larger studies than the paper's tables: run a grid of artificial
cases (or any list of specs), collect one row per run, and write a CSV
that survives the session — the raw material for scaling plots and
statistical summaries.

Sweeps are embarrassingly parallel (each spec is an independent MILP),
so :func:`run_batch` takes ``workers=N`` to fan the grid out over a
process pool. Rows come back in spec order regardless of which worker
finishes first, so a parallel sweep writes a CSV identical to the
serial one (see ``tests/test_determinism.py``).

The batch is *fault-tolerant*: a spec whose synthesis raises produces a
``status="error"`` row (exception text in the ``error`` column) instead
of sinking every other row with it. A worker *process* that dies gets
its tasks retried once serially in the parent. ``checkpoint=`` writes
each row to disk the moment it is final, and ``resume=True`` skips the
specs a previous interrupted run already finished.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, SynthesisResult, synthesize
from repro.errors import ReproError
from repro.obs.trace import current_tracer

CSV_COLUMNS = [
    "case", "binding", "switch", "modules", "flows", "conflicts",
    "status", "runtime_s", "objective", "length_mm", "num_sets",
    "num_valves", "num_control_inlets", "error",
]


@dataclass
class BatchResult:
    """All rows of one batch run."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)

    @property
    def solved(self) -> int:
        return sum(1 for r in self.rows if r["status"] in ("optimal", "feasible"))

    @property
    def errors(self) -> int:
        """Rows whose synthesis crashed (captured, not propagated)."""
        return sum(1 for r in self.rows if r["status"] == "error")

    @property
    def failed(self) -> int:
        return len(self.rows) - self.solved

    def summary(self) -> str:
        text = f"{len(self.rows)} runs: {self.solved} solved, {self.failed} not"
        if self.errors:
            text += f" ({self.errors} crashed)"
        return text

    def to_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: row.get(k) for k in CSV_COLUMNS})
        return path

    def group_mean(self, key: str, value: str) -> Dict[object, float]:
        """Mean of a numeric column per value of a grouping column."""
        groups: Dict[object, List[float]] = {}
        for row in self.rows:
            v = row.get(value)
            if v is None or v == "":
                continue
            groups.setdefault(row.get(key), []).append(float(v))
        return {k: sum(vals) / len(vals) for k, vals in groups.items()}


def _spec_row(spec: SwitchSpec, result: SynthesisResult) -> Dict[str, object]:
    """One CSV row for one synthesis run."""
    row: Dict[str, object] = {
        "case": spec.name,
        "binding": spec.binding.value,
        "switch": spec.switch.size_label,
        "modules": len(spec.modules),
        "flows": len(spec.flows),
        "conflicts": len(spec.conflicts),
        "status": result.status.value,
        "runtime_s": round(result.runtime, 4),
    }
    if result.status.solved:
        row.update({
            "objective": result.objective,
            "length_mm": round(result.flow_channel_length, 4),
            "num_sets": result.num_flow_sets,
            "num_valves": result.num_valves,
            "num_control_inlets": result.num_control_inlets,
        })
    if result.error:
        row["error"] = result.error
    return row


def _error_row(spec: SwitchSpec, message: str) -> Dict[str, object]:
    """The row for a spec whose synthesis raised.

    Deliberately runtime-free: wall time of a crash depends on worker
    scheduling, and error rows must be identical between serial and
    parallel runs.
    """
    return {
        "case": spec.name,
        "binding": spec.binding.value,
        "switch": spec.switch.size_label,
        "modules": len(spec.modules),
        "flows": len(spec.flows),
        "conflicts": len(spec.conflicts),
        "status": "error",
        "error": message,
    }


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_one(task: Tuple[int, SwitchSpec, SynthesisOptions, Optional[str]]
             ) -> Tuple[int, Dict[str, object], Optional[SynthesisResult]]:
    """Worker body; module-level so multiprocessing can pickle it.

    Exceptions are captured *inside* the worker: one crashing spec must
    not poison the pool, and the error row must match what a serial run
    of the same spec would record. With ``trace_dir`` set, each task
    records its own :class:`repro.obs.Tracer` (a worker process never
    shares the parent's) and leaves a per-task JSONL artifact behind —
    even when the synthesis inside it crashed.
    """
    index, spec, options, trace_dir = task
    tracer = None
    if trace_dir is not None:
        from repro.obs import Tracer

        tracer = Tracer(spec.name)
        options = replace(options, trace=tracer)
    try:
        result = synthesize(spec, options)
        row = _spec_row(spec, result)
    except Exception as exc:
        row, result = _error_row(spec, _describe(exc)), None
    if tracer is not None:
        _write_task_trace(tracer, trace_dir, index, spec, options)
    return index, row, result


def _write_task_trace(tracer, trace_dir, index: int, spec: SwitchSpec,
                      options: SynthesisOptions) -> None:
    """Export one task's trace artifact; never fails the task itself."""
    from repro.obs import run_manifest, write_trace_jsonl

    try:
        path = Path(trace_dir) / f"{index:04d}_{spec.name}.jsonl"
        write_trace_jsonl(tracer, path,
                          manifest=run_manifest(spec, options,
                                                extra={"batch_index": index}))
    except Exception:
        pass


class _Checkpoint:
    """Incremental CSV writer with resume support.

    Rows are appended (and flushed) the moment they are final, so an
    interrupted batch loses at most the row in flight. On
    ``resume=True`` the rows already on disk are loaded and their specs
    skipped; loaded rows carry CSV string values, exactly as
    :func:`load_csv` returns them.
    """

    def __init__(self, path: Union[str, Path], resume: bool) -> None:
        self.path = Path(path)
        self.rows: List[Dict[str, str]] = []
        resume_existing = resume and self.path.exists()
        if resume_existing:
            self.rows = load_csv(self.path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a" if resume_existing else "w",
                                  newline="", encoding="utf-8")
        self._writer = csv.DictWriter(self._fh, fieldnames=CSV_COLUMNS)
        if not resume_existing:
            self._writer.writeheader()
            self._fh.flush()

    def write(self, row: Dict[str, object]) -> None:
        self._writer.writerow({k: row.get(k) for k in CSV_COLUMNS})
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def run_batch(
    specs: Iterable[SwitchSpec],
    options: Optional[SynthesisOptions] = None,
    on_result: Optional[Callable] = None,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
    on_progress: Optional[Callable] = None,
) -> BatchResult:
    """Synthesize every spec and collect one CSV row per run.

    With ``workers > 1`` the specs are distributed over a process pool;
    rows (and ``on_result`` callbacks) are still delivered in the input
    order, so results are independent of worker scheduling.

    A spec that raises contributes a ``status="error"`` row instead of
    aborting the batch; ``on_result`` is not invoked for such rows
    (there is no result to pass). Dead worker *processes* are detected
    and their specs retried once serially before being declared failed.

    ``checkpoint`` names a CSV that receives every finished row
    immediately; with ``resume=True`` an existing checkpoint's rows are
    reused (matched by position — resume with the same spec list) and
    only the remainder is run.

    Observability: ``trace_dir`` makes every task record its own
    :class:`repro.obs.Tracer` and write a per-task JSONL trace artifact
    (``NNNN_<case>.jsonl``, manifest included) into that directory —
    worker processes record independently, so this composes with
    ``workers > 1``. ``on_progress(done, total, row)`` is a live
    callback fired after *every* finished row (error rows included), in
    input order. When a tracer is installed in the parent process, the
    batch additionally maintains ``batch_queue_depth`` /
    ``batch_rows_done`` gauges and emits one ``batch_row`` event per row.
    """
    options = options or SynthesisOptions()
    spec_list = list(specs)
    batch = BatchResult()
    ckpt = _Checkpoint(checkpoint, resume) if checkpoint is not None else None
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
        trace_dir = str(trace_dir)

    done = 0
    if ckpt is not None and ckpt.rows:
        if len(ckpt.rows) > len(spec_list):
            ckpt.close()
            raise ReproError(
                f"checkpoint {ckpt.path} holds {len(ckpt.rows)} rows for a "
                f"batch of {len(spec_list)} specs; refusing to resume"
            )
        done = len(ckpt.rows)
        batch.rows.extend(ckpt.rows)
    tasks = [(i, spec, options, trace_dir)
             for i, spec in enumerate(spec_list)]
    todo = tasks[done:]
    total = len(spec_list)
    tracer = current_tracer()

    def emit(index: int, row: Dict[str, object],
             result: Optional[SynthesisResult]) -> None:
        batch.rows.append(row)
        if ckpt is not None:
            ckpt.write(row)
        if tracer is not None:
            tracer.metrics.gauge("batch_queue_depth").set(
                total - len(batch.rows))
            tracer.metrics.gauge("batch_rows_done").set(len(batch.rows))
            tracer.event("batch_row", index=index, case=row.get("case"),
                         status=row.get("status"))
        if on_progress is not None:
            on_progress(len(batch.rows), total, row)
        if on_result is not None and result is not None:
            on_result(spec_list[index], result)

    try:
        if workers > 1 and len(todo) > 1:
            _run_parallel(todo, workers, emit)
        else:
            for index, row, result in map(_run_one, todo):
                emit(index, row, result)
    finally:
        if ckpt is not None:
            ckpt.close()
    return batch


def _run_parallel(tasks: List[Tuple[int, SwitchSpec, SynthesisOptions,
                                    Optional[str]]],
                  workers: int, emit: Callable) -> None:
    """Fan tasks out over processes; emit rows in input order.

    ``concurrent.futures`` (not ``mp.Pool``) because it detects abrupt
    worker death (``BrokenProcessPool``) instead of hanging; a future
    that fails at the pool level — dead process, unpicklable payload —
    is retried once serially in the parent, where a repeat failure is
    captured as an error row.
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    ctx = mp.get_context("spawn")  # fork is unsafe with threaded solvers
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks)),
                             mp_context=ctx) as pool:
        futures = {task[0]: pool.submit(_run_one, task) for task in tasks}
        # Waiting in input order keeps rows, callbacks and checkpoint
        # writes deterministic regardless of which worker finishes first.
        for task in tasks:
            index = task[0]
            try:
                _, row, result = futures[index].result()
            except Exception:  # pool-level crash: one serial retry
                _, row, result = _run_one(task)
            emit(index, row, result)


def load_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Read a batch CSV back (strings; callers convert as needed)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no batch CSV at {path}")
    with path.open(newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))

"""Batch sweeps with CSV export.

For larger studies than the paper's tables: run a grid of artificial
cases (or any list of specs), collect one row per run, and write a CSV
that survives the session — the raw material for scaling plots and
statistical summaries.

Sweeps are embarrassingly parallel (each spec is an independent MILP),
so :func:`run_batch` takes ``workers=N`` to fan the grid out over a
process pool. Rows come back in spec order regardless of which worker
finishes first, so a parallel sweep writes a CSV identical to the
serial one (see ``tests/test_determinism.py``).

The batch is *fault-tolerant*: a spec whose synthesis raises produces a
``status="error"`` row (exception text in the ``error`` column) instead
of sinking every other row with it. A worker *process* that dies gets
its tasks retried once serially in the parent. ``checkpoint=`` writes
each row to disk the moment it is final, and ``resume=True`` skips the
specs a previous interrupted run already finished.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, SynthesisResult, synthesize
from repro.errors import ReproError
from repro.obs.manifest import case_fingerprint
from repro.obs.trace import current_correlation, current_tracer, obs_event

CSV_COLUMNS = [
    "case", "fingerprint", "binding", "switch", "modules", "flows",
    "conflicts", "status", "runtime_s", "objective", "length_mm",
    "num_sets", "num_valves", "num_control_inlets", "error",
]


@dataclass
class BatchResult:
    """All rows of one batch run."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)

    @property
    def solved(self) -> int:
        return sum(1 for r in self.rows if r["status"] in ("optimal", "feasible"))

    @property
    def errors(self) -> int:
        """Rows whose synthesis crashed (captured, not propagated)."""
        return sum(1 for r in self.rows if r["status"] == "error")

    @property
    def failed(self) -> int:
        return len(self.rows) - self.solved

    def summary(self) -> str:
        text = f"{len(self.rows)} runs: {self.solved} solved, {self.failed} not"
        if self.errors:
            text += f" ({self.errors} crashed)"
        return text

    def to_csv(self, path: Union[str, Path]) -> Path:
        from repro.io.atomic import atomic_write

        path = Path(path)
        with atomic_write(path, newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: row.get(k) for k in CSV_COLUMNS})
        return path

    def group_mean(self, key: str, value: str) -> Dict[object, float]:
        """Mean of a numeric column per value of a grouping column."""
        groups: Dict[object, List[float]] = {}
        for row in self.rows:
            v = row.get(value)
            if v is None or v == "":
                continue
            groups.setdefault(row.get(key), []).append(float(v))
        return {k: sum(vals) / len(vals) for k, vals in groups.items()}


def spec_row(spec: SwitchSpec, result: SynthesisResult) -> Dict[str, object]:
    """One CSV row for one synthesis run."""
    row: Dict[str, object] = {
        "case": spec.name,
        "fingerprint": case_fingerprint(spec),
        "binding": spec.binding.value,
        "switch": spec.switch.size_label,
        "modules": len(spec.modules),
        "flows": len(spec.flows),
        "conflicts": len(spec.conflicts),
        "status": result.status.value,
        "runtime_s": round(result.runtime, 4),
    }
    if result.status.solved:
        row.update({
            "objective": result.objective,
            "length_mm": round(result.flow_channel_length, 4),
            "num_sets": result.num_flow_sets,
            "num_valves": result.num_valves,
            "num_control_inlets": result.num_control_inlets,
        })
    if result.error:
        row["error"] = result.error
    return row


def error_row(spec: SwitchSpec, message: str) -> Dict[str, object]:
    """The row for a spec whose synthesis raised.

    Deliberately runtime-free: wall time of a crash depends on worker
    scheduling, and error rows must be identical between serial and
    parallel runs.
    """
    return {
        "case": spec.name,
        "fingerprint": case_fingerprint(spec),
        "binding": spec.binding.value,
        "switch": spec.switch.size_label,
        "modules": len(spec.modules),
        "flows": len(spec.flows),
        "conflicts": len(spec.conflicts),
        "status": "error",
        "error": message,
    }


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


_BatchTask = Tuple[int, SwitchSpec, SynthesisOptions, Optional[str],
                   bool, Optional[str]]


def _run_one(task: _BatchTask) -> Tuple[int, Dict[str, object],
                                        Optional[SynthesisResult],
                                        Optional[Dict[str, object]]]:
    """Worker body; module-level so multiprocessing can pickle it.

    Exceptions are captured *inside* the worker: one crashing spec must
    not poison the pool, and the error row must match what a serial run
    of the same spec would record. With ``trace_dir`` set, each task
    records its own :class:`repro.obs.Tracer` (a worker process never
    shares the parent's) and leaves a per-task JSONL artifact behind —
    even when the synthesis inside it crashed.

    ``ship`` (set when the parent process traces a parallel batch) makes
    the task record a tracer regardless of ``trace_dir`` and return its
    telemetry batch as the fourth element, so worker spans/events land
    in the parent's merged stream; ``corr`` stamps them with the
    parent's correlation ID.
    """
    index, spec, options, trace_dir, ship, corr = task
    tracer = None
    if trace_dir is not None or ship:
        from repro.obs import Tracer

        tracer = Tracer(spec.name)
        options = replace(options, trace=tracer)
    try:
        if tracer is not None and corr is not None:
            with tracer.correlate(corr):
                result = synthesize(spec, options)
        else:
            result = synthesize(spec, options)
        row = spec_row(spec, result)
    except Exception as exc:
        row, result = error_row(spec, _describe(exc)), None
    if tracer is not None and trace_dir is not None:
        _write_task_trace(tracer, trace_dir, index, spec, options)
    batch = None
    if ship and tracer is not None:
        from repro.obs.telemetry import TelemetryShipper

        batch = TelemetryShipper(tracer, source=f"batch-{index}").collect()
    return index, row, result, batch


def _write_task_trace(tracer, trace_dir, index: int, spec: SwitchSpec,
                      options: SynthesisOptions) -> None:
    """Export one task's trace artifact; never fails the task itself."""
    from repro.obs import run_manifest, write_trace_jsonl

    try:
        path = Path(trace_dir) / f"{index:04d}_{spec.name}.jsonl"
        write_trace_jsonl(tracer, path,
                          manifest=run_manifest(spec, options,
                                                extra={"batch_index": index}))
    except Exception:
        pass


def _load_checkpoint_rows(path: Path) -> List[Dict[str, str]]:
    """Read checkpoint rows back, tolerating a torn trailing row.

    A checkpoint is appended row-by-row and flushed, so the only damage
    a crash can inflict is a truncated *final* line; that row is
    dropped (its spec simply re-runs). A short row anywhere else means
    the file was edited or corrupted and is refused.
    """
    with path.open(newline="", encoding="utf-8") as fh:
        raw = list(csv.reader(fh))
    if not raw:
        return []
    header, data = raw[0], raw[1:]
    rows: List[Dict[str, str]] = []
    for i, fields in enumerate(data):
        if len(fields) != len(header):
            if i == len(data) - 1:
                break  # torn trailing row: crash mid-append, drop it
            raise ReproError(
                f"checkpoint {path} row {i + 2} has {len(fields)} fields, "
                f"expected {len(header)}; file is corrupt (not merely "
                f"truncated) — refusing to resume")
        rows.append(dict(zip(header, fields)))
    return rows


class _Checkpoint:
    """Incremental CSV writer with fingerprint-keyed resume support.

    Rows are appended (and flushed) the moment they are final, so an
    interrupted batch loses at most the row in flight. On
    ``resume=True`` the rows already on disk are loaded — keyed by the
    spec ``fingerprint`` column, *not* by position — and their specs
    skipped; loaded rows carry CSV string values, exactly as
    :func:`load_csv` returns them.
    """

    def __init__(self, path: Union[str, Path], resume: bool) -> None:
        self.path = Path(path)
        self.rows: List[Dict[str, str]] = []
        resume_existing = resume and self.path.exists()
        if resume_existing:
            self.rows = _load_checkpoint_rows(self.path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a" if resume_existing else "w",
                                  newline="", encoding="utf-8")
        self._writer = csv.DictWriter(self._fh, fieldnames=CSV_COLUMNS)
        if not resume_existing:
            self._writer.writeheader()
            self._fh.flush()

    def write(self, row: Dict[str, object]) -> None:
        self._writer.writerow({k: row.get(k) for k in CSV_COLUMNS})
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def _match_checkpoint(rows: List[Dict[str, str]], spec_list: List[SwitchSpec],
                      path: Path) -> Tuple[List[Optional[Dict[str, str]]],
                                           List[int]]:
    """Assign checkpoint rows to specs by fingerprint.

    Returns ``(reused, todo)``: per-spec reused rows (None where the
    spec still needs to run) and the indices left to execute. Every
    checkpoint row must account for a spec in the batch — a leftover
    row means the checkpoint belongs to a different spec list, which
    positional matching used to silently absorb; now it is an error.
    """
    by_fp: Dict[str, List[Dict[str, str]]] = {}
    for row in rows:
        fp = row.get("fingerprint", "")
        if not fp:
            raise ReproError(
                f"checkpoint {path} has rows without a spec fingerprint "
                f"(written before fingerprint-keyed resume?); re-run "
                f"without resume=True to rebuild it")
        by_fp.setdefault(fp, []).append(row)
    reused: List[Optional[Dict[str, str]]] = []
    todo: List[int] = []
    for index, spec in enumerate(spec_list):
        bucket = by_fp.get(case_fingerprint(spec))
        if bucket:
            reused.append(bucket.pop(0))
        else:
            reused.append(None)
            todo.append(index)
    leftovers = sorted(fp for fp, bucket in by_fp.items() if bucket)
    if leftovers:
        raise ReproError(
            f"checkpoint {path} holds {sum(len(by_fp[f]) for f in leftovers)}"
            f" row(s) whose spec fingerprint matches no spec in this batch "
            f"(e.g. {leftovers[0]}); resume with the spec list that "
            f"produced the checkpoint")
    return reused, todo


def run_batch(
    specs: Iterable[SwitchSpec],
    options: Optional[SynthesisOptions] = None,
    on_result: Optional[Callable] = None,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
    on_progress: Optional[Callable] = None,
    service=None,
    store=None,
) -> BatchResult:
    """Synthesize every spec and collect one CSV row per run.

    With ``workers > 1`` the specs are distributed over a process pool;
    rows (and ``on_result`` callbacks) are still delivered in the input
    order, so results are independent of worker scheduling.

    A spec that raises contributes a ``status="error"`` row instead of
    aborting the batch; ``on_result`` is not invoked for such rows
    (there is no result to pass). Dead worker *processes* are detected
    and their specs retried once serially before being declared failed.

    ``checkpoint`` names a CSV that receives every finished row
    immediately; with ``resume=True`` an existing checkpoint's rows are
    reused — matched by the ``fingerprint`` column, so reordering the
    spec list cannot silently pair a spec with another spec's row — and
    only the remainder is run. A checkpoint whose trailing row was torn
    by a crash loses exactly that row; a checkpoint whose rows don't
    all belong to this batch is refused with a clear error. Reused rows
    come first in ``BatchResult.rows`` (in spec order), newly computed
    rows after (also in spec order). A ``KeyboardInterrupt`` mid-batch
    closes the checkpoint cleanly before propagating, so interrupt +
    ``resume=True`` completes the remainder.

    ``service`` delegates execution to a started
    :class:`repro.service.SynthesisService` instead of running inline:
    every spec is submitted (idempotently — a journaled completion from
    a previous run is reused, not recomputed) and the batch blocks
    until each job reaches a terminal state. Worker/retry/breaker
    behaviour then follows the service's configuration; ``workers`` and
    ``trace_dir`` are ignored on this path.

    Observability: ``trace_dir`` makes every task record its own
    :class:`repro.obs.Tracer` and write a per-task JSONL trace artifact
    (``NNNN_<case>.jsonl``, manifest included) into that directory —
    worker processes record independently, so this composes with
    ``workers > 1``. Independently of ``trace_dir``: when a tracer is
    installed in the parent and the batch runs parallel, each task
    ships its telemetry batch back with its row and the parent absorbs
    it, so ``tracer.records()`` yields one merged stream covering every
    worker (see :mod:`repro.obs.telemetry`).

    ``store`` attaches a persistent :class:`repro.store.Store` to every
    run (it is set on the options, so ``workers > 1`` workers open the
    same on-disk cache — stores pickle by configuration): repeated
    sweeps answer already-solved specs from disk (Tier A) and share
    warm artifacts across processes (Tier B). Rows are identical with
    or without a store, cold or warm (only ``runtime_s`` differs).

    ``on_progress(done, total, row)`` is a live
    callback fired after *every* finished row (error rows included), in
    input order. When a tracer is installed in the parent process, the
    batch additionally maintains ``batch_queue_depth`` /
    ``batch_rows_done`` gauges and emits one ``batch_row`` event per row.
    """
    options = options or SynthesisOptions()
    if store is not None:
        options = replace(options, store=store)
    spec_list = list(specs)
    batch = BatchResult()
    ckpt = _Checkpoint(checkpoint, resume) if checkpoint is not None else None
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
        trace_dir = str(trace_dir)

    todo_indices = list(range(len(spec_list)))
    if ckpt is not None and ckpt.rows:
        if len(ckpt.rows) > len(spec_list):
            ckpt.close()
            raise ReproError(
                f"checkpoint {ckpt.path} holds {len(ckpt.rows)} rows for a "
                f"batch of {len(spec_list)} specs; refusing to resume"
            )
        try:
            reused, todo_indices = _match_checkpoint(
                ckpt.rows, spec_list, ckpt.path)
        except ReproError:
            ckpt.close()
            raise
        batch.rows.extend(row for row in reused if row is not None)
    total = len(spec_list)
    tracer = current_tracer()
    # Spawned batch workers never share the parent's tracer; when the
    # parent traces a parallel batch, each task ships its telemetry
    # back with its row (stamped with the parent's correlation ID).
    ship = (tracer is not None and service is None
            and workers > 1 and len(todo_indices) > 1)
    corr = current_correlation()
    tasks = [(i, spec_list[i], options, trace_dir, ship, corr)
             for i in todo_indices]
    todo = tasks

    def emit(index: int, row: Dict[str, object],
             result: Optional[SynthesisResult],
             shipped: Optional[Dict[str, object]] = None) -> None:
        if shipped is not None and tracer is not None:
            tracer.absorb_batch(shipped)
        batch.rows.append(row)
        if ckpt is not None:
            ckpt.write(row)
        if tracer is not None:
            tracer.metrics.gauge("batch_queue_depth").set(
                total - len(batch.rows))
            tracer.metrics.gauge("batch_rows_done").set(len(batch.rows))
            tracer.event("batch_row", index=index, case=row.get("case"),
                         status=row.get("status"))
        if on_progress is not None:
            on_progress(len(batch.rows), total, row)
        if on_result is not None and result is not None:
            on_result(spec_list[index], result)

    try:
        if service is not None:
            _run_via_service(todo, service, emit)
        elif workers > 1 and len(todo) > 1:
            _run_parallel(todo, workers, emit)
        else:
            for index, row, result, shipped in map(_run_one, todo):
                emit(index, row, result, shipped)
    except KeyboardInterrupt:
        # The checkpoint (closed below) already holds every finished
        # row, so interrupt + resume=True completes the remainder.
        obs_event("interrupt", where="run_batch",
                  done=len(batch.rows), total=total)
        raise
    finally:
        if ckpt is not None:
            ckpt.close()
    return batch


def _run_via_service(tasks: List[_BatchTask],
                     service, emit: Callable) -> None:
    """Delegate execution to a :class:`repro.service.SynthesisService`.

    Submission is idempotent (keyed by spec/config fingerprints), so a
    batch re-run over a journal-backed service reuses completed jobs
    instead of recomputing them. Rows are emitted in input order.
    """
    job_ids = [(task[0], service.submit(task[1], task[2]))
               for task in tasks]
    for index, job_id in job_ids:
        record = service.wait(job_id)
        emit(index, dict(record.row or {}), None)


def _run_parallel(tasks: List[_BatchTask],
                  workers: int, emit: Callable) -> None:
    """Fan tasks out over processes; emit rows in input order.

    ``concurrent.futures`` (not ``mp.Pool``) because it detects abrupt
    worker death (``BrokenProcessPool``) instead of hanging; a future
    that fails at the pool level — dead process, unpicklable payload —
    is retried once serially in the parent, where a repeat failure is
    captured as an error row.
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    ctx = mp.get_context("spawn")  # fork is unsafe with threaded solvers
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks)),
                             mp_context=ctx) as pool:
        futures = {task[0]: pool.submit(_run_one, task) for task in tasks}
        # Waiting in input order keeps rows, callbacks and checkpoint
        # writes deterministic regardless of which worker finishes first.
        try:
            for task in tasks:
                index = task[0]
                try:
                    _, row, result, shipped = futures[index].result()
                except Exception:  # pool-level crash: one serial retry
                    _, row, result, shipped = _run_one(task)
                emit(index, row, result, shipped)
        except KeyboardInterrupt:
            # Don't let __exit__ wait for specs that haven't started.
            pool.shutdown(wait=False, cancel_futures=True)
            raise


def load_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Read a batch CSV back (strings; callers convert as needed)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no batch CSV at {path}")
    with path.open(newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))

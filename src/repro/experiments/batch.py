"""Batch sweeps with CSV export.

For larger studies than the paper's tables: run a grid of artificial
cases (or any list of specs), collect one row per run, and write a CSV
that survives the session — the raw material for scaling plots and
statistical summaries.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.spec import BindingPolicy, SwitchSpec
from repro.core.synthesizer import SynthesisOptions, synthesize
from repro.errors import ReproError

CSV_COLUMNS = [
    "case", "binding", "switch", "modules", "flows", "conflicts",
    "status", "runtime_s", "objective", "length_mm", "num_sets",
    "num_valves", "num_control_inlets",
]


@dataclass
class BatchResult:
    """All rows of one batch run."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)

    @property
    def solved(self) -> int:
        return sum(1 for r in self.rows if r["status"] in ("optimal", "feasible"))

    @property
    def failed(self) -> int:
        return len(self.rows) - self.solved

    def summary(self) -> str:
        return f"{len(self.rows)} runs: {self.solved} solved, {self.failed} not"

    def to_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: row.get(k) for k in CSV_COLUMNS})
        return path

    def group_mean(self, key: str, value: str) -> Dict[object, float]:
        """Mean of a numeric column per value of a grouping column."""
        groups: Dict[object, List[float]] = {}
        for row in self.rows:
            v = row.get(value)
            if v is None:
                continue
            groups.setdefault(row.get(key), []).append(float(v))
        return {k: sum(vals) / len(vals) for k, vals in groups.items()}


def run_batch(
    specs: Iterable[SwitchSpec],
    options: Optional[SynthesisOptions] = None,
    on_result: Optional[Callable] = None,
) -> BatchResult:
    """Synthesize every spec and collect one CSV row per run."""
    options = options or SynthesisOptions()
    batch = BatchResult()
    for spec in specs:
        result = synthesize(spec, options)
        row: Dict[str, object] = {
            "case": spec.name,
            "binding": spec.binding.value,
            "switch": spec.switch.size_label,
            "modules": len(spec.modules),
            "flows": len(spec.flows),
            "conflicts": len(spec.conflicts),
            "status": result.status.value,
            "runtime_s": round(result.runtime, 4),
        }
        if result.status.solved:
            row.update({
                "objective": result.objective,
                "length_mm": round(result.flow_channel_length, 4),
                "num_sets": result.num_flow_sets,
                "num_valves": result.num_valves,
                "num_control_inlets": result.num_control_inlets,
            })
        batch.rows.append(row)
        if on_result is not None:
            on_result(spec, result)
    return batch


def load_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    """Read a batch CSV back (strings; callers convert as needed)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no batch CSV at {path}")
    with path.open(newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))

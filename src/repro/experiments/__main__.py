"""CLI for the experiment runners: ``python -m repro.experiments``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runners import RUNNERS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=sorted(RUNNERS) + ["all"])
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="seconds per solver call where applicable")
    parser.add_argument("-o", "--outdir", default="experiment_output",
                        help="directory for reports and SVG artifacts")
    args = parser.parse_args(argv)

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = RUNNERS[name]
        kwargs = {"outdir": args.outdir}
        if "time_limit" in runner.__code__.co_varnames:
            kwargs["time_limit"] = args.time_limit
        report = runner(**kwargs)
        print(report.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

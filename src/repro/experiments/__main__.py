"""CLI for the experiment runners: ``python -m repro.experiments``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runners import RUNNERS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures",
    )
    parser.add_argument("experiment", choices=sorted(RUNNERS) + ["all"])
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="seconds per solver call where applicable")
    parser.add_argument("--backend", default=None,
                        help="solver backend spec for every synthesis call "
                             "(e.g. portfolio, parallel_bb, parallel_bb:4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the parallel_bb backend "
                             "(shorthand for --backend parallel_bb:N)")
    parser.add_argument("-o", "--outdir", default="experiment_output",
                        help="directory for reports and SVG artifacts")
    args = parser.parse_args(argv)

    backend = args.backend
    if args.workers:
        if backend not in (None, "parallel_bb"):
            parser.error("--workers only applies to --backend parallel_bb")
        backend = f"parallel_bb:{args.workers}"

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = RUNNERS[name]
        kwargs = {"outdir": args.outdir}
        if "time_limit" in runner.__code__.co_varnames:
            kwargs["time_limit"] = args.time_limit
        if backend and "backend" in runner.__code__.co_varnames:
            kwargs["backend"] = backend
        report = runner(**kwargs)
        print(report.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

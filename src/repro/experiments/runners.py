"""Programmatic reproduction of the paper's experiments.

Each runner regenerates one table or figure of the evaluation section
and returns an :class:`~repro.experiments.report.ExperimentReport`;
``python -m repro.experiments <name>`` drives them from the command
line. The pytest-benchmark harness in ``benchmarks/`` additionally
asserts the expected shapes; these runners are the user-facing path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.analysis import (
    analyze_contamination,
    baseline_report,
    routing_space_report,
    wash_plan_for_result,
)
from repro.cases import (
    chip_sw1,
    chip_sw2,
    example_4_2,
    kinase_sw1,
    kinase_sw2,
    mrna_isolation,
    nucleic_acid,
    suite_90,
)
from repro.control import control_strategy_rows
from repro.core import BindingPolicy, SynthesisOptions, synthesize
from repro.experiments.report import ExperimentReport
from repro.opt.incremental import SolveContext
from repro.render import render_result, save_svg
from repro.sim import estimate_execution_time, simulate
from repro.switches import CrossbarSwitch, GRUSwitch, SpineSwitch

POLICIES = [BindingPolicy.CLOCKWISE, BindingPolicy.FIXED, BindingPolicy.UNFIXED]


def _options(time_limit: float,
             backend: Optional[str] = None) -> SynthesisOptions:
    opts = SynthesisOptions(time_limit=time_limit)
    if backend:
        # Free-form spec: plain names and worker-count forms such as
        # "parallel_bb:4" both resolve through the backend registry.
        opts.backend = backend
    return opts


def run_table_4_1(time_limit: float = 60,
                  outdir: Optional[Union[str, Path]] = None,
                  backend: Optional[str] = None) -> ExperimentReport:
    """Table 4.1 — contamination-avoidance cases under all policies."""
    report = ExperimentReport("table_4_1", "Table 4.1 — contamination avoidance")
    # One context per report: each case's three policy variants differ
    # structurally, but repeated runs and policy-internal re-solves
    # share compiled models and warm starts through it.
    context = SolveContext()
    for factory in (chip_sw1, nucleic_acid, mrna_isolation):
        for policy in POLICIES:
            spec = factory(policy)
            result = synthesize(spec, _options(time_limit, backend),
                                context=context)
            report.rows.append(result.table_row())
            if result.status.solved:
                check = analyze_contamination(
                    spec.switch, result.flow_paths, spec.conflicts)
                if not check.is_contamination_free:
                    report.note(f"!! {spec.name}/{policy.value} contaminated")
    report.note("paper: ChIP solves under all policies; nucleic acid and "
                "mRNA only under unfixed")
    if outdir:
        report.save(outdir)
    return report


def run_table_4_2(time_limit: float = 300,
                  outdir: Optional[Union[str, Path]] = None,
                  backend: Optional[str] = None) -> ExperimentReport:
    """Table 4.2 / Figure 4.4 — the flow-scheduling example."""
    report = ExperimentReport("table_4_2", "Table 4.2 — scheduling example")
    report.add_row(source="paper", **{"#s": 3, "#v": 15, "L(mm)": 21.2})
    result = synthesize(example_4_2(), _options(time_limit, backend))
    if result.status.solved:
        report.add_row(source="measured", **{
            "#s": result.num_flow_sets,
            "#v": result.num_valves,
            "L(mm)": round(result.flow_channel_length, 1),
        })
        timing = estimate_execution_time(result)
        report.note(f"estimated routing time: {timing.summary()}")
        if outdir:
            path = Path(outdir) / "fig_4_4_example.svg"
            save_svg(render_result(result), path)
            report.artifacts.append(str(path))
    else:
        report.note(f"solver: {result.status.value}")
    if outdir:
        report.save(outdir)
    return report


def run_table_4_3(time_limit: float = 60, include_heavy: bool = False,
                  outdir: Optional[Union[str, Path]] = None,
                  backend: Optional[str] = None) -> ExperimentReport:
    """Table 4.3 — binding-policy comparison."""
    report = ExperimentReport("table_4_3", "Table 4.3 — binding policies")
    context = SolveContext()
    for factory in (kinase_sw1, kinase_sw2, chip_sw1, chip_sw2):
        for policy in POLICIES:
            if factory is chip_sw2 and policy is not BindingPolicy.FIXED \
                    and not include_heavy:
                continue
            result = synthesize(factory(policy), _options(time_limit, backend),
                                context=context)
            report.rows.append(result.table_row())
    report.note("paper shape: fixed fastest & longest L; clockwise/unfixed "
                "equal optimal L; runtime grows with #modules")
    if outdir:
        report.save(outdir)
    return report


def run_figures_4_1_4_2(time_limit: float = 60,
                        outdir: Union[str, Path] = "experiment_output",
                        backend: Optional[str] = None) -> ExperimentReport:
    """Figures 4.1 and 4.2 — synthesized switches vs. spine baselines."""
    report = ExperimentReport("figures_4_1_4_2",
                              "Figures 4.1/4.2 — proposed vs spine")
    outdir = Path(outdir)
    for factory in (chip_sw1, nucleic_acid, mrna_isolation):
        spec = factory(BindingPolicy.UNFIXED)
        result = synthesize(spec, _options(time_limit, backend))
        if result.status.solved:
            path = outdir / f"{report.name}_{factory.__name__}.svg"
            outdir.mkdir(parents=True, exist_ok=True)
            save_svg(render_result(result), path)
            report.artifacts.append(str(path))
            report.add_row(panel=f"proposed/{factory.__name__}",
                           **{"contamination-free": True})
        spine = SpineSwitch(len(spec.modules))
        base = baseline_report(spine, spec)
        report.add_row(panel=f"spine/{factory.__name__}",
                       **{"contamination-free": base.is_contamination_free})
    report.save(outdir)
    return report


def _artificial_one(task):
    """Worker body for the parallel artificial sweep (picklable).

    Exceptions are captured into an error row — one crashing case must
    not discard the rows every other worker already produced.
    """
    index, spec, options = task
    try:
        result = synthesize(spec, options)
    except Exception as exc:
        row = {
            "case": spec.name,
            "#m": len(spec.modules),
            "sw. size": spec.switch.size_label,
            "binding": spec.binding.value,
            "result": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
        return index, row, False
    return index, result.table_row(), result.status.solved


def run_artificial(count: int = 18, time_limit: float = 20,
                   outdir: Optional[Union[str, Path]] = None,
                   workers: int = 1,
                   backend: Optional[str] = None) -> ExperimentReport:
    """§4.2 — the artificial scheduling suite (subset by default).

    The cases are independent, so ``workers > 1`` fans them out over a
    process pool; rows keep the input order either way. ``backend`` can
    alternatively parallelize *within* each solve (``"parallel_bb:4"``).
    """
    report = ExperimentReport("artificial", "§4.2 — artificial cases")
    specs = suite_90()
    step = max(1, len(specs) // count)
    chosen = specs[::step]
    tasks = [(i, spec, _options(time_limit, backend))
             for i, spec in enumerate(chosen)]
    if workers > 1 and len(tasks) > 1:
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            outcomes = sorted(pool.map(_artificial_one, tasks))
    else:
        outcomes = [_artificial_one(task) for task in tasks]
    solved = failed = crashed = 0
    for _, row, ok in outcomes:
        report.rows.append(row)
        if ok:
            solved += 1
        else:
            failed += 1
            if row.get("result") == "error":
                crashed += 1
    report.note(f"solved {solved}, failed {failed} of {solved + failed} run")
    if crashed:
        report.note(f"!! {crashed} case(s) crashed (see their 'error' column)")
    if outdir:
        report.save(outdir)
    return report


def run_routing_space(outdir: Optional[Union[str, Path]] = None
                      ) -> ExperimentReport:
    """§2.1 — quantitative routing-space comparison."""
    report = ExperimentReport("routing_space", "§2.1 — routing space")
    for switch in (CrossbarSwitch(8), GRUSwitch(8), SpineSwitch(8)):
        report.rows.append(routing_space_report(switch).row())
    if outdir:
        report.save(outdir)
    return report


def run_dynamic_validation(time_limit: float = 60,
                           outdir: Optional[Union[str, Path]] = None,
                           backend: Optional[str] = None) -> ExperimentReport:
    """Beyond the paper — execute every solved case in the simulator."""
    report = ExperimentReport("dynamic", "dynamic validation")
    context = SolveContext()
    for factory, policy in ((chip_sw1, BindingPolicy.FIXED),
                            (nucleic_acid, BindingPolicy.UNFIXED),
                            (mrna_isolation, BindingPolicy.UNFIXED)):
        spec = factory(policy)
        result = synthesize(spec, _options(time_limit, backend),
                            context=context)
        if not result.status.solved:
            report.add_row(case=spec.name, outcome=result.status.value)
            continue
        sim = simulate(result)
        wash = wash_plan_for_result(result)
        report.add_row(
            case=spec.name,
            outcome="clean" if sim.is_clean else sim.summary(),
            **{"wash phases": wash.num_phases},
        )
    if outdir:
        report.save(outdir)
    return report


#: Registry used by the CLI.
RUNNERS: Dict[str, Callable[..., ExperimentReport]] = {
    "table_4_1": run_table_4_1,
    "table_4_2": run_table_4_2,
    "table_4_3": run_table_4_3,
    "figures": run_figures_4_1_4_2,
    "artificial": run_artificial,
    "routing_space": run_routing_space,
    "dynamic": run_dynamic_validation,
}

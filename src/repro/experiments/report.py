"""Experiment report container used by the runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis import format_table


@dataclass
class ExperimentReport:
    """Rows plus free-text notes for one reproduced table/figure."""

    name: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)   # written files

    def add_row(self, **row: object) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"== {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.artifacts:
            parts.append("artifacts: " + ", ".join(self.artifacts))
        return "\n".join(parts)

    def save(self, directory: Union[str, Path]) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.txt"
        path.write_text(self.render() + "\n", encoding="utf-8")
        return path

"""User-facing experiment runners for the paper's tables and figures."""

from repro.experiments.batch import BatchResult, load_csv, run_batch
from repro.experiments.report import ExperimentReport
from repro.experiments.runners import (
    RUNNERS,
    run_artificial,
    run_dynamic_validation,
    run_figures_4_1_4_2,
    run_routing_space,
    run_table_4_1,
    run_table_4_2,
    run_table_4_3,
)

__all__ = [
    "ExperimentReport",
    "BatchResult",
    "run_batch",
    "load_csv",
    "RUNNERS",
    "run_table_4_1",
    "run_table_4_2",
    "run_table_4_3",
    "run_figures_4_1_4_2",
    "run_artificial",
    "run_routing_space",
    "run_dynamic_validation",
]

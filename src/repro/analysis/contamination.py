"""Contamination analysis for arbitrary switch designs.

The paper's comparison with Columba's spine switch and Ma's GRU switch
is qualitative: route the same application flows on those structures
and observe which sites conflicting fluids are forced to share. This
module makes that analysis executable for *any*
:class:`~repro.switches.base.SwitchModel`: flows are routed naively on
shortest paths (those designs offer little or no routing choice), and
the report lists every polluted node/segment plus the collision and
leak risks that arise when flows execute in parallel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from repro.core.spec import Flow
from repro.errors import ReproError
from repro.switches.base import SwitchModel, segment_key
from repro.switches.paths import Path


@dataclass
class ContaminationReport:
    """Outcome of analyzing one routed flow assignment."""

    switch_name: str
    flow_paths: Dict[int, Path]
    polluted_nodes: Set[str] = field(default_factory=set)
    polluted_segments: Set[Tuple[str, str]] = field(default_factory=set)
    contaminated_pairs: Set[FrozenSet[int]] = field(default_factory=set)
    unvalved_shared_segments: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def is_contamination_free(self) -> bool:
        return not self.polluted_nodes and not self.polluted_segments

    @property
    def num_polluted_sites(self) -> int:
        return len(self.polluted_nodes) + len(self.polluted_segments)

    def summary(self) -> str:
        if self.is_contamination_free:
            return f"{self.switch_name}: contamination-free"
        return (
            f"{self.switch_name}: {len(self.contaminated_pairs)} conflicting pair(s) "
            f"polluted at {len(self.polluted_nodes)} node(s) and "
            f"{len(self.polluted_segments)} segment(s)"
        )


def route_shortest(switch: SwitchModel, binding: Dict[str, str],
                   flows: List[Flow]) -> Dict[int, Path]:
    """Route every flow on its (unique lexicographically-first) shortest
    path — how a spine or GRU switch would carry it, with no synthesis."""
    paths: Dict[int, Path] = {}
    counter = itertools.count(1)
    for f in flows:
        src = binding[f.source]
        dst = binding[f.target]
        try:
            vertices = nx.shortest_path(switch.graph, src, dst, weight="length")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ReproError(f"cannot route {f} on {switch.name}: {exc}") from exc
        segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
        paths[f.id] = Path(
            index=next(counter),
            source_pin=src,
            target_pin=dst,
            vertices=tuple(vertices),
            nodes=frozenset(v for v in vertices if not switch.is_pin(v)),
            segments=segs,
            length=sum(switch.segments[k].length for k in segs),
        )
    return paths


def analyze_contamination(
    switch: SwitchModel,
    flow_paths: Dict[int, Path],
    conflicts: Set[FrozenSet[int]],
) -> ContaminationReport:
    """Find every site where conflicting flows overlap.

    Additionally records shared segments that carry *no* valve
    (``unvalved_shared_segments``): on a valve-free spine, parallel
    flows cannot be kept apart even when their fluids do not conflict —
    the paper's second criticism of the spine design.
    """
    report = ContaminationReport(switch_name=switch.name, flow_paths=flow_paths)
    for pair in conflicts:
        i, j = sorted(pair)
        pi, pj = flow_paths[i], flow_paths[j]
        shared_nodes = set(pi.nodes) & set(pj.nodes)
        shared_segs = set(pi.segments) & set(pj.segments)
        if shared_nodes or shared_segs:
            report.contaminated_pairs.add(pair)
            report.polluted_nodes |= shared_nodes
            report.polluted_segments |= shared_segs
    for i, j in itertools.combinations(sorted(flow_paths), 2):
        for key in set(flow_paths[i].segments) & set(flow_paths[j].segments):
            if key not in switch.valves:
                report.unvalved_shared_segments.add(key)
    return report


def spine_pollution_profile(switch: SwitchModel,
                            flow_paths: Dict[int, Path]) -> Dict[Tuple[str, str], int]:
    """How many flows traverse each segment (the paper's 'most polluted
    spine segment is used by every flow' observation)."""
    counts: Dict[Tuple[str, str], int] = {}
    for path in flow_paths.values():
        for key in path.segments:
            counts[key] = counts.get(key, 0) + 1
    return counts

"""Result metrics and table formatting.

Collects the quantities the paper's tables report (runtime T, channel
length L, valve count #v, flow set count #s) plus chip-area estimates
derived from the design rules, and renders lists of result rows as
aligned text tables for the benchmark harnesses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.solution import SynthesisResult
from repro.geometry import STANFORD_FOUNDRY, DesignRules


def area_estimate(result: SynthesisResult,
                  rules: DesignRules = STANFORD_FOUNDRY) -> Dict[str, float]:
    """Approximate chip area consumed by the synthesized switch (mm²).

    ``flow`` is channel footprint (length × width); ``control`` is the
    control-inlet footprint (1 mm² each). With pressure sharing the
    inlet count is the number of pressure groups, otherwise one inlet
    per essential valve.
    """
    inlets = result.num_control_inlets
    if inlets is None:
        inlets = result.num_valves
    flow = rules.flow_area(result.flow_channel_length)
    control = rules.control_area(inlets)
    return {"flow": flow, "control": control, "total": flow + control}


def result_rows(results: Iterable[SynthesisResult]) -> List[Dict[str, object]]:
    """Table rows (dicts) for a batch of synthesis results."""
    return [r.table_row() for r in results]


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(_cell(row.get(c))))
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(" | ".join(_cell(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)

"""Wash-operation analysis.

Prior work (Hu et al., ASP-DAC'14 — the paper's reference [9]) removes
cross-contamination by *washing* polluted channels between uses. The
paper's switch makes washing unnecessary by construction. This module
quantifies that trade: given any routed schedule, it derives the wash
phases a chip would need so that no flow ever touches a conflicting
residue.

Model: flow sets execute in order. Before set *s* starts, every site
(node or segment) that set-*s* flows will use and that currently holds
residue of a conflicting fluid must be flushed. Washing is done in
*phases* — one phase per inter-set transition that needs any cleaning —
and a phase flushes all its polluted sites at once (optimistic for the
baseline; the proposed switch still wins with zero phases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.solution import SynthesisResult
from repro.errors import ReproError
from repro.switches.paths import Path

Site = Tuple[str, object]


@dataclass(frozen=True)
class WashPhase:
    """One flush inserted before a flow set starts."""

    before_set: int
    sites: FrozenSet[Site]

    @property
    def num_sites(self) -> int:
        return len(self.sites)


@dataclass
class WashPlan:
    """All wash phases a schedule requires."""

    phases: List[WashPhase] = field(default_factory=list)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_washed_sites(self) -> int:
        return sum(p.num_sites for p in self.phases)

    @property
    def is_wash_free(self) -> bool:
        return not self.phases

    def summary(self) -> str:
        if self.is_wash_free:
            return "wash-free: no flow ever meets a conflicting residue"
        return (
            f"{self.num_phases} wash phase(s) flushing "
            f"{self.total_washed_sites} site(s) in total"
        )


def _sites_of(path: Path) -> Set[Site]:
    sites: Set[Site] = {("node", n) for n in path.nodes}
    sites |= {("seg", k) for k in path.segments}
    return sites


def wash_plan(
    flow_paths: Dict[int, Path],
    flow_sets: List[List[int]],
    sources: Dict[int, str],
    fluid_conflicts: Set[FrozenSet[str]],
) -> WashPlan:
    """Derive the wash phases for an arbitrary routed schedule."""
    for group in flow_sets:
        for fid in group:
            if fid not in flow_paths:
                raise ReproError(f"flow {fid} scheduled but not routed")

    residue: Dict[Site, Set[str]] = {}
    plan = WashPlan()
    for step, group in enumerate(flow_sets):
        dirty: Set[Site] = set()
        for fid in group:
            fluid = sources[fid]
            for site in _sites_of(flow_paths[fid]):
                for old in residue.get(site, ()):  # noqa: B007
                    if old != fluid and frozenset((old, fluid)) in fluid_conflicts:
                        dirty.add(site)
        if dirty:
            plan.phases.append(WashPhase(before_set=step, sites=frozenset(dirty)))
            for site in dirty:
                residue[site] = set()
        for fid in group:
            fluid = sources[fid]
            for site in _sites_of(flow_paths[fid]):
                residue.setdefault(site, set()).add(fluid)
    return plan


def wash_plan_for_result(result: SynthesisResult) -> WashPlan:
    """Wash phases of a synthesis result (provably empty when solved).

    The synthesizer keeps conflicting flows site-disjoint for all time,
    so its schedules never need washing — this function exists to make
    that claim checkable and to compare against baselines.
    """
    if not result.status.solved:
        raise ReproError("cannot derive a wash plan for an unsolved result")
    from repro.sim.engine import fluid_conflicts_of

    return wash_plan(
        result.flow_paths,
        result.flow_sets,
        {f.id: f.source for f in result.spec.flows},
        fluid_conflicts_of(result.spec),
    )

"""Routing-space analysis: how much disjoint routing a switch offers.

§2.1 argues qualitatively that the GRU switch "provides insufficient
routing space for contamination avoidance" while the crossbar provides
more. This module makes the claim quantitative:

* **pin connectivity** — the number of internally vertex-disjoint paths
  between two pins (Menger's theorem, computed via max-flow on the
  switch graph). Contamination avoidance for two conflicting flows
  through the same region needs ≥ 2.
* **conflict capacity** — the largest set of pairwise vertex-disjoint
  pin-to-pin transports the switch can carry at once, for a given set
  of terminal pairs.
* **pin isolation** — whether a pin pair is forced through a single
  node (the GRU's TL/T → N weakness).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import ReproError
from repro.switches.base import SwitchModel


def _split_graph(switch: SwitchModel, keep: Set[str]) -> nx.DiGraph:
    """Vertex-splitting transform: node capacities via in/out arcs.

    Pins in ``keep`` stay whole (they are terminals); every other
    vertex v becomes v_in → v_out with capacity 1, so max-flow counts
    vertex-disjoint paths.
    """
    g = nx.DiGraph()
    for v in switch.graph.nodes:
        if v in keep:
            g.add_node(v)
        else:
            g.add_edge(f"{v}__in", f"{v}__out", capacity=1)
    for a, b in switch.graph.edges:
        for u, w in ((a, b), (b, a)):
            src = u if u in keep else f"{u}__out"
            dst = w if w in keep else f"{w}__in"
            g.add_edge(src, dst, capacity=1)
    return g


def pin_connectivity(switch: SwitchModel, pin_a: str, pin_b: str) -> int:
    """Disjoint routing options between two pins' attachment nodes.

    Pins have degree 1, so the interesting quantity is the number of
    internally vertex-disjoint routes between the nodes the pins attach
    to. Two pins attached to the *same* node (the GRU's TL/T → N case)
    have connectivity 0 — conflicting fluids entering there can never
    be kept apart.
    """
    for p in (pin_a, pin_b):
        if not switch.is_pin(p):
            raise ReproError(f"{p!r} is not a pin of {switch.name}")
    if pin_a == pin_b:
        raise ReproError("need two distinct pins")
    (na,) = switch.graph.neighbors(pin_a)
    (nb,) = switch.graph.neighbors(pin_b)
    if na == nb:
        return 0
    g = _split_graph(switch, {na, nb})
    # pins are degree-1 leaves; drop them so they don't act as detours
    for pin in switch.pins:
        for suffixed in (f"{pin}__in", f"{pin}__out", pin):
            if suffixed in g and suffixed not in (na, nb):
                g.remove_node(suffixed)
    return nx.maximum_flow_value(g, na, nb)


def forced_through_single_node(switch: SwitchModel,
                               pin_a: str, pin_b: str) -> Optional[str]:
    """The articulation node both pins depend on, if any.

    Returns the name of a single internal node through which *every*
    route of both pins passes (the GRU's N for pins TL and T), or None
    when no such bottleneck exists.
    """
    (na,) = switch.graph.neighbors(pin_a)
    (nb,) = switch.graph.neighbors(pin_b)
    if na == nb:
        return na
    return None


def disjoint_transport_capacity(
    switch: SwitchModel,
    pairs: Sequence[Tuple[str, str]],
) -> int:
    """Largest subset of the terminal pairs routable pairwise
    vertex-disjointly (exhaustive over subsets — intended for the ≤5
    conflicting transports of the application cases)."""
    if len(pairs) > 6:
        raise ReproError("capacity analysis is exhaustive; pass at most 6 pairs")
    best = 0
    for r in range(len(pairs), 0, -1):
        for subset in itertools.combinations(pairs, r):
            if _routable_disjointly(switch, list(subset)):
                return r
    return best


def _routable_disjointly(switch: SwitchModel,
                         pairs: List[Tuple[str, str]]) -> bool:
    """Whether all pairs admit pairwise vertex-disjoint routes.

    Backtracking over simple paths, shortest candidates first.
    """
    def paths_for(a: str, b: str) -> List[List[str]]:
        found = list(nx.all_simple_paths(switch.graph, a, b))
        found = [p for p in found
                 if all(not switch.is_pin(v) for v in p[1:-1])]
        found.sort(key=len)
        return found

    candidates = [paths_for(a, b) for a, b in pairs]
    order = sorted(range(len(pairs)), key=lambda i: len(candidates[i]))

    def backtrack(idx: int, used: Set[str]) -> bool:
        if idx == len(order):
            return True
        for path in candidates[order[idx]]:
            interior = set(path[1:-1])
            if interior & used:
                continue
            if backtrack(idx + 1, used | interior):
                return True
        return False

    return backtrack(0, set())


@dataclass
class RoutingSpaceReport:
    """Comparative routing-space metrics for one switch."""

    switch_name: str
    min_pin_connectivity: int
    mean_pin_connectivity: float
    single_node_pin_pairs: List[Tuple[str, str, str]]  # (pin, pin, node)

    def row(self) -> Dict[str, object]:
        return {
            "switch": self.switch_name,
            "min connectivity": self.min_pin_connectivity,
            "mean connectivity": round(self.mean_pin_connectivity, 2),
            "single-node pin pairs": len(self.single_node_pin_pairs),
        }


def routing_space_report(switch: SwitchModel) -> RoutingSpaceReport:
    """Connectivity statistics over all pin pairs of a switch."""
    values = []
    singles = []
    for a, b in itertools.combinations(switch.pins, 2):
        values.append(pin_connectivity(switch, a, b))
        node = forced_through_single_node(switch, a, b)
        if node is not None:
            singles.append((a, b, node))
    return RoutingSpaceReport(
        switch_name=switch.name,
        min_pin_connectivity=min(values),
        mean_pin_connectivity=sum(values) / len(values),
        single_node_pin_pairs=singles,
    )

"""Objective-weight sensitivity (eq. 3.7's α/β trade-off).

The paper minimizes ``α·N_sets + β·L_flow`` with α=1, β=100 — a
length-dominant weighting. This module sweeps the weights and records
how the optimum trades flow sets against channel length, exposing the
Pareto front between control effort (fewer sets, eq. 3.7's motivation)
and chip area (shorter channels).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, synthesize
from repro.errors import ReproError
from repro.opt.incremental import SolveContext

#: The paper's default weighting.
PAPER_WEIGHTS = (1.0, 100.0)


@dataclass
class WeightSweepPoint:
    """One solved weighting of the objective."""

    alpha: float
    beta: float
    num_sets: Optional[int]
    length_mm: Optional[float]
    status: str
    runtime_s: float

    def row(self) -> Dict[str, object]:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "#s": self.num_sets,
            "L(mm)": None if self.length_mm is None else round(self.length_mm, 2),
            "status": self.status,
            "T(s)": round(self.runtime_s, 2),
        }


@dataclass
class WeightSweep:
    """All points of one sweep plus derived views."""

    points: List[WeightSweepPoint] = field(default_factory=list)

    def solved(self) -> List[WeightSweepPoint]:
        return [p for p in self.points if p.num_sets is not None]

    def pareto_front(self) -> List[Tuple[int, float]]:
        """Non-dominated (#sets, length) outcomes, sets ascending."""
        outcomes = sorted({(p.num_sets, round(p.length_mm, 6))
                           for p in self.solved()})
        front: List[Tuple[int, float]] = []
        best_len = float("inf")
        for sets, length in outcomes:
            if length < best_len - 1e-9:
                front.append((sets, length))
                best_len = length
        return front

    def rows(self) -> List[Dict[str, object]]:
        return [p.row() for p in self.points]


def _respec(spec: SwitchSpec, alpha: float, beta: float) -> SwitchSpec:
    clone = copy.copy(spec)
    clone.alpha = alpha
    clone.beta = beta
    # conflicts/flows are shared immutably; validation already ran
    return clone


def weight_sweep(
    spec: SwitchSpec,
    weights: Sequence[Tuple[float, float]] = (
        (1.0, 100.0),   # the paper's setting: length-dominant
        (1.0, 1.0),     # balanced
        (100.0, 1.0),   # set-dominant: minimize control effort first
        (1.0, 0.0),     # sets only
        (0.0, 1.0),     # length only
    ),
    options: Optional[SynthesisOptions] = None,
    context: Optional[SolveContext] = None,
    store=None,
) -> WeightSweep:
    """Solve the same case under several objective weightings.

    All points share one :class:`SolveContext` (pass an existing one to
    share beyond the sweep): α/β only re-weight the objective, so every
    point after the first reuses the built model and path catalog and
    starts from the previous optimum as warm incumbent.

    ``store`` attaches a persistent :class:`repro.store.Store`: a
    repeated sweep answers every point from disk (Tier A — the weights
    are part of the case, so each weighting is its own entry), and even
    a *fresh* sweep of a structure the store has seen starts from its
    stored catalog and incumbent (Tier B). Outcomes are identical with
    or without a store; only ``runtime_s`` changes.
    """
    if not weights:
        raise ReproError("need at least one weight pair")
    options = options or SynthesisOptions()
    if store is not None:
        from dataclasses import replace

        options = replace(options, store=store)
    context = context or SolveContext()
    sweep = WeightSweep()
    for alpha, beta in weights:
        result = synthesize(_respec(spec, alpha, beta), options, context=context)
        if result.status.solved:
            sweep.points.append(WeightSweepPoint(
                alpha, beta, result.num_flow_sets,
                result.flow_channel_length, result.status.value,
                result.runtime,
            ))
        else:
            sweep.points.append(WeightSweepPoint(
                alpha, beta, None, None, result.status.value, result.runtime,
            ))
    return sweep

"""Analysis utilities: contamination reports, metrics, design comparisons."""

from repro.analysis.compare import (
    DesignComparison,
    baseline_report,
    compare_designs,
)
from repro.analysis.contamination import (
    ContaminationReport,
    analyze_contamination,
    route_shortest,
    spine_pollution_profile,
)
from repro.analysis.metrics import area_estimate, format_table, result_rows
from repro.analysis.sensitivity import (
    PAPER_WEIGHTS,
    WeightSweep,
    WeightSweepPoint,
    weight_sweep,
)
from repro.analysis.routing_space import (
    RoutingSpaceReport,
    disjoint_transport_capacity,
    forced_through_single_node,
    pin_connectivity,
    routing_space_report,
)
from repro.analysis.washing import WashPhase, WashPlan, wash_plan, wash_plan_for_result

__all__ = [
    "ContaminationReport",
    "analyze_contamination",
    "route_shortest",
    "spine_pollution_profile",
    "DesignComparison",
    "compare_designs",
    "baseline_report",
    "area_estimate",
    "format_table",
    "result_rows",
    "WashPlan",
    "WashPhase",
    "wash_plan",
    "wash_plan_for_result",
    "RoutingSpaceReport",
    "routing_space_report",
    "pin_connectivity",
    "forced_through_single_node",
    "disjoint_transport_capacity",
    "weight_sweep",
    "WeightSweep",
    "WeightSweepPoint",
    "PAPER_WEIGHTS",
]

"""Cross-design comparison: proposed crossbar vs. spine vs. GRU.

Reproduces the qualitative comparison of §4.1 / Figures 4.1–4.2: the
same application flows are (a) synthesized on the proposed switch and
(b) naively routed on the baseline structures, and the contamination
outcome of each is reported side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.contamination import (
    ContaminationReport,
    analyze_contamination,
    route_shortest,
)
from repro.analysis.washing import wash_plan, wash_plan_for_result
from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, synthesize
from repro.errors import ReproError
from repro.switches import GRUSwitch, SpineSwitch, SwitchModel


@dataclass
class DesignComparison:
    """Contamination outcomes of the same case on several designs."""

    case_name: str
    proposed: Optional[SynthesisResult]
    baselines: Dict[str, ContaminationReport]
    baseline_washes: Dict[str, int] = None  # wash phases if serialized

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        washes = self.baseline_washes or {}
        if self.proposed is not None and self.proposed.status.solved:
            rows.append({
                "design": "proposed (synthesized)",
                "contamination-free": True,
                "polluted sites": 0,
                "unvalved shared segs": 0,
                "wash phases": wash_plan_for_result(self.proposed).num_phases,
            })
        elif self.proposed is not None:
            rows.append({
                "design": "proposed (synthesized)",
                "contamination-free": None,
                "polluted sites": None,
                "unvalved shared segs": None,
                "wash phases": None,
            })
        for name, report in self.baselines.items():
            rows.append({
                "design": name,
                "contamination-free": report.is_contamination_free,
                "polluted sites": report.num_polluted_sites,
                "unvalved shared segs": len(report.unvalved_shared_segments),
                "wash phases": washes.get(name),
            })
        return rows


def _default_binding(switch: SwitchModel, modules: List[str]) -> Dict[str, str]:
    """Bind modules to the baseline's pins in clockwise order."""
    if len(modules) > switch.n_pins:
        raise ReproError(
            f"{switch.name} has {switch.n_pins} pins but the case needs "
            f"{len(modules)}"
        )
    return {m: switch.pins[i] for i, m in enumerate(modules)}


def baseline_report(switch: SwitchModel, spec: SwitchSpec,
                    binding: Optional[Dict[str, str]] = None) -> ContaminationReport:
    """Route the spec's flows naively on a baseline switch and analyze."""
    binding = binding or _default_binding(switch, spec.modules)
    paths = route_shortest(switch, binding, spec.flows)
    return analyze_contamination(switch, paths, spec.conflicts)


def compare_designs(spec: SwitchSpec,
                    options: Optional[SynthesisOptions] = None,
                    include_gru: bool = True) -> DesignComparison:
    """Synthesize the proposed switch and analyze the baselines.

    The spine baseline always runs; the GRU baseline runs when a GRU
    model of sufficient size exists (8/12-pin only).
    """
    proposed = synthesize(spec, options)
    if proposed.status.solved:
        # the synthesized result is contamination-free by construction;
        # double-check via the same analyzer used for the baselines
        check = analyze_contamination(spec.switch, proposed.flow_paths, spec.conflicts)
        if not check.is_contamination_free:
            raise ReproError("synthesized switch failed contamination analysis")

    baselines: Dict[str, ContaminationReport] = {}
    washes: Dict[str, int] = {}

    def add_baseline(name: str, switch: SwitchModel) -> None:
        report = baseline_report(switch, spec)
        baselines[name] = report
        # wash phases when the flows run one per set (fully serialized —
        # the most wash-friendly schedule a baseline could use)
        from repro.sim.engine import fluid_conflicts_of

        plan = wash_plan(
            report.flow_paths,
            [[f.id] for f in spec.flows],
            {f.id: f.source for f in spec.flows},
            fluid_conflicts_of(spec),
        )
        washes[name] = plan.num_phases

    add_baseline("spine (Columba-style)", SpineSwitch(max(len(spec.modules), 3)))
    if include_gru and len(spec.modules) <= 12:
        add_baseline("GRU (prior study)",
                     GRUSwitch(8 if len(spec.modules) <= 8 else 12))
    return DesignComparison(case_name=spec.name, proposed=proposed,
                            baselines=baselines, baseline_washes=washes)

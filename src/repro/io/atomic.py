"""Atomic file writes: temp file + ``os.replace``.

Every artifact this library leaves behind — result JSON, trace JSONL,
Chrome traces, batch CSVs, manifests, service journal snapshots — is
state some later run depends on. A plain ``open(path, "w")`` that dies
mid-write destroys the *old* artifact along with the new one, which is
exactly the failure mode a checkpoint exists to survive.

:func:`atomic_write` closes that hole: the content is written to a
temporary file in the same directory (same filesystem, so the final
rename cannot cross a device boundary) and moved over the target with
``os.replace`` — atomic on POSIX and Windows. A crash at any point
leaves either the complete old file or the complete new file, never a
torn hybrid. ``fsync=True`` additionally flushes the temp file (and,
on POSIX, the directory entry) to stable storage before the rename, for
writers — like the service write-ahead journal's rotation — that must
survive power loss, not just process death.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator, Optional, Union

PathLike = Union[str, Path]


@contextmanager
def atomic_write(path: PathLike, mode: str = "w",
                 encoding: Optional[str] = "utf-8",
                 newline: Optional[str] = None,
                 fsync: bool = False) -> Iterator[IO[Any]]:
    """Yield a file handle whose content replaces ``path`` atomically.

    The handle writes to a sibling temp file; on clean exit it is
    flushed (and optionally fsynced) and renamed over ``path``. If the
    block raises, the temp file is removed and ``path`` is untouched —
    a reader never observes a partial write.

    ``mode`` must be a write mode (``"w"``, ``"wb"``, ...); text modes
    honour ``encoding``/``newline`` (pass ``newline=""`` for csv).
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write needs a plain write mode, got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    binary = "b" in mode
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode,
                       encoding=None if binary else encoding,
                       newline=None if binary else newline) as fh:
            yield fh
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(path.parent)


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8", fsync: bool = False) -> Path:
    """Replace ``path`` with ``text`` atomically; returns the path."""
    path = Path(path)
    with atomic_write(path, "w", encoding=encoding, fsync=fsync) as fh:
        fh.write(text)
    return path


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


__all__ = ["atomic_write", "atomic_write_text", "fsync_directory"]

"""JSON serialization of synthesis results.

Full results are not re-imported — a result is only meaningful together
with its spec and switch geometry — but the exported dictionary carries
everything downstream tools consume: binding, routes, schedule, kept
valves, pressure groups, the headline metrics, and the run's phase
timings and counters. :func:`load_result_summary` reads the measurement
part back (timings as :class:`~repro.perf.PhaseTimings`, counters as
ints) so perf comparisons can run against archived result files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.solution import SynthesisResult
from repro.io.atomic import atomic_write_text


def result_to_dict(result: SynthesisResult) -> Dict[str, Any]:
    """Serialize a synthesis result to a JSON-compatible dictionary."""
    data: Dict[str, Any] = {
        "case": result.spec.name,
        "status": result.status.value,
        "runtime_s": round(result.runtime, 4),
        "solver": result.solver,
    }
    # Timings and counters are recorded for every run, failed ones
    # included — a timeout's phase breakdown is exactly what one wants
    # to inspect afterwards.
    if result.timings:
        data["timings_s"] = {
            p: round(result.timings[p], 6) for p in result.timings.ordered()
        }
    if result.counters:
        data["counters"] = {
            k: result.counters[k] for k in sorted(result.counters)
        }
    if result.error:
        data["error"] = result.error
    if not result.status.solved:
        return data
    data.update({
        "objective": result.objective,
        "binding": dict(result.binding),
        "flows": [
            {
                "id": fid,
                "route": list(path.vertices),
                "length_mm": round(path.length, 4),
                "flow_set": result.set_of_flow(fid),
            }
            for fid, path in sorted(result.flow_paths.items())
        ],
        "flow_sets": [list(group) for group in result.flow_sets],
        "used_segments": sorted(list(k) for k in result.used_segments),
        "flow_channel_length_mm": round(result.flow_channel_length, 4),
        "num_flow_sets": result.num_flow_sets,
        "num_valves": result.num_valves,
    })
    if result.valves is not None:
        data["valves"] = {
            f"{a}-{b}": "".join(seq)
            for (a, b), seq in sorted(result.valves.status.items())
        }
        data["essential_valves"] = sorted(
            f"{a}-{b}" for a, b in result.valves.essential
        )
    if result.pressure is not None:
        data["pressure_groups"] = [
            sorted(f"{a}-{b}" for a, b in group)
            for group in result.pressure.groups
        ]
        data["num_control_inlets"] = result.pressure.num_control_inlets
    return data


def save_result(result: SynthesisResult, path: Union[str, Path]) -> None:
    """Write a result as pretty-printed JSON (atomically replaced)."""
    atomic_write_text(
        path, json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def load_result_summary(path: Union[str, Path]) -> Dict[str, Any]:
    """Read an exported result's measurement summary back.

    Returns the raw dictionary with the measurement fields restored to
    their in-process types: ``timings_s`` becomes a
    :class:`repro.perf.PhaseTimings` (so ``.ordered()`` /
    ``format_phase_table`` work on it directly) and ``counters`` values
    become ints. Geometry fields (routes, valves, ...) are left as
    plain JSON data — they need the spec to mean anything.
    """
    from repro.perf import PhaseTimings

    data = json.loads(Path(path).read_text(encoding="utf-8"))
    timings = PhaseTimings()
    for phase, seconds in data.get("timings_s", {}).items():
        timings.add(phase, float(seconds))
    data["timings_s"] = timings
    data["counters"] = {
        k: int(v) for k, v in data.get("counters", {}).items()
    }
    return data

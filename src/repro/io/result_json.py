"""JSON serialization of synthesis results.

Results are exported (not re-imported — a result is only meaningful
together with its spec and switch geometry) so downstream tools can
consume the synthesis outcome: binding, routes, schedule, kept valves,
pressure groups, and the headline metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.solution import SynthesisResult


def result_to_dict(result: SynthesisResult) -> Dict[str, Any]:
    """Serialize a synthesis result to a JSON-compatible dictionary."""
    data: Dict[str, Any] = {
        "case": result.spec.name,
        "status": result.status.value,
        "runtime_s": round(result.runtime, 4),
        "solver": result.solver,
    }
    if not result.status.solved:
        return data
    data.update({
        "objective": result.objective,
        "binding": dict(result.binding),
        "flows": [
            {
                "id": fid,
                "route": list(path.vertices),
                "length_mm": round(path.length, 4),
                "flow_set": result.set_of_flow(fid),
            }
            for fid, path in sorted(result.flow_paths.items())
        ],
        "flow_sets": [list(group) for group in result.flow_sets],
        "used_segments": sorted(list(k) for k in result.used_segments),
        "flow_channel_length_mm": round(result.flow_channel_length, 4),
        "num_flow_sets": result.num_flow_sets,
        "num_valves": result.num_valves,
    })
    if result.valves is not None:
        data["valves"] = {
            f"{a}-{b}": "".join(seq)
            for (a, b), seq in sorted(result.valves.status.items())
        }
        data["essential_valves"] = sorted(
            f"{a}-{b}" for a, b in result.valves.essential
        )
    if result.pressure is not None:
        data["pressure_groups"] = [
            sorted(f"{a}-{b}" for a, b in group)
            for group in result.pressure.groups
        ]
        data["num_control_inlets"] = result.pressure.num_control_inlets
    return data


def save_result(result: SynthesisResult, path: Union[str, Path]) -> None:
    """Write a result as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n", encoding="utf-8"
    )

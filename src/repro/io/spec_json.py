"""JSON (de)serialization of switch specs.

Cloud Columba distributes switch inputs as structured files; this
module defines the equivalent interchange format for this library so
cases can live outside Python code::

    {
      "name": "ChIP sw.1",
      "switch": {"family": "crossbar", "pins": 12, "scalable": false},
      "modules": ["i_10", "M1", ...],
      "flows": [{"id": 1, "source": "i_10", "target": "M1"}, ...],
      "conflicts": [[1, 2], [1, 3]],
      "binding": "clockwise",
      "module_order": ["i_10", ...],        // clockwise only
      "fixed_binding": {"i_10": "T1", ...}, // fixed only
      "alpha": 1.0, "beta": 100.0,
      "max_sets": null,
      "node_policy": "all",
      "conflict_form": "pairwise",
      "scheduling_form": "paper"
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.spec import (
    BindingPolicy,
    ConflictForm,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
)
from repro.errors import SpecError
from repro.switches import (
    CrossbarSwitch,
    FPVAGrid,
    GRUSwitch,
    HealthMask,
    ScalableCrossbarSwitch,
    SpineSwitch,
    SwitchModel,
)

_FAMILIES = {
    "crossbar": CrossbarSwitch,
    "scalable-crossbar": ScalableCrossbarSwitch,
    "spine": SpineSwitch,
    "gru": GRUSwitch,
}


def switch_to_dict(switch: SwitchModel) -> Dict[str, Any]:
    """Describe a switch model by family, size and (if any) faults."""
    if isinstance(switch, ScalableCrossbarSwitch):
        family = "scalable-crossbar"
    elif isinstance(switch, CrossbarSwitch):
        family = "crossbar"
    elif isinstance(switch, SpineSwitch):
        family = "spine"
    elif isinstance(switch, GRUSwitch):
        family = "gru"
    elif isinstance(switch, FPVAGrid):
        family = "fpva"
    else:
        raise SpecError(f"cannot serialize switch type {type(switch).__name__}")
    data: Dict[str, Any] = {"family": family, "pins": switch.n_pins}
    if family == "fpva":
        data["rows"] = switch.rows
        data["cols"] = switch.cols
    if switch.health is not None and not switch.health.is_empty:
        # Canonical (a, b, kind) triples: journaled repair jobs rebuild
        # the degraded switch exactly, and case fingerprints differ
        # from the healthy chip's.
        data["faults"] = [list(t) for t in switch.health.triples()]
    return data


def switch_from_dict(data: Dict[str, Any]) -> SwitchModel:
    family = data.get("family", "crossbar")
    if family == "fpva":
        switch: SwitchModel = FPVAGrid(int(data.get("rows", 3)),
                                       int(data.get("cols", 3)))
    elif family in _FAMILIES:
        switch = _FAMILIES[family](int(data.get("pins", 8)))
    else:
        raise SpecError(f"unknown switch family {family!r}")
    faults = data.get("faults")
    if faults:
        switch = switch.with_health(HealthMask.from_triples(faults))
    return switch


def spec_to_dict(spec: SwitchSpec) -> Dict[str, Any]:
    """Serialize a spec to a JSON-compatible dictionary."""
    data: Dict[str, Any] = {
        "name": spec.name,
        "switch": switch_to_dict(spec.switch),
        "modules": list(spec.modules),
        "flows": [
            {"id": f.id, "source": f.source, "target": f.target}
            for f in spec.flows
        ],
        "conflicts": sorted(sorted(pair) for pair in spec.conflicts),
        "binding": spec.binding.value,
        "alpha": spec.alpha,
        "beta": spec.beta,
        "max_sets": spec.max_sets,
        "node_policy": spec.node_policy.value,
        "conflict_form": spec.conflict_form.value,
        "scheduling_form": spec.scheduling_form.value,
    }
    if spec.fixed_binding is not None:
        data["fixed_binding"] = dict(spec.fixed_binding)
    if spec.module_order is not None:
        data["module_order"] = list(spec.module_order)
    return data


def spec_from_dict(data: Dict[str, Any]) -> SwitchSpec:
    """Build (and validate) a spec from a parsed dictionary."""
    try:
        flows = [Flow(int(f["id"]), f["source"], f["target"])
                 for f in data.get("flows", [])]
        conflicts = {frozenset(int(x) for x in pair)
                     for pair in data.get("conflicts", [])}
        return SwitchSpec(
            switch=switch_from_dict(data.get("switch", {})),
            modules=list(data["modules"]),
            flows=flows,
            conflicts=conflicts,
            binding=BindingPolicy(data.get("binding", "unfixed")),
            fixed_binding=data.get("fixed_binding"),
            module_order=data.get("module_order"),
            alpha=float(data.get("alpha", 1.0)),
            beta=float(data.get("beta", 100.0)),
            max_sets=data.get("max_sets"),
            node_policy=NodePolicy(data.get("node_policy", "all")),
            conflict_form=ConflictForm(data.get("conflict_form", "pairwise")),
            scheduling_form=SchedulingForm(data.get("scheduling_form", "paper")),
            name=data.get("name", "switch-case"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"malformed spec document: {exc}") from exc


def save_spec(spec: SwitchSpec, path: Union[str, Path]) -> None:
    """Write a spec as pretty-printed JSON (atomically replaced)."""
    from repro.io.atomic import atomic_write_text

    atomic_write_text(
        path, json.dumps(spec_to_dict(spec), indent=2) + "\n"
    )


def load_spec(path: Union[str, Path]) -> SwitchSpec:
    """Read and validate a spec from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    return spec_from_dict(data)

"""JSON interchange for specs and results, plus atomic artifact writes."""

from repro.io.atomic import atomic_write, atomic_write_text, fsync_directory
from repro.io.result_json import (
    load_result_summary,
    result_to_dict,
    save_result,
)
from repro.io.spec_json import (
    load_spec,
    save_spec,
    spec_from_dict,
    spec_to_dict,
    switch_from_dict,
    switch_to_dict,
)

__all__ = [
    "atomic_write",
    "atomic_write_text",
    "fsync_directory",
    "spec_to_dict",
    "spec_from_dict",
    "save_spec",
    "load_spec",
    "switch_to_dict",
    "switch_from_dict",
    "result_to_dict",
    "save_result",
    "load_result_summary",
]

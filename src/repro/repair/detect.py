"""Mid-campaign fault detection through the tick engine.

The :mod:`repro.sim` simulator executes a synthesized schedule step by
step; a :class:`~repro.sim.faults.ValveFault` with a non-zero ``onset``
strikes partway through the campaign. :func:`detect_faults` replays the
campaign under the fault plan and turns what the chip would actually
exhibit — contamination, misroutes, undelivered flows — into a
structured detection verdict plus ``fault_detected`` obs events, the
input the service layer converts into a journaled repair job.

A fault is *detected* when it is observable: it touches a segment the
routing uses, or the simulation stops being clean. A fault on an
unused segment is recorded but flagged benign — repairing around
hardware the routing never touches would be wasted work (though the
mask still removes it from future syntheses if a repair does run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.solution import SynthesisResult
from repro.errors import RepairError
from repro.obs.trace import obs_event
from repro.sim.engine import SimulationReport, simulate
from repro.sim.faults import ValveFault


@dataclass(frozen=True)
class FaultDetection:
    """What a faulty campaign execution revealed."""

    faults: Tuple[ValveFault, ...]
    report: SimulationReport
    #: Flow ids whose routed path traverses a faulty segment.
    impacted_flows: Tuple[int, ...]
    #: Faults on segments the routing never uses (benign for this
    #: routing; still worth masking on the next synthesis).
    benign_faults: Tuple[ValveFault, ...]

    @property
    def detected(self) -> bool:
        """At least one fault is observable in this campaign."""
        return bool(self.impacted_flows) or not self.report.is_clean

    def summary(self) -> str:
        return (
            f"{len(self.faults)} fault(s), "
            f"{len(self.impacted_flows)} impacted flow(s), "
            f"{len(self.benign_faults)} benign; sim: {self.report.summary()}"
        )


def detect_faults(result: SynthesisResult,
                  faults: Sequence[ValveFault],
                  dont_care_open: bool = False) -> FaultDetection:
    """Replay ``result``'s campaign under ``faults`` and classify them."""
    if not faults:
        raise RepairError("no faults to detect")
    if not result.status.solved:
        raise RepairError("cannot replay an unsolved synthesis result")
    report = simulate(result, faults=faults, dont_care_open=dont_care_open)

    used = {k for p in result.flow_paths.values() for k in p.segments}
    impacted: List[int] = []
    benign: List[ValveFault] = []
    for fault in faults:
        touched = sorted(
            fid for fid, p in result.flow_paths.items()
            if any(fault.applies_to(k) for k in p.segments)
        )
        impacted.extend(fid for fid in touched if fid not in impacted)
        if fault.segment not in used:
            benign.append(fault)
        obs_event("fault_detected",
                  case=result.spec.name,
                  segment=f"{fault.segment[0]}-{fault.segment[1]}",
                  kind=fault.kind.value,
                  onset=fault.onset,
                  impacted=len(touched),
                  benign=fault.segment not in used)
    return FaultDetection(
        faults=tuple(faults),
        report=report,
        impacted_flows=tuple(sorted(impacted)),
        benign_faults=tuple(benign),
    )


__all__ = ["FaultDetection", "detect_faults"]

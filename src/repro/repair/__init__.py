"""Fault-aware self-healing synthesis.

The closed loop over degraded hardware:

1. :func:`~repro.repair.detect.detect_faults` — replay a campaign
   under a fault plan in the tick engine and classify what the chip
   would exhibit;
2. :func:`~repro.repair.engine.repair` — mask the faults out of the
   switch structure and re-synthesize incrementally from the prior
   result's surviving paths;
3. the service layer (``SynthesisService.submit_repair`` /
   ``ShardCoordinator.submit_repair``) — the same loop as journaled,
   exactly-once repair jobs correlated to the original job.
"""

from repro.repair.detect import FaultDetection, detect_faults
from repro.repair.engine import (
    RepairResult,
    as_mask,
    mask_spec,
    parse_faults,
    repair,
)

__all__ = [
    "FaultDetection",
    "RepairResult",
    "as_mask",
    "detect_faults",
    "mask_spec",
    "parse_faults",
    "repair",
]

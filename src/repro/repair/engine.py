"""The degraded-hardware repair engine.

Given a previously verified :class:`~repro.core.solution.SynthesisResult`
and a set of newly observed valve faults, :func:`repair`:

1. folds the faults into a :class:`~repro.switches.health.HealthMask`
   and masks the spec's switch (dead valves/segments leave the path
   catalog; reachability is re-validated);
2. seeds a :class:`~repro.opt.incremental.SolveContext` with a warm
   incumbent built from the prior routing — surviving paths are kept
   verbatim, broken flows are greedily rerouted on the masked graph —
   via :func:`repro.core.synthesizer.seed_context`;
3. re-synthesizes on the masked spec. The existing machinery does the
   rest: the Tier-A store key is fault-salted (never serves a
   healthy-chip result), a missed :class:`~repro.deadline.Deadline`
   falls down the standard degradation ladder, and the repaired result
   is verified by the independent checker — which now also rejects any
   routing over a masked segment.

The repair contract is deterministic: every input of the re-solve
(masked catalog, seed incumbent, solver schedule) is a pure function of
the prior result and the canonical fault set, so a fixed fault plan
yields an identical repaired routing for any ``parallel_bb`` worker
count and across service restarts.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, seed_context, synthesize
from repro.errors import RepairError
from repro.obs.trace import obs_event
from repro.opt.incremental import SolveContext
from repro.sim.faults import FaultKind, ValveFault
from repro.switches.base import segment_key
from repro.switches.health import (
    HealthMask,
    ReachabilityReport,
    reachability_report,
)
from repro.switches.paths import Path

Faults = Union[HealthMask, Iterable[ValveFault]]

#: Accepted spellings for each fault kind in the compact CLI/HTTP form.
_KIND_ALIASES = {
    "stuck_open": FaultKind.STUCK_OPEN,
    "open": FaultKind.STUCK_OPEN,
    "stuck_closed": FaultKind.STUCK_CLOSED,
    "closed": FaultKind.STUCK_CLOSED,
    "blocked_segment": FaultKind.BLOCKED_SEGMENT,
    "blocked": FaultKind.BLOCKED_SEGMENT,
}


def parse_faults(text: str) -> List[ValveFault]:
    """Parse the compact fault syntax used by the CLI and benchmarks.

    ``"T1-TL:stuck_closed;C-L:blocked@2"`` — semicolon-separated
    entries of ``a-b:kind`` with an optional ``@step`` onset. Kinds
    accept the short aliases ``open``/``closed``/``blocked``.
    """
    faults: List[ValveFault] = []
    for raw in text.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        onset = 0
        if "@" in entry:
            entry, _, onset_text = entry.rpartition("@")
            try:
                onset = int(onset_text)
            except ValueError:
                raise RepairError(f"bad fault onset in {raw!r}") from None
        seg_text, sep, kind_text = entry.partition(":")
        kind = _KIND_ALIASES.get(kind_text.strip() or "stuck_closed")
        if not sep:
            kind = FaultKind.STUCK_CLOSED
        if kind is None:
            raise RepairError(
                f"unknown fault kind {kind_text!r} in {raw!r}; "
                f"expected one of {sorted(set(_KIND_ALIASES))}"
            )
        a, sep, b = seg_text.strip().partition("-")
        if not sep or not a or not b:
            raise RepairError(f"bad fault segment in {raw!r}; expected 'a-b:kind'")
        faults.append(ValveFault((a, b), kind, onset))
    if not faults:
        raise RepairError(f"no faults in fault spec {text!r}")
    return faults


def as_mask(faults: Faults) -> HealthMask:
    """Coerce a fault collection (or mask) to a canonical HealthMask."""
    if isinstance(faults, HealthMask):
        return faults
    return HealthMask.from_faults(faults)


def mask_spec(spec: SwitchSpec, faults: Faults) -> SwitchSpec:
    """A copy of ``spec`` on the degraded switch.

    Masks merge: faults on an already-degraded spec accumulate onto
    the pristine structure, so repeated repairs compose.
    """
    mask = as_mask(faults)
    if mask.is_empty:
        raise RepairError("empty fault set: nothing to mask")
    return dataclasses.replace(spec, switch=spec.switch.with_health(mask))


# ----------------------------------------------------------------------
@dataclass
class RepairResult:
    """Outcome of one repair attempt."""

    original: SynthesisResult
    repaired: SynthesisResult
    mask: HealthMask
    reachability: ReachabilityReport
    #: Flow ids whose prior path survived the mask untouched.
    surviving_flows: Tuple[int, ...]
    #: Flow ids that had to be rerouted around the faults.
    rerouted_flows: Tuple[int, ...]
    #: Whether the warm incumbent was successfully seeded.
    seeded: bool

    @property
    def status(self) -> SynthesisStatus:
        return self.repaired.status

    @property
    def solved(self) -> bool:
        return self.repaired.status.solved

    @property
    def degraded(self) -> bool:
        """True when repair fell down the ladder to the greedy rung."""
        return bool(self.repaired.counters.get("degraded"))

    def summary(self) -> str:
        return (
            f"repair[{self.original.spec.name}]: {self.status.value}, "
            f"{len(self.mask.dead_segments)} masked segment(s), "
            f"{len(self.surviving_flows)} surviving / "
            f"{len(self.rerouted_flows)} rerouted flow(s)"
            + (", degraded" if self.degraded else "")
        )


def repair(prior: SynthesisResult, faults: Faults,
           options: Optional[SynthesisOptions] = None,
           context: Optional[SolveContext] = None) -> RepairResult:
    """Re-synthesize ``prior``'s spec around newly observed faults."""
    if not prior.status.solved or not prior.flow_paths:
        raise RepairError(
            "repair needs a solved prior result with a routed assignment"
        )
    options = options or SynthesisOptions()
    spec2 = mask_spec(prior.spec, faults)
    mask = spec2.switch.health  # merged with any pre-existing mask
    reach = reachability_report(spec2.switch)

    ctx = context if context is not None else SolveContext()
    surviving, rerouted, seed = _seed_result(spec2, prior)
    seeded = False
    if seed is not None:
        try:
            seeded = seed_context(spec2, options, ctx, seed)
        except Exception:
            # A failed seed must never fail the repair — the re-solve
            # just starts cold (the heuristic rung still applies).
            seeded = False
    obs_event("repair_attempt", case=spec2.name,
              masked=len(mask.dead_segments),
              surviving=len(surviving), rerouted=len(rerouted),
              seeded=seeded)

    repaired = synthesize(spec2, options, context=ctx)
    obs_event("repair_result", case=spec2.name,
              status=repaired.status.value,
              degraded=bool(repaired.counters.get("degraded")),
              objective=repaired.objective)
    return RepairResult(
        original=prior,
        repaired=repaired,
        mask=mask,
        reachability=reach,
        surviving_flows=tuple(surviving),
        rerouted_flows=tuple(rerouted),
        seeded=seeded,
    )


# ----------------------------------------------------------------------
def _seed_result(spec: SwitchSpec, prior: SynthesisResult):
    """Surviving paths + greedy reroutes as a warm-start pseudo-result.

    Returns ``(surviving_ids, rerouted_ids, seed_or_None)``. The seed
    is only a warm start: the solver re-validates it against the model
    constraints, so a partially inconsistent seed costs nothing but its
    construction.
    """
    from repro.core.heuristic import _constraint_nodes, _greedy_schedule

    dead = spec.switch.health.dead_segments
    binding = dict(prior.binding)
    flow_paths: Dict[int, Path] = {}
    surviving: List[int] = []
    broken: List[int] = []
    for f in spec.flows:
        p = prior.flow_paths.get(f.id)
        if p is not None and not (set(p.segments) & dead):
            flow_paths[f.id] = p
            surviving.append(f.id)
        else:
            broken.append(f.id)

    counter = itertools.count(20_000)
    for fid in broken:
        f = spec.flow(fid)
        src, dst = binding.get(f.source), binding.get(f.target)
        if src is None or dst is None:
            return surviving, broken, None
        graph = spec.switch.graph.copy()
        for other in spec.conflicts_of(fid):
            other_path = flow_paths.get(other)
            if other_path is None:
                continue
            for n in _constraint_nodes(spec, other_path.vertices):
                if n in graph and n not in (src, dst):
                    graph.remove_node(n)
            for a, b in other_path.segments:
                if graph.has_edge(a, b):
                    graph.remove_edge(a, b)
        try:
            vertices = nx.shortest_path(graph, src, dst, weight="length")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return surviving, broken, None
        segs = frozenset(segment_key(a, b)
                         for a, b in zip(vertices, vertices[1:]))
        flow_paths[fid] = Path(
            index=next(counter),
            source_pin=src,
            target_pin=dst,
            vertices=tuple(vertices),
            nodes=frozenset(v for v in vertices
                            if not spec.switch.is_pin(v)),
            segments=segs,
            length=sum(spec.switch.segments[k].length for k in segs),
        )

    used = {k for p in flow_paths.values() for k in p.segments}
    seed = SynthesisResult(
        spec=spec,
        status=SynthesisStatus.FEASIBLE,
        binding=binding,
        flow_paths=flow_paths,
        flow_sets=_greedy_schedule(spec, flow_paths),
        used_segments=used,
        solver="repair-seed",
    )
    return surviving, broken, seed


__all__ = [
    "RepairResult",
    "as_mask",
    "mask_spec",
    "parse_faults",
    "repair",
]

"""Module shape library (Columba-style component footprints).

Columba's top-down flow keeps a library of module models (mixers,
reaction chambers, inlets, ...) whose footprints the placer arranges
around the switch. We model just what chip-level layout needs: a named
rectangle with one flow port.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError


@dataclass(frozen=True)
class ModuleShape:
    """A placeable module footprint, dimensions in millimetres."""

    name: str
    width: float
    height: float
    kind: str = "generic"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ReproError(f"module {self.name!r} must have positive size")

    @property
    def area(self) -> float:
        return self.width * self.height


#: Default footprints per recognizable module kind (mm). Sizes follow
#: the ballpark of Columba's library: ring mixers are the big
#: components, chambers mid-sized, I/O ports tiny.
DEFAULT_FOOTPRINTS: Dict[str, tuple] = {
    "mixer": (3.0, 2.0),
    "chamber": (2.0, 2.0),
    "inlet": (0.6, 0.6),
    "outlet": (0.6, 0.6),
    "generic": (1.5, 1.5),
}

_KIND_PATTERNS = [
    ("mixer", re.compile(r"^(m|mix|mixer)[_\d]", re.IGNORECASE)),
    ("chamber", re.compile(r"^(rc|chamber|cell)[_\d]?", re.IGNORECASE)),
    ("inlet", re.compile(r"^(i|in|inlet|lys)[_\d]?", re.IGNORECASE)),
    ("outlet", re.compile(r"^(o|out|outlet|p_c|w|waste)[_\d]?", re.IGNORECASE)),
]


def infer_kind(module_name: str) -> str:
    """Best-effort module kind from its name (mirrors the case naming)."""
    for kind, pattern in _KIND_PATTERNS:
        if pattern.match(module_name):
            return kind
    return "generic"


def default_shape(module_name: str) -> ModuleShape:
    """A footprint for a module, inferred from its name."""
    kind = infer_kind(module_name)
    width, height = DEFAULT_FOOTPRINTS[kind]
    return ModuleShape(module_name, width, height, kind)


def shapes_for(modules, overrides: Optional[Dict[str, ModuleShape]] = None
               ) -> Dict[str, ModuleShape]:
    """Footprints for a module list, with optional explicit overrides."""
    result = {m: default_shape(m) for m in modules}
    for name, shape in (overrides or {}).items():
        if name not in result:
            raise ReproError(f"override for unknown module {name!r}")
        result[name] = shape
    return result

"""Chip-level co-layout around synthesized switches (mini-Columba)."""

from repro.chip.layout import (
    ChipLayout,
    Connection,
    PlacedModule,
    chip_layout,
)
from repro.chip.modules import (
    DEFAULT_FOOTPRINTS,
    ModuleShape,
    default_shape,
    infer_kind,
    shapes_for,
)

__all__ = [
    "chip_layout",
    "ChipLayout",
    "PlacedModule",
    "Connection",
    "ModuleShape",
    "default_shape",
    "infer_kind",
    "shapes_for",
    "DEFAULT_FOOTPRINTS",
]

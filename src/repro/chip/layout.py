"""Chip-level co-layout around a synthesized switch.

A miniature of what Columba does after module selection: place the
connected modules on a ring around the switch, as close as possible to
their bound pins, then route each module's port to its pin with an
L-shaped Manhattan connection. The layout reports chip area, total
connection length, and the number of connection *crossings* — the
quantity that shows why the binding policies matter: when the binding
follows the placement order around the switch (the clockwise policy's
contract), connections nest without crossing; a scrambled fixed binding
forces crossings, i.e. extra routing layers or detours in a real flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chip.modules import ModuleShape, shapes_for
from repro.core.solution import SynthesisResult
from repro.errors import ReproError
from repro.geometry import Point
from repro.geometry.lines import segments_intersect
from repro.switches.base import SwitchModel

#: Clearance between the switch bounding box and the module ring (mm).
RING_CLEARANCE = 1.0
#: Minimum spacing between neighbouring modules on the ring (mm).
MODULE_SPACING = 0.3


@dataclass
class PlacedModule:
    """A module placed on the ring: footprint + port position."""

    shape: ModuleShape
    center: Point
    port: Point            # where its flow channel meets the chip
    pin: str               # the switch pin it binds to

    @property
    def lo(self) -> Point:
        return Point(self.center.x - self.shape.width / 2,
                     self.center.y - self.shape.height / 2)

    @property
    def hi(self) -> Point:
        return Point(self.center.x + self.shape.width / 2,
                     self.center.y + self.shape.height / 2)

    def overlaps(self, other: "PlacedModule") -> bool:
        return not (
            self.hi.x <= other.lo.x + 1e-9 or other.hi.x <= self.lo.x + 1e-9
            or self.hi.y <= other.lo.y + 1e-9 or other.hi.y <= self.lo.y + 1e-9
        )


@dataclass
class Connection:
    """An L-shaped route from a module port to its switch pin."""

    module: str
    pin: str
    points: List[Point]

    @property
    def length(self) -> float:
        return sum(a.manhattan_to(b) for a, b in zip(self.points, self.points[1:]))

    def crosses(self, other: "Connection") -> bool:
        for a1, a2 in zip(self.points, self.points[1:]):
            for b1, b2 in zip(other.points, other.points[1:]):
                if segments_intersect(a1, a2, b1, b2):
                    return True
        return False


@dataclass
class ChipLayout:
    """The placed-and-routed chip around one switch."""

    switch: SwitchModel
    modules: Dict[str, PlacedModule]
    connections: List[Connection]

    @property
    def total_connection_length(self) -> float:
        return sum(c.length for c in self.connections)

    def crossings(self) -> int:
        """Pairs of module-to-pin connections that intersect."""
        count = 0
        for i, a in enumerate(self.connections):
            for b in self.connections[i + 1:]:
                if a.crosses(b):
                    count += 1
        return count

    def overlapping_modules(self) -> List[Tuple[str, str]]:
        names = sorted(self.modules)
        bad = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.modules[a].overlaps(self.modules[b]):
                    bad.append((a, b))
        return bad

    def bounding_box(self) -> Tuple[Point, Point]:
        xs, ys = [], []
        for placed in self.modules.values():
            xs += [placed.lo.x, placed.hi.x]
            ys += [placed.lo.y, placed.hi.y]
        lo, hi = self.switch.bounding_box()
        xs += [lo.x, hi.x]
        ys += [lo.y, hi.y]
        return Point(min(xs), min(ys)), Point(max(xs), max(ys))

    @property
    def chip_area(self) -> float:
        lo, hi = self.bounding_box()
        return (hi.x - lo.x) * (hi.y - lo.y)

    def summary(self) -> str:
        return (
            f"{len(self.modules)} modules, chip {self.chip_area:.1f} mm^2, "
            f"connections {self.total_connection_length:.1f} mm, "
            f"{self.crossings()} crossing(s)"
        )


# ----------------------------------------------------------------------
def _pin_direction(switch: SwitchModel, pin: str) -> Tuple[int, int]:
    """Outward unit direction of a pin (which border it sits on)."""
    lo, hi = switch.bounding_box()
    p = switch.coords[pin]
    candidates = {
        (0, 1): hi.y - p.y,
        (0, -1): p.y - lo.y,
        (1, 0): hi.x - p.x,
        (-1, 0): p.x - lo.x,
    }
    return min(candidates, key=candidates.get)


def chip_layout(result: SynthesisResult,
                shapes: Optional[Dict[str, ModuleShape]] = None) -> ChipLayout:
    """Place and route the connected modules around a solved switch.

    Modules sit beyond their pin on the pin's border, pushed sideways
    just enough to clear their neighbours (1-D legalization per side).
    """
    if not result.status.solved:
        raise ReproError("cannot lay out an unsolved synthesis result")
    switch = result.spec.switch
    footprints = shapes_for(result.spec.modules, shapes)

    by_side: Dict[Tuple[int, int], List[str]] = {}
    for module, pin in result.binding.items():
        by_side.setdefault(_pin_direction(switch, pin), []).append(module)

    placed: Dict[str, PlacedModule] = {}
    for direction, members in by_side.items():
        horizontal = direction[1] != 0  # modules line up along x
        # sort by the pin coordinate along the border
        members.sort(key=lambda m: (
            switch.coords[result.binding[m]].x if horizontal
            else switch.coords[result.binding[m]].y))
        cursor = -float("inf")
        for module in members:
            pin = result.binding[module]
            pin_pos = switch.coords[pin]
            shape = footprints[module]
            extent = shape.width if horizontal else shape.height
            depth = shape.height if horizontal else shape.width
            along = (pin_pos.x if horizontal else pin_pos.y)
            along = max(along, cursor + extent / 2 + MODULE_SPACING)
            cursor = along + extent / 2
            offset = RING_CLEARANCE + depth / 2
            if horizontal:
                center = Point(along, pin_pos.y + direction[1] * offset)
                port = Point(along, center.y - direction[1] * depth / 2)
            else:
                center = Point(pin_pos.x + direction[0] * offset, along)
                port = Point(center.x - direction[0] * depth / 2, along)
            placed[module] = PlacedModule(shape, center, port, pin)

    connections = []
    for module, placed_mod in sorted(placed.items()):
        pin_pos = switch.coords[placed_mod.pin]
        port = placed_mod.port
        # L-route: leave the port straight toward the switch, then over
        elbow = (Point(port.x, pin_pos.y) if port.x != pin_pos.x
                 else Point(pin_pos.x, port.y))
        points = [port]
        if elbow != port and elbow != pin_pos:
            points.append(elbow)
        points.append(pin_pos)
        connections.append(Connection(module, placed_mod.pin, points))

    return ChipLayout(switch=switch, modules=placed, connections=connections)

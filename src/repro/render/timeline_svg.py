"""Valve-schedule timeline rendering (Gantt-style, §3.5 artifact).

One row per essential valve, one column per flow set; cells show the
O/C/X status; rows are grouped and colored by pressure-sharing group so
the clique structure of Figure 3.2 is visible at a glance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.solution import SynthesisResult
from repro.core.valves import CLOSED, DONT_CARE, OPEN
from repro.render.svg import SvgCanvas, VALVE_COLORS

CELL_W = 54.0
CELL_H = 26.0
LEFT = 150.0
TOP = 50.0

STATUS_FILL = {OPEN: "#d9f2d9", CLOSED: "#f0d5d5", DONT_CARE: "#f2f2f2"}


def render_valve_timeline(result: SynthesisResult) -> str:
    """Render the O/C/X schedule of a solved result as an SVG table."""
    if not result.status.solved or result.valves is None:
        raise ValueError("need a solved result with a valve analysis")
    valves = sorted(result.valves.essential)
    n_steps = len(result.flow_sets)

    # order rows by pressure group so cliques sit together
    def group_of(key) -> int:
        if result.pressure is None:
            return 0
        return result.pressure.group_of(key)

    valves.sort(key=lambda k: (group_of(k), k))

    canvas = SvgCanvas(
        LEFT + n_steps * CELL_W + 40,
        TOP + max(len(valves), 1) * CELL_H + 40,
    )
    canvas.text((LEFT / 2, TOP - 24), "valve", size=12)
    for s in range(n_steps):
        canvas.text((LEFT + (s + 0.5) * CELL_W, TOP - 24), f"set {s}", size=12)

    for row, key in enumerate(valves):
        y = TOP + row * CELL_H
        color = VALVE_COLORS[group_of(key) % len(VALVE_COLORS)]
        canvas.rect((LEFT - 90, y + CELL_H / 2), 12, 12, color)
        canvas.text((LEFT - 76, y + CELL_H / 2 + 4),
                    f"{key[0]}-{key[1]}", size=11, anchor="start")
        sequence = result.valves.status[key]
        for s in range(n_steps):
            cx = LEFT + (s + 0.5) * CELL_W
            cy = y + CELL_H / 2
            canvas.rect((cx, cy), CELL_W - 6, CELL_H - 6,
                        STATUS_FILL[sequence[s]])
            canvas.text((cx, cy + 4), sequence[s], size=12)

    if result.pressure is not None:
        canvas.text(
            (LEFT, TOP + len(valves) * CELL_H + 22),
            f"{len(valves)} essential valve(s) -> "
            f"{result.pressure.num_control_inlets} control inlet(s) "
            f"via pressure sharing",
            size=12, anchor="start",
        )
    return canvas.to_svg()

"""Terminal (ASCII) rendering of switch structures and results.

For quick inspection in a shell: flow channels drawn on a character
grid, pins and nodes labelled, used channels emphasized. Not a
measurement tool — the SVG renderer is the faithful one — but handy in
logs, doctests and CI output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.solution import SynthesisResult
from repro.switches.base import SwitchModel

#: Characters per millimetre, horizontal and vertical.
CHAR_SCALE_X = 6
CHAR_SCALE_Y = 3

UNUSED = "."
USED = "#"
VALVE = "V"


class AsciiGrid:
    """A character canvas with (0,0) at the bottom-left."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self._rows: List[List[str]] = [
            [" "] * width for _ in range(height)
        ]

    def put(self, x: int, y: int, ch: str) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self._rows[y][x] = ch

    def text(self, x: int, y: int, label: str) -> None:
        for i, ch in enumerate(label):
            self.put(x + i, y, ch)

    def hline(self, x0: int, x1: int, y: int, ch: str) -> None:
        for x in range(min(x0, x1), max(x0, x1) + 1):
            self.put(x, y, ch)

    def vline(self, x: int, y0: int, y1: int, ch: str) -> None:
        for y in range(min(y0, y1), max(y0, y1) + 1):
            self.put(x, y, ch)

    def render(self) -> str:
        return "\n".join("".join(row).rstrip() for row in reversed(self._rows))


def _grid_pos(switch: SwitchModel, name: str, lo, scale=(CHAR_SCALE_X, CHAR_SCALE_Y)
              ) -> Tuple[int, int]:
    p = switch.coords[name]
    return (round((p.x - lo.x) * scale[0]) + 2,
            round((p.y - lo.y) * scale[1]) + 1)


def ascii_switch(switch: SwitchModel,
                 result: Optional[SynthesisResult] = None) -> str:
    """Draw a switch (optionally highlighting a result's used channels).

    Channels render as ``.`` (unused) or ``#`` (used); essential valves
    as ``V``; vertices carry their names.
    """
    lo, hi = switch.bounding_box()
    grid = AsciiGrid(
        round((hi.x - lo.x) * CHAR_SCALE_X) + 10,
        round((hi.y - lo.y) * CHAR_SCALE_Y) + 3,
    )

    used: Optional[Set] = None
    valves: Set = set()
    if result is not None:
        used = set(result.used_segments)
        if result.valves is not None:
            valves = set(result.valves.essential)

    for key, seg in sorted(switch.segments.items()):
        ax, ay = _grid_pos(switch, seg.a, lo)
        bx, by = _grid_pos(switch, seg.b, lo)
        ch = USED if (used is not None and key in used) else UNUSED
        if ax == bx:
            grid.vline(ax, ay, by, ch)
        elif ay == by:
            grid.hline(ax, bx, ay, ch)
        else:  # L-shaped or diagonal channel: draw as an L
            grid.hline(ax, bx, ay, ch)
            grid.vline(bx, ay, by, ch)
        if key in valves:
            grid.put((ax + bx) // 2, (ay + by) // 2, VALVE)

    for name in switch.nodes:
        x, y = _grid_pos(switch, name, lo)
        grid.put(x, y, "+")
    for pin in switch.pins:
        x, y = _grid_pos(switch, pin, lo)
        grid.put(x, y, "o")
        grid.text(x + 1, y, pin)

    return grid.render()

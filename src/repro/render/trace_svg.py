"""SVG rendering of an observability trace's incumbent timeline.

The SVG counterpart of :func:`repro.obs.timeline.ascii_timeline`: a
step plot of the incumbent objective over wall time, with cut rounds
and deadline events marked on the time axis. Produced by
``repro obs timeline --svg out.svg``.
"""

from __future__ import annotations

from repro.obs.export import TraceData
from repro.obs.timeline import timeline_points
from repro.render.svg import SvgCanvas

WIDTH, HEIGHT = 640.0, 360.0
MARGIN_L, MARGIN_R = 70.0, 20.0
MARGIN_T, MARGIN_B = 40.0, 50.0

LINE_COLOR = "#1f6fb2"
CUT_COLOR = "#d4a017"
DEADLINE_COLOR = "#b23a48"
AXIS_COLOR = "#555555"


def render_incumbent_timeline(data: TraceData) -> str:
    """An objective-vs-time SVG for one recorded trace."""
    bundle = timeline_points(data)
    points = bundle["incumbents"]
    canvas = SvgCanvas(WIDTH, HEIGHT)
    title = f"incumbents: {bundle['name']}" if bundle["name"] else "incumbents"
    canvas.text((WIDTH / 2, MARGIN_T - 18), title, size=14)
    if not points:
        canvas.text((WIDTH / 2, HEIGHT / 2), "(no incumbent events)", size=13,
                    color="#888")
        return canvas.to_svg()

    t_end = max(bundle["duration"], points[-1][0], 1e-9)
    objectives = [p[1] for p in points]
    lo, hi = min(objectives), max(objectives)
    span = hi - lo

    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    def x(t: float) -> float:
        return MARGIN_L + t / t_end * plot_w

    def y(obj: float) -> float:
        if span <= 0:
            return MARGIN_T + plot_h / 2
        # best (lowest — we minimize) objective at the bottom
        return MARGIN_T + (1.0 - (hi - obj) / span) * plot_h

    # axes
    canvas.line((MARGIN_L, MARGIN_T), (MARGIN_L, MARGIN_T + plot_h),
                AXIS_COLOR, 1.0)
    canvas.line((MARGIN_L, MARGIN_T + plot_h),
                (MARGIN_L + plot_w, MARGIN_T + plot_h), AXIS_COLOR, 1.0)
    canvas.text((MARGIN_L - 8, y(hi) + 4), f"{hi:g}", size=11, anchor="end")
    if span > 0:
        canvas.text((MARGIN_L - 8, y(lo) + 4), f"{lo:g}", size=11,
                    anchor="end")
    canvas.text((MARGIN_L, HEIGHT - MARGIN_B + 18), "0s", size=11,
                anchor="start")
    canvas.text((MARGIN_L + plot_w, HEIGHT - MARGIN_B + 18),
                f"{t_end:.3f}s", size=11, anchor="end")

    # incumbent step function: horizontal plateau, vertical drop
    for i, (t, obj, source) in enumerate(points):
        t_next = points[i + 1][0] if i + 1 < len(points) else t_end
        canvas.line((x(t), y(obj)), (x(t_next), y(obj)), LINE_COLOR, 2.0)
        if i + 1 < len(points):
            canvas.line((x(t_next), y(obj)), (x(t_next), y(points[i + 1][1])),
                        LINE_COLOR, 1.2, dash="3,3")
        canvas.circle((x(t), y(obj)), 3.5, LINE_COLOR)
        label = f"{obj:g}" + (f" ({source})" if source else "")
        canvas.text((x(t) + 6, y(obj) - 6), label, size=10, anchor="start")

    # axis marks for cut rounds and deadline exhaustion
    for t in bundle["cut_rounds"]:
        canvas.line((x(t), MARGIN_T + plot_h - 6), (x(t), MARGIN_T + plot_h),
                    CUT_COLOR, 2.0)
    for t in bundle["deadlines"]:
        canvas.line((x(t), MARGIN_T), (x(t), MARGIN_T + plot_h),
                    DEADLINE_COLOR, 1.2, dash="5,4")

    legend = f"{len(points)} incumbent(s), best={min(objectives):g}"
    if bundle["deadlines"]:
        legend += " — dashed red: deadline"
    if bundle["cut_rounds"]:
        legend += " — amber ticks: cut rounds"
    canvas.text((WIDTH / 2, HEIGHT - 12), legend, size=11, color="#555")
    return canvas.to_svg()


__all__ = ["render_incumbent_timeline"]

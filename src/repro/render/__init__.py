"""Figure generation: SVG rendering of switches, results and chips."""

from repro.render.ascii_art import AsciiGrid, ascii_switch
from repro.render.chip_svg import ChipRenderer, render_chip
from repro.render.svg import (
    SvgCanvas,
    SwitchRenderer,
    render_result,
    render_switch,
    save_svg,
)
from repro.render.timeline_svg import render_valve_timeline
from repro.render.trace_svg import render_incumbent_timeline

__all__ = [
    "SvgCanvas",
    "SwitchRenderer",
    "render_switch",
    "render_result",
    "save_svg",
    "ChipRenderer",
    "render_chip",
    "ascii_switch",
    "AsciiGrid",
    "render_valve_timeline",
    "render_incumbent_timeline",
]

"""SVG rendering of chip-level co-layouts."""

from __future__ import annotations

from typing import Optional

from repro.chip.layout import ChipLayout
from repro.core.solution import SynthesisResult
from repro.render.svg import MARGIN, SCALE, SwitchRenderer

MODULE_FILL = {
    "mixer": "#cfe3f5",
    "chamber": "#d9f2d9",
    "inlet": "#f5e6c8",
    "outlet": "#f0d5d5",
    "generic": "#e8e8e8",
}
CONNECTION_COLOR = "#6a7f96"


class ChipRenderer(SwitchRenderer):
    """Extends the switch renderer with module footprints and routes."""

    def __init__(self, layout: ChipLayout) -> None:
        super().__init__(layout.switch)
        self.layout = layout
        # widen the canvas to cover the module ring
        lo, hi = layout.bounding_box()
        self._lo = lo
        self._hi = hi
        self.canvas.width = (hi.x - lo.x) * SCALE + 2 * MARGIN
        self.canvas.height = (hi.y - lo.y) * SCALE + 2 * MARGIN

    def draw_modules(self) -> None:
        for name, placed in sorted(self.layout.modules.items()):
            cx, cy = self._xy_point(placed.center)
            self.canvas.rect(
                (cx, cy),
                placed.shape.width * SCALE,
                placed.shape.height * SCALE,
                MODULE_FILL.get(placed.shape.kind, MODULE_FILL["generic"]),
            )
            self.canvas.text((cx, cy + 4), name, size=12)
            px, py = self._xy_point(placed.port)
            self.canvas.circle((px, py), 3.0, "#444444")

    def draw_connections(self) -> None:
        for conn in self.layout.connections:
            pts = [self._xy_point(p) for p in conn.points]
            for a, b in zip(pts, pts[1:]):
                self.canvas.line(a, b, CONNECTION_COLOR, 2.0, dash="6,3")

    def _xy_point(self, p) -> tuple:
        return (
            (p.x - self._lo.x) * SCALE + MARGIN,
            (self._hi.y - p.y) * SCALE + MARGIN,
        )

    # the base class looks vertices up by name; route through _xy_point
    def _xy(self, name: str):  # type: ignore[override]
        return self._xy_point(self.switch.coords[name])


def render_chip(layout: ChipLayout,
                result: Optional[SynthesisResult] = None) -> str:
    """Render a chip co-layout; overlay flows when a result is given."""
    r = ChipRenderer(layout)
    used = set(result.used_segments) if result is not None else None
    r.draw_structure(used=used)
    if result is not None:
        r.draw_flows(result)
        r.draw_valves(result)
    r.draw_connections()
    r.draw_modules()
    r.draw_vertices()
    return r.to_svg()

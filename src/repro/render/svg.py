"""SVG rendering of switch structures and synthesis results.

Regenerates the style of the paper's figures: flow channels in blue,
synthesized flow paths colored per flow set, essential valves as
rectangles (colored per pressure-sharing group), pins labelled with the
bound modules. Output is a standalone ``.svg`` string — no plotting
dependency required.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.solution import SynthesisResult
from repro.geometry import Point
from repro.switches.base import SwitchModel, segment_key

#: Pixels per millimetre.
SCALE = 60.0
MARGIN = 50.0

#: Per-flow-set stroke colors (cycled), following the paper's figures
#: (green / yellow / blue flow sets).
SET_COLORS = ["#2e8b57", "#d4a017", "#1f6fb2", "#b23a48", "#7b4fa6", "#2aa198"]
#: Per-pressure-group valve fills.
VALVE_COLORS = ["#e07b39", "#8e44ad", "#16a085", "#c0392b", "#2980b9", "#f1c40f"]
CHANNEL_COLOR = "#9db8d2"
REMOVED_COLOR = "#e3e8ee"


class SvgCanvas:
    """Minimal SVG document builder."""

    def __init__(self, width: float, height: float) -> None:
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def line(self, a: Tuple[float, float], b: Tuple[float, float],
             color: str, width: float, dash: Optional[str] = None,
             opacity: float = 1.0) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{a[0]:.1f}" y1="{a[1]:.1f}" x2="{b[0]:.1f}" y2="{b[1]:.1f}" '
            f'stroke="{color}" stroke-width="{width:.1f}" stroke-linecap="round"'
            f'{dash_attr} opacity="{opacity}"/>'
        )

    def rect(self, center: Tuple[float, float], w: float, h: float,
             fill: str, angle: float = 0.0) -> None:
        x, y = center[0] - w / 2, center[1] - h / 2
        transform = (
            f' transform="rotate({angle:.1f} {center[0]:.1f} {center[1]:.1f})"'
            if angle else ""
        )
        self._elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="#333" stroke-width="0.8"{transform}/>'
        )

    def circle(self, center: Tuple[float, float], r: float, fill: str) -> None:
        self._elements.append(
            f'<circle cx="{center[0]:.1f}" cy="{center[1]:.1f}" r="{r:.1f}" '
            f'fill="{fill}" stroke="#333" stroke-width="0.6"/>'
        )

    def text(self, pos: Tuple[float, float], content: str,
             size: float = 12.0, color: str = "#222",
             anchor: str = "middle") -> None:
        self._elements.append(
            f'<text x="{pos[0]:.1f}" y="{pos[1]:.1f}" font-size="{size:.0f}" '
            f'fill="{color}" text-anchor="{anchor}" '
            f'font-family="Helvetica, sans-serif">{html.escape(content)}</text>'
        )

    def to_svg(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )


class SwitchRenderer:
    """Draws a switch model, optionally overlaying a synthesis result."""

    def __init__(self, switch: SwitchModel) -> None:
        self.switch = switch
        lo, hi = switch.bounding_box()
        self._lo = lo
        self.canvas = SvgCanvas(
            (hi.x - lo.x) * SCALE + 2 * MARGIN,
            (hi.y - lo.y) * SCALE + 2 * MARGIN,
        )
        self._hi = hi

    def _xy(self, name: str) -> Tuple[float, float]:
        p = self.switch.coords[name]
        # flip y so "+y up" geometry renders naturally
        return (
            (p.x - self._lo.x) * SCALE + MARGIN,
            (self._hi.y - p.y) * SCALE + MARGIN,
        )

    # ------------------------------------------------------------------
    def draw_structure(self, used: Optional[set] = None) -> None:
        """Channels; when ``used`` is given, unused ones are ghosted."""
        for key, seg in sorted(self.switch.segments.items()):
            color, width = CHANNEL_COLOR, 5.0
            if used is not None and key not in used:
                color, width = REMOVED_COLOR, 3.0
            self.canvas.line(self._xy(seg.a), self._xy(seg.b), color, width)

    def draw_vertices(self) -> None:
        for node in self.switch.nodes:
            self.canvas.circle(self._xy(node), 4.0, "#ffffff")
            x, y = self._xy(node)
            self.canvas.text((x + 8, y - 6), node, size=10, color="#555", anchor="start")
        for pin in self.switch.pins:
            self.canvas.circle(self._xy(pin), 5.0, "#dddddd")

    def draw_pin_labels(self, binding: Optional[Dict[str, str]] = None) -> None:
        bound = {p: m for m, p in (binding or {}).items()}
        for pin in self.switch.pins:
            x, y = self._xy(pin)
            label = pin if pin not in bound else f"{pin}:{bound[pin]}"
            self.canvas.text((x, y - 10), label, size=11, color="#111")

    def draw_flows(self, result: SynthesisResult) -> None:
        """Flow paths colored per flow set, slightly offset per flow."""
        for set_idx, group in enumerate(result.flow_sets):
            color = SET_COLORS[set_idx % len(SET_COLORS)]
            for slot, fid in enumerate(group):
                path = result.flow_paths[fid]
                offset = (slot - (len(group) - 1) / 2) * 3.0
                pts = [self._xy(v) for v in path.vertices]
                for a, b in zip(pts, pts[1:]):
                    self.canvas.line(
                        (a[0] + offset, a[1] + offset),
                        (b[0] + offset, b[1] + offset),
                        color, 2.5,
                    )

    def draw_valves(self, result: Optional[SynthesisResult] = None) -> None:
        """Essential valves as rectangles, filled per pressure group."""
        if result is None or result.valves is None:
            keys = sorted(self.switch.valves)
            groups = {k: 0 for k in keys}
        else:
            keys = sorted(result.valves.essential)
            groups = {}
            for k in keys:
                if result.pressure is not None:
                    groups[k] = result.pressure.group_of(k)
                else:
                    groups[k] = 0
        for key in keys:
            a, b = key
            xa, ya = self._xy(a)
            xb, yb = self._xy(b)
            mid = ((xa + xb) / 2, (ya + yb) / 2)
            horizontal = abs(xa - xb) >= abs(ya - yb)
            w, h = (10.0, 18.0) if horizontal else (18.0, 10.0)
            fill = VALVE_COLORS[groups[key] % len(VALVE_COLORS)]
            self.canvas.rect(mid, w, h, fill)

    def draw_legend(self, result: SynthesisResult) -> None:
        x, y = 10.0, 16.0
        for set_idx, group in enumerate(result.flow_sets):
            color = SET_COLORS[set_idx % len(SET_COLORS)]
            self.canvas.line((x, y - 4), (x + 22, y - 4), color, 3.0)
            flows = ", ".join(str(f) for f in group)
            self.canvas.text((x + 28, y), f"set {set_idx}: flows {flows}",
                             size=11, anchor="start")
            y += 16.0

    def to_svg(self) -> str:
        return self.canvas.to_svg()


def render_switch(switch: SwitchModel) -> str:
    """The bare general switch structure (Figures 2.3/2.4 style)."""
    r = SwitchRenderer(switch)
    r.draw_structure()
    r.draw_valves()
    r.draw_vertices()
    r.draw_pin_labels()
    return r.to_svg()


def render_result(result: SynthesisResult) -> str:
    """A synthesized application-specific switch (Figures 4.1/4.2 style)."""
    if not result.status.solved:
        raise ValueError("cannot render an unsolved synthesis result")
    r = SwitchRenderer(result.spec.switch)
    r.draw_structure(used=set(result.used_segments))
    r.draw_flows(result)
    r.draw_valves(result)
    r.draw_vertices()
    r.draw_pin_labels(result.binding)
    r.draw_legend(result)
    return r.to_svg()


def save_svg(svg: str, path) -> None:
    """Write an SVG document to disk."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)

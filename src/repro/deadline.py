"""Wall-clock deadline threading for multi-phase pipelines.

A :class:`Deadline` is started once at the top of a pipeline (e.g.
:func:`repro.core.synthesizer.synthesize`) and handed down to every
phase. Each phase asks for the *remaining* budget instead of the
original ``time_limit``, so a slow early phase automatically shrinks
the allowance of everything after it and the total wall time stays
bounded by the original limit (plus the non-interruptible tail of the
last phase).

Constructed with ``None`` the deadline is *unbounded*: ``remaining()``
returns ``None`` (the conventional "no limit" sentinel of the solver
backends) and ``expired()`` is always ``False``, so callers never need
to special-case the no-limit path.

**Process boundaries.** A deadline internally anchors to
``time.perf_counter()``, whose epoch is *per process* — naively
shipping one to a spawned worker would carry a monotonic-clock reading
that means nothing there (historically it silently re-granted the full
original budget). Pickling therefore serializes the *remaining* budget
at pickle time and the receiving process reconstructs a fresh deadline
anchored to its own clock, so the wall-clock budget keeps shrinking
across the hop (minus only the transfer latency, which no clock can
reclaim). :meth:`to_wire` / :meth:`from_wire` expose the same contract
explicitly for hand-rolled worker protocols.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ReproError


class Deadline:
    """A shared wall-clock budget, counted from construction time."""

    __slots__ = ("limit", "_start")

    def __init__(self, limit: Optional[float] = None) -> None:
        if limit is not None and limit < 0:
            raise ReproError(f"time limit must be non-negative, got {limit}")
        self.limit = None if limit is None else float(limit)
        self._start = time.perf_counter()

    @classmethod
    def start(cls, limit: Optional[float] = None) -> "Deadline":
        """Alias constructor reading as ``Deadline.start(options.time_limit)``."""
        return cls(limit)

    @property
    def bounded(self) -> bool:
        return self.limit is not None

    def elapsed(self) -> float:
        """Seconds since the deadline was started."""
        return time.perf_counter() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or ``None`` when unbounded.

        The return value plugs directly into any ``time_limit``
        parameter: ``None`` keeps the phase unbounded.
        """
        if self.limit is None:
            return None
        return max(0.0, self.limit - self.elapsed())

    def remaining_or(self, default: float) -> float:
        """Like :meth:`remaining` but with a numeric fallback."""
        left = self.remaining()
        return default if left is None else left

    def expired(self) -> bool:
        """Whether the budget is used up (always False when unbounded)."""
        return self.limit is not None and self.elapsed() >= self.limit

    # -- process boundaries --------------------------------------------
    def to_wire(self) -> Optional[float]:
        """The budget as absolute remaining seconds (``None`` = unbounded).

        The value is meaningful in any process; pair with
        :meth:`from_wire` on the receiving side.
        """
        return self.remaining()

    @classmethod
    def from_wire(cls, remaining: Optional[float]) -> "Deadline":
        """Rebuild a deadline from :meth:`to_wire` output, anchored to
        the *current* process's monotonic clock."""
        return cls(remaining)

    def __reduce__(self):
        # Pickle as the remaining budget, not the raw monotonic anchor:
        # perf_counter() epochs differ between processes, so the anchor
        # must never cross a process boundary (see the module docstring).
        return (Deadline, (self.to_wire(),))

    def __repr__(self) -> str:
        if self.limit is None:
            return "Deadline(unbounded)"
        return f"Deadline({self.limit:.3f}s, remaining={self.remaining():.3f}s)"


__all__ = ["Deadline"]

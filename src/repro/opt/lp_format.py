"""CPLEX-LP-format export for optimization models.

Lets any model built with :mod:`repro.opt` be inspected or fed to an
external solver (Gurobi, CPLEX, HiGHS standalone) for cross-checking —
handy when comparing against the paper's original Gurobi runs.
Quadratic models are linearized first, so the emitted file is always a
plain MILP.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Union

from repro.opt.expr import LinExpr, QuadExpr, Sense, Var, VarType
from repro.opt.model import Model

_SENSE_TOKEN = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}


def _sanitize(name: str) -> str:
    """LP-safe identifier (no operators/whitespace; must not start with
    a letter reserved by the format like 'e' followed by digits)."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_" else "_")
    token = "".join(out)
    if not token or token[0].isdigit() or token[0] in "eE.":
        token = "v_" + token
    return token


def _terms_to_lp(expr) -> str:
    if isinstance(expr, QuadExpr):
        if expr.quad_terms:
            raise ValueError("linearize the model before LP export")
        terms = expr.lin_terms
    else:
        terms = expr.terms
    if not terms:
        return "0 __zero__"
    parts: List[str] = []
    for var, coef in sorted(terms.items(), key=lambda vc: vc[0].index):
        sign = "+" if coef >= 0 else "-"
        parts.append(f"{sign} {abs(coef):.12g} {_sanitize(var.name)}")
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def model_to_lp(model: Model) -> str:
    """Serialize a model to CPLEX LP format (linearizing if needed)."""
    if not model.is_linear():
        from repro.opt.linearize import linearize

        model, _ = linearize(model)

    lines: List[str] = [f"\\ model: {model.name}"]
    lines.append("Minimize" if model.minimize else "Maximize")
    obj = model.objective
    const = obj.constant if isinstance(obj, (LinExpr, QuadExpr)) else 0.0
    lines.append(f" obj: {_terms_to_lp(obj)}")
    if const:
        lines[-1] += f" + {const:.12g} __one__"

    lines.append("Subject To")
    for idx, constr in enumerate(model.constraints):
        expr = constr.expr
        rhs = -(expr.constant if isinstance(expr, (LinExpr, QuadExpr)) else 0.0)
        name = _sanitize(constr.name or f"c{idx}")
        lines.append(
            f" {name}: {_terms_to_lp(expr)} "
            f"{_SENSE_TOKEN[constr.sense]} {rhs:.12g}"
        )

    bounds: List[str] = []
    generals: List[str] = []
    binaries: List[str] = []
    for var in model.variables:
        name = _sanitize(var.name)
        if var.vtype is VarType.BINARY:
            binaries.append(name)
            continue
        lo = "-inf" if math.isinf(var.lb) else f"{var.lb:.12g}"
        hi = "+inf" if math.isinf(var.ub) else f"{var.ub:.12g}"
        bounds.append(f" {lo} <= {name} <= {hi}")
        if var.vtype is VarType.INTEGER:
            generals.append(name)
    # helper constants used above
    bounds.append(" __zero__ = 0")
    bounds.append(" __one__ = 1")

    lines.append("Bounds")
    lines.extend(bounds)
    if generals:
        lines.append("Generals")
        lines.append(" " + " ".join(generals))
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(binaries))
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp(model: Model, path: Union[str, Path]) -> None:
    """Write the model to an ``.lp`` file."""
    Path(path).write_text(model_to_lp(model), encoding="utf-8")

"""Sparse model compilation: constraints to matrix form, built once.

Historically every consumer of a :class:`~repro.opt.model.Model` —
presolve, the HiGHS backend, branch-and-bound's ``StandardForm`` —
re-flattened the per-constraint term dictionaries into arrays on every
call. On the synthesis models (thousands of constraints, tens of
thousands of nonzeros) that Python-level churn was paid three or four
times per solve.

:func:`compile_model` walks the constraint list exactly once and
assembles COO triplet arrays (numpy), a range form
``row_lb <= A @ x <= row_ub`` that both scipy interfaces consume
directly, and the variable bound/integrality vectors. The result is
cached on the model and invalidated by the model's mutation counter
(bumped by ``add_var`` / ``add_constr`` / ``set_objective``), so
repeated solves, presolve passes and LP exports all share one build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.opt.expr import LinExpr, QuadExpr, Sense, Var, VarType

#: Integer sense codes stored per row (compact; numpy-maskable).
SENSE_LE, SENSE_GE, SENSE_EQ = 0, 1, 2

_SENSE_CODE = {Sense.LE: SENSE_LE, Sense.GE: SENSE_GE, Sense.EQ: SENSE_EQ}
_CODE_SENSE = {SENSE_LE: Sense.LE, SENSE_GE: Sense.GE, SENSE_EQ: Sense.EQ}


def _linear_terms(expr) -> Tuple[Dict[Var, float], float]:
    if isinstance(expr, QuadExpr):
        if expr.quad_terms:
            raise ModelError("compile requires a linear model; linearize first")
        return expr.lin_terms, expr.constant
    if isinstance(expr, LinExpr):
        return expr.terms, expr.constant
    raise ModelError(f"unexpected expression type {type(expr)!r}")


class CompiledModel:
    """A model flattened to sparse standard form.

    ``minimize c @ x`` subject to ``row_lb <= A @ x <= row_ub`` and
    ``lb <= x <= ub`` with ``integrality`` flags (1 = integer). ``A`` is
    held as COO triplets (``a_rows``/``a_cols``/``a_data``); CSR and the
    classic split ``A_ub/b_ub/A_eq/b_eq`` views are derived lazily and
    cached. The objective is always a minimization; ``obj_sign`` records
    the flip needed to report the original value and ``obj_offset`` the
    constant term (never negated).
    """

    def __init__(self, model) -> None:
        if not model.is_linear():
            raise ModelError("compile requires a linear model; linearize first")

        self.model_name = model.name
        self.variables: List[Var] = list(model.variables)
        n = len(self.variables)
        self.n = n
        self.m = len(model.constraints)

        obj_terms, obj_const = _linear_terms(model.objective)
        c = np.zeros(n)
        for v, coef in obj_terms.items():
            c[v.index] += coef
        self.obj_offset = float(obj_const)
        self.obj_sign = 1.0
        if not model.minimize:
            c = -c
            self.obj_sign = -1.0
        self.c = c
        self.minimize = model.minimize

        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        senses = np.empty(self.m, dtype=np.int8)
        rhs = np.empty(self.m)
        names: List[str] = []
        for r, constr in enumerate(model.constraints):
            terms, const = _linear_terms(constr.expr)
            for v, coef in terms.items():
                rows.append(r)
                cols.append(v.index)
                data.append(coef)
            senses[r] = _SENSE_CODE[constr.sense]
            rhs[r] = -const
            names.append(constr.name)

        self.a_rows = np.asarray(rows, dtype=np.int64)
        self.a_cols = np.asarray(cols, dtype=np.int64)
        self.a_data = np.asarray(data, dtype=np.float64)
        self.senses = senses
        self.rhs = rhs
        self.row_names = names

        # Range form: LE rows have -inf lower, GE rows +inf upper.
        self.row_lb = np.where(senses == SENSE_LE, -np.inf, rhs)
        self.row_ub = np.where(senses == SENSE_GE, np.inf, rhs)

        self.lb = np.array([v.lb for v in self.variables], dtype=float)
        self.ub = np.array([v.ub for v in self.variables], dtype=float)
        self.integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in self.variables]
        )
        # Variables marked implied-integer on the model are integral in
        # every optimal solution once the true decision variables are —
        # the branch set can skip them (see Model.mark_implied_integer).
        implied_names = getattr(model, "_implied_int_names", None) or ()
        self.implied = np.array(
            [v.name in implied_names for v in self.variables], dtype=bool
        )

        self._csr: Optional[sparse.csr_matrix] = None
        self._split: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.a_data.size

    @property
    def branch_integrality(self) -> np.ndarray:
        """Integrality flags with implied-integer variables relaxed.

        Handing this (instead of ``integrality``) to a MILP solver
        shrinks the branch set without changing the optimum: implied
        variables are forced to integral values by their defining
        constraints whenever the remaining integer variables are
        integral. Report values must still be rounded per ``vtype``.
        """
        return np.where(self.implied, 0, self.integrality)

    @property
    def A_csr(self) -> sparse.csr_matrix:
        """The full constraint matrix as CSR (rows in model order)."""
        if self._csr is None:
            self._csr = sparse.csr_matrix(
                (self.a_data, (self.a_rows, self.a_cols)), shape=(self.m, self.n)
            )
        return self._csr

    def split_form(self) -> Tuple[sparse.csr_matrix, np.ndarray,
                                  sparse.csr_matrix, np.ndarray]:
        """``(A_ub, b_ub, A_eq, b_eq)`` with GE rows negated into <=.

        Row order matches the historical ``StandardForm``: LE and GE
        rows interleaved in model order first, then EQ rows.
        """
        if self._split is None:
            ineq = self.senses != SENSE_EQ
            eq = ~ineq
            A = self.A_csr
            A_ineq = A[ineq]
            b_ineq = self.rhs[ineq]
            flip = self.senses[ineq] == SENSE_GE
            if flip.any():
                scale = np.where(flip, -1.0, 1.0)
                A_ineq = sparse.diags(scale) @ A_ineq
                b_ineq = b_ineq * scale
            self._split = (A_ineq.tocsr(), b_ineq, A[eq].tocsr(), self.rhs[eq])
        return self._split

    # ------------------------------------------------------------------
    # reporting helpers (mirror the historical StandardForm API)
    # ------------------------------------------------------------------
    def report_objective(self, min_value: float) -> float:
        """Convert an internal minimization value to the user objective."""
        return self.obj_sign * min_value + self.obj_offset

    def solution_dict(self, x: np.ndarray) -> Dict[Var, float]:
        return {v: float(x[v.index]) for v in self.variables}

    def row_sense(self, r: int) -> Sense:
        return _CODE_SENSE[int(self.senses[r])]

    def __repr__(self) -> str:
        return (
            f"CompiledModel({self.model_name!r}, n={self.n}, m={self.m}, "
            f"nnz={self.nnz})"
        )


def compile_model(model) -> CompiledModel:
    """Compile ``model`` to sparse standard form, reusing the cache.

    The cache key is the model's mutation counter: any ``add_var`` /
    ``add_constr`` / ``set_objective`` call invalidates it. Direct
    attribute mutation (e.g. editing a constraint's expression in place)
    bypasses the counter — call :meth:`Model.invalidate` afterwards.
    """
    cached = getattr(model, "_compiled", None)
    version = getattr(model, "_version", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    compiled = CompiledModel(model)
    model._compiled = (version, compiled)
    return compiled


__all__ = ["CompiledModel", "compile_model", "SENSE_LE", "SENSE_GE", "SENSE_EQ"]

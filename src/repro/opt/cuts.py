"""Cutting planes derived from conflict structure.

The synthesis models state contamination avoidance as *pairwise*
at-most-one rows (``a_i + a_j <= 1`` per conflicting flow pair per
site, eq. 3.3). When three or more flows are mutually conflicting the
pairwise relaxation admits the fractional point ``a_i = 1/2`` for all
of them; the clique inequality ``sum_{i in C} a_i <= 1`` over a maximal
mutually-conflicting set ``C`` cuts that point off while keeping every
integral feasible assignment — a classic conflict-graph clique cut.

Two consumers:

* :func:`clique_cuts` works on a *compiled* model: it reads the
  two-term at-most-one rows back out of the matrix, builds the conflict
  graph and returns maximal cliques of size >= 3 as column-index
  tuples. The branch-and-bound backend adds these as root cut rows.
  The result is cached on the compiled model, so a
  :class:`~repro.opt.incremental.SolveContext` that reuses a model also
  reuses its cut pool.
* :func:`conflict_cliques` works on the spec's flow-conflict relation
  directly and is used by :class:`repro.core.builder.SynthesisModelBuilder`
  to emit the clique rows into the model itself (tightening the LP
  relaxation for every backend, HiGHS included).

Both cut families never exclude an integral feasible point, so optimal
objective values are unchanged (guarded by ``tests/test_opt_cuts.py``).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx
import numpy as np
from scipy import sparse

from repro.opt.compile import SENSE_LE, CompiledModel


def atmost_one_pairs(compiled: CompiledModel) -> List[Tuple[int, int]]:
    """Column pairs ``(i, j)`` from rows of the form ``x_i + x_j <= 1``
    over binary variables — the edges of the pairwise conflict graph."""
    pairs: List[Tuple[int, int]] = []
    if compiled.m == 0:
        return pairs
    A = compiled.A_csr
    indptr, indices, data = A.indptr, A.indices, A.data
    binary = (compiled.integrality == 1) & (compiled.lb >= 0.0) & (compiled.ub <= 1.0)
    candidate = (compiled.senses == SENSE_LE) & (compiled.rhs == 1.0)
    for r in np.flatnonzero(candidate):
        lo, hi = indptr[r], indptr[r + 1]
        if hi - lo != 2:
            continue
        cols = indices[lo:hi]
        if not (data[lo:hi] == 1.0).all() or not binary[cols].all():
            continue
        pairs.append((int(cols[0]), int(cols[1])))
    return pairs


def clique_cuts(compiled: CompiledModel, min_size: int = 3,
                max_cuts: int = 500) -> List[Tuple[int, ...]]:
    """Maximal-clique at-most-one cuts over the compiled columns.

    Returns sorted column-index tuples, one per clique of at least
    ``min_size`` mutually-exclusive binaries. Cached on the compiled
    model (the conflict graph is static for a given compilation).
    """
    cached = getattr(compiled, "_clique_cuts", None)
    if cached is not None:
        return cached
    cliques: List[Tuple[int, ...]] = []
    pairs = atmost_one_pairs(compiled)
    if pairs:
        graph = nx.Graph()
        graph.add_edges_from(pairs)
        seen = set()
        for clique in nx.find_cliques(graph):
            if len(clique) < min_size:
                continue
            key = tuple(sorted(clique))
            if key not in seen:
                seen.add(key)
                cliques.append(key)
        cliques.sort()
        del cliques[max_cuts:]
    compiled._clique_cuts = cliques
    return cliques


def cut_rows(compiled: CompiledModel, cliques: Iterable[Tuple[int, ...]]
             ) -> Tuple[sparse.csr_matrix, np.ndarray]:
    """Assemble cliques into a sparse ``A @ x <= 1`` row block."""
    cliques = list(cliques)
    rows: List[int] = []
    cols: List[int] = []
    for r, clique in enumerate(cliques):
        rows.extend([r] * len(clique))
        cols.extend(clique)
    A = sparse.csr_matrix(
        (np.ones(len(cols)), (rows, cols)), shape=(len(cliques), compiled.n)
    )
    return A, np.ones(len(cliques))


def conflict_cliques(conflicts: Iterable, min_size: int = 3
                     ) -> List[Tuple[int, ...]]:
    """Maximal cliques of the flow-conflict graph, as sorted id tuples.

    ``conflicts`` is the spec's set of 2-element frozensets. Cliques of
    size >= ``min_size`` subsume several pairwise rows each; the builder
    emits one at-most-one row per clique per shared site.
    """
    graph = nx.Graph()
    for pair in conflicts:
        i, j = sorted(pair)
        graph.add_edge(i, j)
    return sorted(
        tuple(sorted(c)) for c in nx.find_cliques(graph) if len(c) >= min_size
    )


__all__ = ["atmost_one_pairs", "clique_cuts", "cut_rows", "conflict_cliques"]

"""Integer (quadratic) programming substrate.

A small Gurobi/PuLP-style modeling layer with exact linearization of
binary products and three interchangeable exact solver backends. The
synthesis models in :mod:`repro.core` are written against this API.
"""

from repro.opt.expr import (
    Constraint,
    LinExpr,
    QuadExpr,
    Sense,
    Var,
    VarType,
    quicksum,
)
from repro.opt.incremental import IncrementalLP, SolveContext, WarmStart
from repro.opt.linearize import linearize
from repro.opt.lp_format import model_to_lp, write_lp
from repro.opt.model import Model
from repro.opt.presolve import DeltaTightener, PresolveResult, presolve
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers import available_backends, get_backend

__all__ = [
    "Model",
    "Var",
    "VarType",
    "Constraint",
    "Sense",
    "LinExpr",
    "QuadExpr",
    "quicksum",
    "Solution",
    "SolveStatus",
    "linearize",
    "presolve",
    "DeltaTightener",
    "PresolveResult",
    "model_to_lp",
    "write_lp",
    "get_backend",
    "available_backends",
    "WarmStart",
    "IncrementalLP",
    "SolveContext",
]
